//! The live, threaded correlation pipeline (Figure 1).
//!
//! [`Correlator`] wires the worker stages together with bounded queues:
//!
//! * `push_dns` places DNS records on the **FillUp queue**; FillUp worker
//!   threads drain it into the shared [`DnsStore`];
//! * `push_flow` places flow records on the **LookUp queue**; LookUp
//!   worker threads resolve them against the store — stamping origin-AS
//!   attribution from the loaded routing table on the way — and place the
//!   results on one of the **Write queues**;
//! * each Write worker owns one queue shard and one [`OutputSink`]:
//!   records are partitioned by flow-key hash, so one flow's records
//!   always land in the same output shard and **no lock sits on the
//!   per-record write path**.
//!
//! All queues are bounded and lossy (see `flowdns-stream`): when a queue
//! overflows, records are dropped and counted, exactly like the paper's
//! stream buffers. Ingress is available per record (`push_dns`,
//! `push_flow`) and per batch (`push_dns_batch`, `push_flow_batch`); the
//! batch forms amortize the queue's synchronization over a whole decoded
//! datagram and are what the live ingest layer uses. `finish()` performs
//! an ordered shutdown (producers first, writers last) so no accepted
//! record is lost on the way out; `snapshot()` reads live
//! [`PipelineMetrics`] without stopping anything.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use flowdns_bgp::{AsnView, FrozenTable, RoutingTable};
use flowdns_obs::{FlightRecorder, Histogram, HistogramSnapshot, MetricsRegistry};
use flowdns_snapshot::DnsStoreImage;
use flowdns_stream::{LatencySnapshot, ShardProducer, ShardedChannel, StreamBuffer};
use flowdns_types::{CorrelatedRecord, DnsRecord, FlowDnsError, FlowKey, FlowRecord, SimDuration};

use crate::config::CorrelatorConfig;
use crate::fillup::{process_dns_record, FillUpStats};
use crate::lookup::{LookUpStats, Resolver};
use crate::metrics::{PipelineMetrics, Report, SnapshotStats};
use crate::shard::{shard_of_dns, shard_of_flow, ShardedStore};
use crate::store::DnsStore;
use crate::write::{MemorySink, OutputSink, WriteStats};

const POP_WAIT: Duration = Duration::from_millis(5);

/// How many flow records a shard worker processes per partition-lock
/// acquisition before re-checking its DNS lane. FillUp-first: the DNS
/// lane is drained completely at the top of every round so flows always
/// see the freshest possible mappings, then at most this many flows run
/// before the next DNS check.
const SHARD_FLOW_BATCH: usize = 1024;

/// How long an idle shard worker sleeps before polling its lanes again.
/// Much shorter than the MPMC stages' `POP_WAIT`: an SPSC poll is two
/// cache-line reads per registered producer, so polling often is cheap
/// and keeps idle-to-busy latency low.
const SHARD_IDLE_WAIT: Duration = Duration::from_micros(500);

/// Records a worker processes between flushes of its thread-local stats
/// into the shared counters `snapshot()` reads. Large enough to keep the
/// hot loop lock-free in practice, small enough that live stats lag by
/// at most a few hundred records per worker.
const STATS_FLUSH_EVERY: u64 = 512;

/// Every n-th record accepted into the FillUp/LookUp queues is timed from
/// enqueue to dequeue (see [`StreamBuffer::with_latency`]). Sparse enough
/// to be free at millions of records per second, dense enough that a
/// one-second measurement window at interesting load still collects
/// thousands of samples.
const QUEUE_LATENCY_SAMPLE_EVERY: u64 = 64;

/// Every n-th record a worker processes is timed into its stage's
/// service-time histogram. Sampling keeps the per-record telemetry cost
/// at one local counter increment; only sampled records pay the two
/// `Instant::now()` calls and the histogram's relaxed `fetch_add`.
const SERVICE_SAMPLE_EVERY: u64 = 16;

/// The per-stage service-time histograms (microseconds), sharded one
/// recorder per worker so the recording path is an uncontended atomic
/// add.
#[derive(Debug, Clone)]
struct StageService {
    fillup: Histogram,
    lookup: Histogram,
    write: Histogram,
}

/// Bridge a stream-side [`LatencySnapshot`] into the telemetry plane's
/// [`HistogramSnapshot`]. The two sides use the identical log-bucket
/// scheme (4 sub-buckets per octave, 160 buckets — asserted by a test
/// below), so the bucket counters carry over one-to-one.
fn latency_to_histogram(snap: &LatencySnapshot) -> HistogramSnapshot {
    HistogramSnapshot {
        buckets: snap.buckets.clone(),
        sum: snap.sum_us,
    }
}

/// Shared bookkeeping of the snapshot subsystem: counters plus the
/// wall-clock instant of the last successful write, read by `snapshot()`
/// to compute the snapshot age.
#[derive(Debug, Default)]
struct SnapshotShared {
    stats: Mutex<SnapshotStats>,
    last_write: Mutex<Option<Instant>>,
    /// Serializes export+write: the background thread and
    /// [`Correlator::write_snapshot_now`] share one `.part` path, so two
    /// concurrent writers could interleave into it and then publish a
    /// torn file via the rename — exactly what the checksum would later
    /// reject. One writer at a time keeps the atomicity contract.
    write_serial: Mutex<()>,
}

impl SnapshotShared {
    fn record_write(&self, bytes: u64, entries: u64) {
        let mut stats = self.stats.lock();
        stats.snapshots_written += 1;
        stats.last_bytes = bytes;
        stats.last_entries = entries;
        stats.last_error = None;
        *self.last_write.lock() = Some(Instant::now());
    }

    fn record_error(&self, context: &str, e: &FlowDnsError) {
        self.stats.lock().last_error = Some(format!("{context}: {e}"));
    }

    fn record_warm_start(&self, entries: u64) {
        self.stats.lock().warm_start_entries = entries;
    }

    fn stats(&self) -> SnapshotStats {
        let mut stats = self.stats.lock().clone();
        stats.last_write_age_secs = self
            .last_write
            .lock()
            .map(|instant| instant.elapsed().as_secs_f64());
        stats
    }
}

/// A point-in-time health sample of the DNS store, returned by
/// [`Correlator::store_health`]. In sharded mode every field aggregates
/// over all partitions plus the shared name→CNAME store.
#[derive(Debug, Clone)]
pub struct StoreHealth {
    /// Entries currently held.
    pub entries: usize,
    /// Rotation clear-ups performed since start (Algorithm 1's
    /// `AClearUp`/`CClearUp` both count).
    pub clear_ups: u64,
    /// Entries dropped by rotation so far.
    pub rotated_entries: u64,
    /// The store's own memory accounting.
    pub memory: flowdns_storage::MemoryEstimate,
}

/// The pipeline's storage, in whichever layout the config selected:
/// the classic shared [`DnsStore`] (lock-striped, any worker touches
/// any entry) or the [`ShardedStore`] (one exclusive partition per
/// shard worker). Cloning clones `Arc`s.
#[derive(Debug, Clone)]
enum StoreHandle {
    Shared(Arc<DnsStore>),
    Sharded(Arc<ShardedStore>),
}

impl StoreHandle {
    fn total_entries(&self) -> usize {
        match self {
            StoreHandle::Shared(store) => store.total_entries(),
            StoreHandle::Sharded(store) => store.total_entries(),
        }
    }

    fn memory_estimate(&self) -> flowdns_storage::MemoryEstimate {
        match self {
            StoreHandle::Shared(store) => store.memory_estimate(),
            StoreHandle::Sharded(store) => store.memory_estimate(),
        }
    }

    fn is_exact_ttl(&self) -> bool {
        match self {
            StoreHandle::Shared(store) => store.is_exact_ttl(),
            StoreHandle::Sharded(_) => false,
        }
    }

    fn clear_ups(&self) -> u64 {
        match self {
            StoreHandle::Shared(store) => store.clear_ups(),
            StoreHandle::Sharded(store) => store.clear_ups(),
        }
    }

    fn rotated_entries(&self) -> u64 {
        match self {
            StoreHandle::Shared(store) => store.rotated_entries(),
            StoreHandle::Sharded(store) => store.rotated_entries(),
        }
    }

    fn export_image(&self) -> Option<DnsStoreImage> {
        match self {
            StoreHandle::Shared(store) => store.export_image(),
            StoreHandle::Sharded(store) => Some(store.export_image()),
        }
    }

    fn import_image(
        &self,
        image: &DnsStoreImage,
        now: Option<flowdns_types::SimTime>,
    ) -> Result<usize, FlowDnsError> {
        match self {
            StoreHandle::Shared(store) => store.import_image(image, now),
            StoreHandle::Sharded(store) => store.import_image(image, now),
        }
    }
}

/// The ingest boundary, in whichever shape the config selected: the
/// classic shared MPMC queues, or per-shard SPSC channels routed by IP
/// key at decode time.
enum Ingress {
    Shared {
        fillup: StreamBuffer<DnsRecord>,
        lookup: StreamBuffer<FlowRecord>,
    },
    Sharded {
        dns: Arc<ShardedChannel<DnsRecord>>,
        flows: Arc<ShardedChannel<FlowRecord>>,
        /// Producer pair backing the per-record `push_dns`/`push_flow`
        /// compat API (tests, trickle callers). High-rate producers —
        /// listeners, the saturation bench — register their own
        /// thread-local [`ShardRouter`] via
        /// [`Correlator::ingress_router`] and never touch this mutex.
        fallback: Mutex<(ShardProducer<DnsRecord>, ShardProducer<FlowRecord>)>,
    },
}

/// Export the store and write it to `path` atomically, folding the
/// outcome into the shared snapshot stats. A `None` export (the
/// exact-TTL variant) is a silent no-op.
fn write_store_snapshot(store: &StoreHandle, path: &str, shared: &SnapshotShared) {
    let _one_writer = shared.write_serial.lock();
    let Some(image) = store.export_image() else {
        return;
    };
    let entries = image.entry_count() as u64;
    match flowdns_snapshot::write_snapshot(path, &image) {
        Ok(bytes) => shared.record_write(bytes, entries),
        Err(e) => shared.record_error("snapshot write", &e),
    }
}

/// A per-thread ingress handle for the sharded pipeline: routes each
/// record to its shard's lane ([`shard_of_dns`]/[`shard_of_flow`]) and
/// pushes into that lane's private SPSC ring. Build one per producing
/// thread via [`Correlator::ingress_router`]; pushes take no lock and
/// allocate nothing.
pub struct ShardRouter {
    dns_channel: Arc<ShardedChannel<DnsRecord>>,
    flow_channel: Arc<ShardedChannel<FlowRecord>>,
    dns: ShardProducer<DnsRecord>,
    flows: ShardProducer<FlowRecord>,
    /// Reusable per-lane accept/drop tallies for the batch forms, so a
    /// batch costs one counter update per touched lane and zero
    /// allocations.
    accepted: Vec<u64>,
    dropped: Vec<u64>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.dns_channel.lanes())
            .finish()
    }
}

impl ShardRouter {
    /// Number of correlator shards this router fans out to.
    pub fn shards(&self) -> usize {
        self.dns_channel.lanes()
    }

    /// Route one DNS record to its shard's ring. Returns `false` if the
    /// ring was full and the record was dropped (stream loss).
    pub fn route_dns(&mut self, record: DnsRecord) -> bool {
        let lane = shard_of_dns(&record, self.dns.lanes());
        self.dns.push(&self.dns_channel, lane, record)
    }

    /// Route one flow record to its shard's ring. Returns `false` if
    /// the ring was full and the record was dropped (stream loss).
    pub fn route_flow(&mut self, record: FlowRecord) -> bool {
        let lane = shard_of_flow(&record, self.flows.lanes());
        self.flows.push(&self.flow_channel, lane, record)
    }

    /// Route a batch of DNS records, returning how many were accepted.
    /// Lane counters are updated once per touched lane, not per record.
    pub fn route_dns_batch<I>(&mut self, records: I) -> usize
    where
        I: IntoIterator<Item = DnsRecord>,
    {
        let lanes = self.dns.lanes();
        self.accepted.iter_mut().for_each(|n| *n = 0);
        self.dropped.iter_mut().for_each(|n| *n = 0);
        let mut total = 0usize;
        for record in records {
            let lane = shard_of_dns(&record, lanes);
            if self.dns.push_uncounted(lane, record) {
                self.accepted[lane] += 1;
                total += 1;
            } else {
                self.dropped[lane] += 1;
            }
        }
        for lane in 0..lanes {
            self.dns
                .note_accepted(&self.dns_channel, lane, self.accepted[lane]);
            self.dns
                .note_dropped(&self.dns_channel, lane, self.dropped[lane]);
        }
        total
    }

    /// Route a batch of flow records, returning how many were accepted.
    pub fn route_flow_batch<I>(&mut self, records: I) -> usize
    where
        I: IntoIterator<Item = FlowRecord>,
    {
        let lanes = self.flows.lanes();
        self.accepted.iter_mut().for_each(|n| *n = 0);
        self.dropped.iter_mut().for_each(|n| *n = 0);
        let mut total = 0usize;
        for record in records {
            let lane = shard_of_flow(&record, lanes);
            if self.flows.push_uncounted(lane, record) {
                self.accepted[lane] += 1;
                total += 1;
            } else {
                self.dropped[lane] += 1;
            }
        }
        for lane in 0..lanes {
            self.flows
                .note_accepted(&self.flow_channel, lane, self.accepted[lane]);
            self.flows
                .note_dropped(&self.flow_channel, lane, self.dropped[lane]);
        }
        total
    }
}

/// The write-queue shard a flow's records belong to: a stable hash of
/// the flow 5-tuple modulo the shard count, so every record of one flow
/// lands in the same output file.
fn shard_of(key: &FlowKey, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() % shards as u64) as usize
}

/// A running correlation pipeline.
pub struct Correlator {
    config: CorrelatorConfig,
    store: StoreHandle,
    ingress: Ingress,
    /// One bounded queue per Write worker; LookUp workers partition
    /// records across them by flow-key hash.
    write_queues: Vec<StreamBuffer<CorrelatedRecord>>,
    fillup_stats: Arc<Mutex<FillUpStats>>,
    lookup_stats: Arc<Mutex<LookUpStats>>,
    /// Write stats merged from the workers' thread-local counters.
    write_stats: Arc<Mutex<WriteStats>>,
    input_shutdown: Arc<AtomicBool>,
    write_shutdown: Arc<AtomicBool>,
    /// Records lost to sink errors (queue overflow is counted by the
    /// queues themselves).
    writes_dropped: Arc<AtomicU64>,
    /// First end-of-run sink failure (flush/rotation rename), surfaced
    /// by `finish()`.
    egress_error: Arc<Mutex<Option<FlowDnsError>>>,
    /// The swappable routing-table view, when AS attribution is on.
    asn_view: Option<AsnView>,
    /// Per-stage service-time histograms (µs), fed by sampled timings.
    stage_service: StageService,
    /// The sampled flow tracer, when `trace_sample_every` is nonzero.
    flight: Option<Arc<FlightRecorder>>,
    /// Snapshot counters shared with the background snapshot thread.
    snapshot_shared: Arc<SnapshotShared>,
    /// Stops the background snapshot thread.
    snapshot_shutdown: Arc<AtomicBool>,
    /// The background snapshot thread, when periodic persistence is on.
    snapshot_worker: Option<JoinHandle<()>>,
    /// FillUp and LookUp worker handles (joined first at shutdown).
    input_workers: Vec<JoinHandle<()>>,
    /// Write worker handles (joined after the input stages have drained).
    write_workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Correlator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Correlator")
            .field("config", &self.config)
            .field("stored_entries", &self.store.total_entries())
            .finish()
    }
}

impl Correlator {
    /// Start a pipeline writing to in-memory sinks (one per Write
    /// worker).
    pub fn start(config: CorrelatorConfig) -> Result<Self, FlowDnsError> {
        Correlator::start_with_sink_factory(config, |_| {
            Ok(Box::new(MemorySink::new()) as Box<dyn OutputSink>)
        })
    }

    /// Start a pipeline writing to the given single sink. The sink is
    /// owned by the one Write worker, so this form requires
    /// `write_workers == 1`; use [`Correlator::start_with_sink_factory`]
    /// to scale the write stage.
    pub fn start_with_sink(
        config: CorrelatorConfig,
        sink: Box<dyn OutputSink>,
    ) -> Result<Self, FlowDnsError> {
        let factory = crate::write::single_sink_factory(config.write_workers, sink)?;
        Correlator::start_with_sink_factory(config, factory)
    }

    /// Start a pipeline whose Write stage is sharded: `factory(i)` builds
    /// the sink owned by Write worker `i` (e.g. a
    /// [`crate::write::RotatingFileSink`] tagged with the shard id).
    pub fn start_with_sink_factory<F>(
        config: CorrelatorConfig,
        factory: F,
    ) -> Result<Self, FlowDnsError>
    where
        F: FnMut(usize) -> Result<Box<dyn OutputSink>, FlowDnsError>,
    {
        let asn_view = match &config.routing_table {
            Some(path) => Some(AsnView::new(
                RoutingTable::load_announcements(path)?.freeze(),
            )),
            None => None,
        };
        Correlator::start_with_egress(config, factory, asn_view)
    }

    /// The full-control constructor: sharded sinks from `factory` plus an
    /// explicit routing-table view (pass a view built from an in-memory
    /// table, or `None` to disable AS attribution even if
    /// `config.routing_table` is set — the config path is only consulted
    /// by the other constructors).
    pub fn start_with_egress<F>(
        config: CorrelatorConfig,
        mut factory: F,
        asn_view: Option<AsnView>,
    ) -> Result<Self, FlowDnsError>
    where
        F: FnMut(usize) -> Result<Box<dyn OutputSink>, FlowDnsError>,
    {
        config.validate()?;
        // Build every sink before spawning anything: a factory error must
        // fail the whole start without leaking already-running workers.
        let sinks: Vec<Box<dyn OutputSink>> = (0..config.write_workers)
            .map(&mut factory)
            .collect::<Result<_, _>>()?;
        let sharded = config.correlator_shards > 0;
        let store = if sharded {
            StoreHandle::Sharded(Arc::new(ShardedStore::new(&config)))
        } else {
            StoreHandle::Shared(Arc::new(DnsStore::new(&config)))
        };
        let snapshot_shared = Arc::new(SnapshotShared::default());
        // Warm start: restore the store from the configured snapshot file
        // before any worker runs. A missing file is a normal cold start; a
        // torn or corrupt file is *recorded* (and visible in the metrics)
        // but never fatal — the daemon starts cold and overwrites the bad
        // file at the next snapshot write.
        //
        // The import ages generations to `as_of + downtime`: the file's
        // modification time tells us how long the process was down, so a
        // quick supervisor restart loses nothing while a day-long outage
        // correctly expires everything but the Long maps (live record
        // timestamps are wall-clock-derived, so the two clocks advance
        // together). An unreadable mtime degrades to "quick restart".
        if let Some(path) = &config.snapshot_path {
            if std::path::Path::new(path).exists() {
                let downtime = std::fs::metadata(path)
                    .and_then(|meta| meta.modified())
                    .ok()
                    .and_then(|written| written.elapsed().ok())
                    .unwrap_or_default();
                let loaded = flowdns_snapshot::read_snapshot(path).and_then(|image| {
                    let now = image.as_of + SimDuration::from_secs(downtime.as_secs());
                    store.import_image(&image, Some(now))
                });
                match loaded {
                    Ok(entries) => snapshot_shared.record_warm_start(entries as u64),
                    Err(e) => snapshot_shared.record_error("warm start", &e),
                }
            }
        }
        // Flight recorder: only constructed when sampling is on, so the
        // "off" configuration costs nothing beyond `Option` branches.
        let flight = match (&config.trace_path, config.trace_sample_every) {
            (Some(path), n) if n > 0 => Some(Arc::new(
                FlightRecorder::create(path, n, flowdns_obs::trace::DEFAULT_TRACE_MAX_BYTES)
                    .map_err(|e| FlowDnsError::Io(format!("trace file {path}: {e}")))?,
            )),
            _ => None,
        };
        // In sharded mode one worker per shard runs both stages, so both
        // service histograms are sharded by correlator shard.
        let stage_service = StageService {
            fillup: Histogram::new(if sharded {
                config.correlator_shards
            } else {
                config.fillup_workers
            }),
            lookup: Histogram::new(if sharded {
                config.correlator_shards
            } else {
                config.lookup_workers
            }),
            write: Histogram::new(config.write_workers),
        };
        // The configured write capacity is the total across shards.
        let per_shard_capacity = (config.write_queue_capacity / config.write_workers).max(1);
        let write_queues: Vec<StreamBuffer<CorrelatedRecord>> = (0..config.write_workers)
            .map(|_| StreamBuffer::new(per_shard_capacity))
            .collect();
        let fillup_stats = Arc::new(Mutex::new(FillUpStats::default()));
        let lookup_stats = Arc::new(Mutex::new(LookUpStats::default()));
        let write_stats = Arc::new(Mutex::new(WriteStats::default()));
        let input_shutdown = Arc::new(AtomicBool::new(false));
        let write_shutdown = Arc::new(AtomicBool::new(false));
        let writes_dropped = Arc::new(AtomicU64::new(0));
        let egress_error = Arc::new(Mutex::new(None::<FlowDnsError>));

        let mut input_workers = Vec::new();
        let mut write_workers = Vec::new();

        let ingress = if sharded {
            // Sharded ingress: per-shard SPSC channels, one worker per
            // shard running FillUp and LookUp back to back over its
            // exclusive partition. `fillup_workers`/`lookup_workers`
            // are ignored in this mode (see MIGRATION.md).
            let dns_channel = Arc::new(ShardedChannel::<DnsRecord>::new(
                config.correlator_shards,
                config.shard_dns_ring_capacity,
                QUEUE_LATENCY_SAMPLE_EVERY,
            ));
            let flow_channel = Arc::new(ShardedChannel::<FlowRecord>::new(
                config.correlator_shards,
                config.shard_flow_ring_capacity,
                QUEUE_LATENCY_SAMPLE_EVERY,
            ));
            let StoreHandle::Sharded(sharded_store) = &store else {
                return Err(FlowDnsError::PipelineState(
                    "sharded ingress requires the sharded store".into(),
                ));
            };
            for i in 0..config.correlator_shards {
                let dns_channel = Arc::clone(&dns_channel);
                let flow_channel = Arc::clone(&flow_channel);
                let store = Arc::clone(sharded_store);
                let out_queues = write_queues.clone();
                let fstats = Arc::clone(&fillup_stats);
                let lstats = Arc::clone(&lookup_stats);
                let shutdown = Arc::clone(&input_shutdown);
                let asn_reader = asn_view.as_ref().map(|view| view.reader());
                let fillup_service = stage_service.fillup.recorder(i);
                let lookup_service = stage_service.lookup.recorder(i);
                let flight_handle = flight.clone();
                input_workers.push(
                    std::thread::Builder::new()
                        .name(format!("shard-{i}"))
                        .spawn(move || {
                            let mut dns_in = dns_channel.consumer(i);
                            let mut flow_in = flow_channel.consumer(i);
                            let mut asn = asn_reader;
                            let write_shards = out_queues.len();
                            let mut flocal = FillUpStats::default();
                            let mut llocal = LookUpStats::default();
                            let mut fseen = 0u64;
                            let mut lseen = 0u64;
                            loop {
                                let mut processed = 0usize;
                                {
                                    // One lock acquisition per wake-up:
                                    // worker `i` is the only long-lived
                                    // holder, so this is uncontended
                                    // except against snapshot export.
                                    let mut partition = store.partition(i).lock();
                                    // FillUp-first: drain the DNS lane
                                    // completely before touching flows.
                                    while let Some(record) = dns_in.pop_adopting() {
                                        if fseen % SERVICE_SAMPLE_EVERY == 0 {
                                            let started = Instant::now();
                                            partition.process_dns(&store, &record, &mut flocal);
                                            fillup_service
                                                .record(started.elapsed().as_micros() as u64);
                                        } else {
                                            partition.process_dns(&store, &record, &mut flocal);
                                        }
                                        fseen += 1;
                                        processed += 1;
                                    }
                                    // Then a bounded run of flows, so
                                    // fresh DNS is re-checked at least
                                    // every SHARD_FLOW_BATCH records.
                                    let mut budget = SHARD_FLOW_BATCH;
                                    while budget > 0 {
                                        let Some(flow) = flow_in.pop_adopting() else {
                                            break;
                                        };
                                        budget -= 1;
                                        let trace = flow.trace;
                                        if let (Some(flight), Some(id)) = (&flight_handle, trace) {
                                            flight.stamp_dequeue(id);
                                        }
                                        let record = if lseen % SERVICE_SAMPLE_EVERY == 0 {
                                            let started = Instant::now();
                                            let record = partition.process_flow(
                                                &store,
                                                &mut asn,
                                                flow,
                                                &mut llocal,
                                            );
                                            lookup_service
                                                .record(started.elapsed().as_micros() as u64);
                                            record
                                        } else {
                                            partition.process_flow(
                                                &store,
                                                &mut asn,
                                                flow,
                                                &mut llocal,
                                            )
                                        };
                                        lseen += 1;
                                        if let (Some(flight), Some(id)) = (&flight_handle, trace) {
                                            flight.stamp_lookup_done(id, record.src_asn.is_some());
                                        }
                                        let wshard = shard_of(&record.flow.key, write_shards);
                                        let _ = out_queues[wshard].push(record);
                                        processed += 1;
                                    }
                                }
                                if flocal.total() + llocal.total() >= STATS_FLUSH_EVERY {
                                    fstats.lock().merge(&flocal);
                                    flocal = FillUpStats::default();
                                    lstats.lock().merge(&llocal);
                                    llocal = LookUpStats::default();
                                }
                                if processed == 0 {
                                    // Idle: flush pending local stats so
                                    // `snapshot()` converges on quiet
                                    // streams, then check for shutdown.
                                    if flocal != FillUpStats::default() {
                                        fstats.lock().merge(&flocal);
                                        flocal = FillUpStats::default();
                                    }
                                    if llocal != LookUpStats::default() {
                                        lstats.lock().merge(&llocal);
                                        llocal = LookUpStats::default();
                                    }
                                    if shutdown.load(Ordering::Acquire)
                                        && dns_channel.lane_is_empty(i)
                                        && flow_channel.lane_is_empty(i)
                                    {
                                        break;
                                    }
                                    std::thread::sleep(SHARD_IDLE_WAIT);
                                }
                            }
                            fstats.lock().merge(&flocal);
                            lstats.lock().merge(&llocal);
                        })
                        .map_err(|e| FlowDnsError::Io(format!("spawn shard worker: {e}")))?,
                );
            }
            let fallback = Mutex::new((dns_channel.producer(), flow_channel.producer()));
            Ingress::Sharded {
                dns: dns_channel,
                flows: flow_channel,
                fallback,
            }
        } else {
            let fillup_queue = StreamBuffer::with_latency(
                config.fillup_queue_capacity,
                QUEUE_LATENCY_SAMPLE_EVERY,
            );
            let lookup_queue: StreamBuffer<FlowRecord> = StreamBuffer::with_latency(
                config.lookup_queue_capacity,
                QUEUE_LATENCY_SAMPLE_EVERY,
            );
            let StoreHandle::Shared(shared_store) = &store else {
                return Err(FlowDnsError::PipelineState(
                    "classic ingress requires the shared store".into(),
                ));
            };

            // FillUp workers.
            for i in 0..config.fillup_workers {
                let queue = fillup_queue.clone();
                let store = Arc::clone(shared_store);
                let stats = Arc::clone(&fillup_stats);
                let shutdown = Arc::clone(&input_shutdown);
                // Pre-allocated per-worker recorder: the sampled timing path
                // is one uncontended atomic add into this worker's shard.
                let service = stage_service.fillup.recorder(i);
                input_workers.push(
                    std::thread::Builder::new()
                        .name(format!("fillup-{i}"))
                        .spawn(move || {
                            let mut local = FillUpStats::default();
                            let mut seen = 0u64;
                            loop {
                                match queue.pop_wait(POP_WAIT) {
                                    Some(record) => {
                                        if seen % SERVICE_SAMPLE_EVERY == 0 {
                                            let started = Instant::now();
                                            process_dns_record(&store, &record, &mut local);
                                            service.record(started.elapsed().as_micros() as u64);
                                        } else {
                                            process_dns_record(&store, &record, &mut local);
                                        }
                                        seen += 1;
                                        if local.total() >= STATS_FLUSH_EVERY {
                                            stats.lock().merge(&local);
                                            local = FillUpStats::default();
                                        }
                                    }
                                    None => {
                                        // Idle: flush pending local stats so
                                        // `snapshot()` converges on quiet streams.
                                        if local != FillUpStats::default() {
                                            stats.lock().merge(&local);
                                            local = FillUpStats::default();
                                        }
                                        if shutdown.load(Ordering::Acquire) && queue.is_empty() {
                                            break;
                                        }
                                    }
                                }
                            }
                            stats.lock().merge(&local);
                        })
                        // Spawn failure (thread exhaustion) aborts startup;
                        // main's error path exits the process, which tears
                        // down any workers already running.
                        .map_err(|e| FlowDnsError::Io(format!("spawn fillup worker: {e}")))?,
                );
            }

            // LookUp workers.
            for i in 0..config.lookup_workers {
                let queue = lookup_queue.clone();
                let out_queues = write_queues.clone();
                let store = Arc::clone(shared_store);
                let stats = Arc::clone(&lookup_stats);
                let shutdown = Arc::clone(&input_shutdown);
                let config_copy = config.clone();
                let asn_reader = asn_view.as_ref().map(|view| view.reader());
                let service = stage_service.lookup.recorder(i);
                let flight_handle = flight.clone();
                input_workers.push(
                    std::thread::Builder::new()
                        .name(format!("lookup-{i}"))
                        .spawn(move || {
                            let mut resolver = Resolver::new(&store, &config_copy);
                            if let Some(reader) = asn_reader {
                                resolver = resolver.with_asn_reader(reader);
                            }
                            let shards = out_queues.len();
                            let mut local = LookUpStats::default();
                            let mut seen = 0u64;
                            loop {
                                match queue.pop_wait(POP_WAIT) {
                                    Some(flow) => {
                                        let trace = flow.trace;
                                        if let (Some(flight), Some(id)) = (&flight_handle, trace) {
                                            flight.stamp_dequeue(id);
                                        }
                                        let record = if seen % SERVICE_SAMPLE_EVERY == 0 {
                                            let started = Instant::now();
                                            let record = resolver.process_flow(flow, &mut local);
                                            service.record(started.elapsed().as_micros() as u64);
                                            record
                                        } else {
                                            resolver.process_flow(flow, &mut local)
                                        };
                                        seen += 1;
                                        if let (Some(flight), Some(id)) = (&flight_handle, trace) {
                                            flight.stamp_lookup_done(id, record.src_asn.is_some());
                                        }
                                        let shard = shard_of(&record.flow.key, shards);
                                        // The write queue drop counter lives in the
                                        // buffer stats; nothing more to do on failure.
                                        let _ = out_queues[shard].push(record);
                                        if local.total() >= STATS_FLUSH_EVERY {
                                            stats.lock().merge(&local);
                                            local = LookUpStats::default();
                                        }
                                    }
                                    None => {
                                        // Idle: flush pending local stats so
                                        // `snapshot()` converges on quiet streams.
                                        if local != LookUpStats::default() {
                                            stats.lock().merge(&local);
                                            local = LookUpStats::default();
                                        }
                                        if shutdown.load(Ordering::Acquire) && queue.is_empty() {
                                            break;
                                        }
                                    }
                                }
                            }
                            stats.lock().merge(&local);
                        })
                        .map_err(|e| FlowDnsError::Io(format!("spawn lookup worker: {e}")))?,
                );
            }

            Ingress::Shared {
                fillup: fillup_queue,
                lookup: lookup_queue,
            }
        };

        // Write workers: each owns its queue shard and its sink. Stats
        // are thread-local and merged like the input stages', so the
        // per-record path takes no lock at all.
        for (i, (queue, mut sink)) in write_queues.iter().zip(sinks).enumerate() {
            let queue = queue.clone();
            let stats = Arc::clone(&write_stats);
            let shutdown = Arc::clone(&write_shutdown);
            let dropped = Arc::clone(&writes_dropped);
            let sink_error = Arc::clone(&egress_error);
            let service = stage_service.write.recorder(i);
            let flight_handle = flight.clone();
            write_workers.push(
                std::thread::Builder::new()
                    .name(format!("write-{i}"))
                    .spawn(move || {
                        let mut local = WriteStats::default();
                        let mut seen = 0u64;
                        loop {
                            match queue.pop_wait(POP_WAIT) {
                                Some(record) => {
                                    let written = if seen % SERVICE_SAMPLE_EVERY == 0 {
                                        let started = Instant::now();
                                        let ok = sink.write_record(&record).is_ok();
                                        service.record(started.elapsed().as_micros() as u64);
                                        ok
                                    } else {
                                        sink.write_record(&record).is_ok()
                                    };
                                    seen += 1;
                                    if written {
                                        local.records_written += 1;
                                        local
                                            .volumes
                                            .record(record.flow.bytes, record.is_correlated());
                                    } else {
                                        // ordering: stats-only drop counter
                                        // read by snapshot(); carries no
                                        // other state.
                                        dropped.fetch_add(1, Ordering::Relaxed);
                                    }
                                    if let (Some(flight), Some(id)) =
                                        (&flight_handle, record.flow.trace)
                                    {
                                        flight.finish(id, i);
                                    }
                                    if local.records_written >= STATS_FLUSH_EVERY {
                                        stats.lock().merge(&local);
                                        local = WriteStats::default();
                                    }
                                }
                                None => {
                                    if local != WriteStats::default() {
                                        stats.lock().merge(&local);
                                        local = WriteStats::default();
                                    }
                                    if shutdown.load(Ordering::Acquire) && queue.is_empty() {
                                        break;
                                    }
                                }
                            }
                        }
                        stats.lock().merge(&local);
                        // Finish the sink (flush, rotation rename). An
                        // end-of-run I/O failure must surface through
                        // `finish()`, not vanish in a Drop impl.
                        if let Err(e) = sink.finalize() {
                            let mut slot = sink_error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                        }
                    })
                    .map_err(|e| FlowDnsError::Io(format!("spawn write worker: {e}")))?,
            );
        }

        // Background snapshot thread: periodically export the store (from
        // per-shard read views — the hot path is never globally locked)
        // and write it via `.part` + atomic rename. Only spawned when a
        // path is configured, the interval is nonzero, and the store
        // variant has durable state to write.
        let snapshot_shutdown = Arc::new(AtomicBool::new(false));
        let mut snapshot_worker = None;
        if let Some(path) = config
            .snapshot_path
            .clone()
            .filter(|_| !config.snapshot_interval.is_zero() && !store.is_exact_ttl())
        {
            let store = store.clone();
            let shared = Arc::clone(&snapshot_shared);
            let shutdown = Arc::clone(&snapshot_shutdown);
            let interval = config.snapshot_interval;
            snapshot_worker = Some(
                std::thread::Builder::new()
                    .name("snapshot".into())
                    .spawn(move || {
                        let mut last = Instant::now();
                        loop {
                            // Sleep in short steps so shutdown is prompt
                            // even with long snapshot intervals.
                            std::thread::sleep(Duration::from_millis(50));
                            if shutdown.load(Ordering::Acquire) {
                                break;
                            }
                            if last.elapsed() >= interval {
                                write_store_snapshot(&store, &path, &shared);
                                last = Instant::now();
                            }
                        }
                    })
                    .map_err(|e| FlowDnsError::Io(format!("spawn snapshot worker: {e}")))?,
            );
        }

        Ok(Correlator {
            config,
            store,
            ingress,
            write_queues,
            fillup_stats,
            lookup_stats,
            write_stats,
            input_shutdown,
            write_shutdown,
            writes_dropped,
            egress_error,
            asn_view,
            stage_service,
            flight,
            snapshot_shared,
            snapshot_shutdown,
            snapshot_worker,
            input_workers,
            write_workers,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &CorrelatorConfig {
        &self.config
    }

    /// Entries currently held by the DNS store (all partitions in
    /// sharded mode).
    pub fn stored_entries(&self) -> usize {
        self.store.total_entries()
    }

    /// A point-in-time health sample of the DNS store — entries,
    /// clear-up count, rotated entries and the memory estimate,
    /// aggregated across partitions in sharded mode. The soak tier
    /// samples this after every rotation clear-up to assert the
    /// bounded-memory claim; the ledger can log it as a periodic line.
    pub fn store_health(&self) -> StoreHealth {
        StoreHealth {
            entries: self.store.total_entries(),
            clear_ups: self.store.clear_ups(),
            rotated_entries: self.store.rotated_entries(),
            memory: self.store.memory_estimate(),
        }
    }

    /// Whether the store runs the exact-TTL ablation variant (which has
    /// no durable snapshot state).
    pub fn is_exact_ttl(&self) -> bool {
        self.store.is_exact_ttl()
    }

    /// The sharded store, when `correlator_shards > 0` (for inspection
    /// in tests and for the offline simulator's clock broadcasts).
    pub fn sharded_store(&self) -> Option<&Arc<ShardedStore>> {
        match &self.store {
            StoreHandle::Sharded(store) => Some(store),
            StoreHandle::Shared(_) => None,
        }
    }

    /// Number of correlator shards, or 0 in classic shared-queue mode.
    pub fn shards(&self) -> usize {
        match &self.ingress {
            Ingress::Sharded { dns, .. } => dns.lanes(),
            Ingress::Shared { .. } => 0,
        }
    }

    /// Build a per-thread ingress router for the sharded pipeline, or
    /// `None` in classic mode. Each producing thread (listener drain
    /// loop, bench producer) should hold its own router: its pushes then
    /// go straight into per-shard SPSC rings with no lock and no
    /// allocation per record.
    pub fn ingress_router(&self) -> Option<ShardRouter> {
        match &self.ingress {
            Ingress::Sharded { dns, flows, .. } => {
                let lanes = dns.lanes();
                Some(ShardRouter {
                    dns_channel: Arc::clone(dns),
                    flow_channel: Arc::clone(flows),
                    dns: dns.producer(),
                    flows: flows.producer(),
                    accepted: vec![0; lanes],
                    dropped: vec![0; lanes],
                })
            }
            Ingress::Shared { .. } => None,
        }
    }

    /// Per-shard routed-record counters `(dns, flows)`: how many records
    /// each shard's ingress lanes have accepted so far. `None` in
    /// classic mode. The sums equal the totals accepted by `push_*` —
    /// the CI saturation smoke asserts exactly that.
    pub fn shard_routed_counts(&self) -> Option<(Vec<u64>, Vec<u64>)> {
        match &self.ingress {
            Ingress::Sharded { dns, flows, .. } => Some((
                (0..dns.lanes())
                    .map(|i| dns.lane_stats(i).accepted)
                    .collect(),
                (0..flows.lanes())
                    .map(|i| flows.lane_stats(i).accepted)
                    .collect(),
            )),
            Ingress::Shared { .. } => None,
        }
    }

    /// The routing-table view the LookUp workers read, if AS attribution
    /// is enabled.
    pub fn asn_view(&self) -> Option<&AsnView> {
        self.asn_view.as_ref()
    }

    /// The flight recorder, when `trace_sample_every` is nonzero.
    ///
    /// The live ingest layer calls [`FlightRecorder::maybe_start`] after
    /// decode to hand out trace tokens; the pipeline stages stamp and
    /// finish them.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// The first egress (sink finalize/write) failure observed so far,
    /// rendered for health reporting. `finish()` still surfaces the
    /// error itself; this accessor lets `/healthz` see it live.
    pub fn egress_error_message(&self) -> Option<String> {
        self.egress_error.lock().as_ref().map(|e| e.to_string())
    }

    /// Current fill level (0.0–1.0) of the fillup queue, the lookup
    /// queue, and the fullest write shard — the saturation signal
    /// `/healthz` checks.
    pub fn queue_fill_levels(&self) -> (f64, f64, f64) {
        let write = self
            .write_queues
            .iter()
            .map(|q| q.fill_level())
            .fold(0.0f64, f64::max);
        match &self.ingress {
            Ingress::Shared { fillup, lookup } => (fillup.fill_level(), lookup.fill_level(), write),
            // Sharded: the fullest lane is the saturation signal — one
            // hot shard stalls its listeners' sub-batches just like one
            // full shared queue would.
            Ingress::Sharded { dns, flows, .. } => (
                (0..dns.lanes())
                    .map(|i| dns.lane_fill_level(i))
                    .fold(0.0f64, f64::max),
                (0..flows.lanes())
                    .map(|i| flows.lane_fill_level(i))
                    .fold(0.0f64, f64::max),
                write,
            ),
        }
    }

    /// Register every pipeline metric into `registry`, making it the
    /// single source of truth telemetry consumers (the `/metrics`
    /// endpoint, `flowdnsd`'s periodic stderr lines) read. All series
    /// are closures over the counters the pipeline already maintains —
    /// registration adds no hot-path work.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        // FillUp stage.
        for (kind, read) in [
            (
                "addresses",
                Box::new(|s: &FillUpStats| s.addresses_stored)
                    as Box<dyn Fn(&FillUpStats) -> u64 + Send + Sync>,
            ),
            ("cnames", Box::new(|s: &FillUpStats| s.cnames_stored)),
            ("filtered", Box::new(|s: &FillUpStats| s.filtered)),
        ] {
            let stats = Arc::clone(&self.fillup_stats);
            registry.counter_fn(
                "flowdns_fillup_records_total",
                "DNS records processed by the FillUp stage, by outcome",
                &[("kind", kind)],
                move || read(&stats.lock()),
            );
        }
        // LookUp stage.
        for (result, read) in [
            (
                "ip_hit",
                Box::new(|s: &LookUpStats| s.ip_hits)
                    as Box<dyn Fn(&LookUpStats) -> u64 + Send + Sync>,
            ),
            ("ip_miss", Box::new(|s: &LookUpStats| s.ip_misses)),
            ("memoized", Box::new(|s: &LookUpStats| s.memoized)),
            ("filtered", Box::new(|s: &LookUpStats| s.filtered)),
        ] {
            let stats = Arc::clone(&self.lookup_stats);
            registry.counter_fn(
                "flowdns_lookup_flows_total",
                "Flow records resolved by the LookUp stage, by outcome",
                &[("result", result)],
                move || read(&stats.lock()),
            );
        }
        let stats = Arc::clone(&self.lookup_stats);
        registry.counter_fn(
            "flowdns_lookup_cname_hops_total",
            "CNAME chain hops walked during lookups",
            &[],
            move || stats.lock().cname_hops,
        );
        let stats = Arc::clone(&self.lookup_stats);
        registry.counter_fn(
            "flowdns_lookup_loop_limit_hits_total",
            "CNAME chains cut off at the loop limit",
            &[],
            move || stats.lock().loop_limit_hits,
        );
        let stats = Arc::clone(&self.lookup_stats);
        registry.counter_fn(
            "flowdns_lookup_asn_stamped_total",
            "Records stamped with a BGP origin AS",
            &[],
            move || stats.lock().asn_stamped,
        );
        // Write (egress) stage: merged counters plus per-shard queues.
        let stats = Arc::clone(&self.write_stats);
        registry.counter_fn(
            "flowdns_egress_records_total",
            "Correlated records written to the output sinks",
            &[],
            move || stats.lock().records_written,
        );
        let stats = Arc::clone(&self.write_stats);
        registry.counter_fn(
            "flowdns_egress_bytes_total",
            "Flow bytes accounted by the egress stage",
            &[],
            move || stats.lock().volumes.total.bytes(),
        );
        let stats = Arc::clone(&self.write_stats);
        registry.counter_fn(
            "flowdns_egress_correlated_bytes_total",
            "Flow bytes attributed to a service name",
            &[],
            move || stats.lock().volumes.correlated.bytes(),
        );
        for (shard, queue) in self.write_queues.iter().enumerate() {
            let shard_label = shard.to_string();
            let depth_queue = queue.clone();
            registry.gauge_fn(
                "flowdns_egress_queue_depth",
                "Records currently queued for one Write shard",
                &[("shard", &shard_label)],
                move || depth_queue.len() as f64,
            );
            let drop_queue = queue.clone();
            registry.counter_fn(
                "flowdns_egress_queue_dropped_total",
                "Records dropped at a full Write shard queue",
                &[("shard", &shard_label)],
                move || drop_queue.stats().dropped,
            );
        }
        let dropped = Arc::clone(&self.writes_dropped);
        registry.counter_fn(
            "flowdns_egress_sink_errors_total",
            "Records lost to sink write errors",
            &[],
            move || dropped.load(Ordering::Relaxed),
        );
        // Stage queues: depth, drops, and sampled queue-wait histograms.
        // The two queues hold different record types, so each gets its
        // own monomorphized registration.
        fn register_stage_queue<T: Send + 'static>(
            registry: &MetricsRegistry,
            name: &str,
            queue: &StreamBuffer<T>,
        ) {
            let depth_queue = queue.clone();
            registry.gauge_fn(
                "flowdns_queue_depth",
                "Records currently queued for a pipeline stage",
                &[("queue", name)],
                move || depth_queue.len() as f64,
            );
            let drop_queue = queue.clone();
            registry.counter_fn(
                "flowdns_queue_dropped_total",
                "Records dropped at a full stage queue (stream loss)",
                &[("queue", name)],
                move || drop_queue.stats().dropped,
            );
            let wait_queue = queue.clone();
            registry.histogram_fn(
                "flowdns_queue_wait_us",
                "Sampled enqueue-to-dequeue residency of a stage queue (µs)",
                &[("queue", name)],
                move || latency_to_histogram(&wait_queue.latency_snapshot().unwrap_or_default()),
            );
        }
        // One registration per lane in sharded mode: depth, drops, the
        // sampled wait histogram, and the routed-record counter — all
        // labelled `{queue, shard}` so a hot shard is visible directly.
        fn register_shard_lanes<T: Send + 'static>(
            registry: &MetricsRegistry,
            name: &str,
            channel: &Arc<ShardedChannel<T>>,
        ) {
            for lane in 0..channel.lanes() {
                let shard_label = lane.to_string();
                let depth_channel = Arc::clone(channel);
                registry.gauge_fn(
                    "flowdns_queue_depth",
                    "Records currently queued for a pipeline stage",
                    &[("queue", name), ("shard", &shard_label)],
                    move || depth_channel.lane_depth(lane) as f64,
                );
                let drop_channel = Arc::clone(channel);
                registry.counter_fn(
                    "flowdns_queue_dropped_total",
                    "Records dropped at a full stage queue (stream loss)",
                    &[("queue", name), ("shard", &shard_label)],
                    move || drop_channel.lane_stats(lane).dropped,
                );
                let routed_channel = Arc::clone(channel);
                registry.counter_fn(
                    "flowdns_shard_routed_total",
                    "Records routed into one correlator shard's ingress lane",
                    &[("queue", name), ("shard", &shard_label)],
                    move || routed_channel.lane_stats(lane).accepted,
                );
                let wait_channel = Arc::clone(channel);
                registry.histogram_fn(
                    "flowdns_queue_wait_us",
                    "Sampled enqueue-to-dequeue residency of a stage queue (µs)",
                    &[("queue", name), ("shard", &shard_label)],
                    move || latency_to_histogram(&wait_channel.lane_latency(lane)),
                );
            }
        }
        match &self.ingress {
            Ingress::Shared { fillup, lookup } => {
                register_stage_queue(registry, "fillup", fillup);
                register_stage_queue(registry, "lookup", lookup);
            }
            Ingress::Sharded { dns, flows, .. } => {
                register_shard_lanes(registry, "fillup", dns);
                register_shard_lanes(registry, "lookup", flows);
            }
        }
        // Per-stage service time (sampled 1-in-16 per worker).
        for (stage, histogram) in [
            ("fillup", self.stage_service.fillup.clone()),
            ("lookup", self.stage_service.lookup.clone()),
            ("write", self.stage_service.write.clone()),
        ] {
            registry.histogram_fn(
                "flowdns_stage_service_us",
                "Sampled per-record service time of a pipeline stage (µs)",
                &[("stage", stage)],
                move || histogram.snapshot(),
            );
        }
        // Store occupancy.
        let store = self.store.clone();
        registry.gauge_fn(
            "flowdns_store_entries",
            "Entries currently held by the DNS store",
            &[],
            move || store.total_entries() as f64,
        );
        let store = self.store.clone();
        registry.gauge_fn(
            "flowdns_store_payload_bytes",
            "Estimated payload bytes held by the DNS store",
            &[],
            move || store.memory_estimate().payload_bytes as f64,
        );
        // Snapshot persistence.
        let shared = Arc::clone(&self.snapshot_shared);
        registry.counter_fn(
            "flowdns_snapshots_written_total",
            "Store snapshots written (periodic + shutdown)",
            &[],
            move || shared.stats().snapshots_written,
        );
        let shared = Arc::clone(&self.snapshot_shared);
        registry.gauge_fn(
            "flowdns_snapshot_last_bytes",
            "File size of the most recent store snapshot",
            &[],
            move || shared.stats().last_bytes as f64,
        );
        let shared = Arc::clone(&self.snapshot_shared);
        registry.gauge_fn(
            "flowdns_snapshot_last_write_age_seconds",
            "Seconds since the last successful snapshot write (-1 = never)",
            &[],
            move || shared.stats().last_write_age_secs.unwrap_or(-1.0),
        );
        let shared = Arc::clone(&self.snapshot_shared);
        registry.gauge_fn(
            "flowdns_snapshot_warm_start_entries",
            "Entries restored from a snapshot at boot (0 = cold start)",
            &[],
            move || shared.stats().warm_start_entries as f64,
        );
        // BGP attribution.
        if let Some(view) = &self.asn_view {
            let epoch_view = view.clone();
            registry.gauge_fn(
                "flowdns_bgp_routing_epoch",
                "Routing-table reloads since start",
                &[],
                move || epoch_view.epoch() as f64,
            );
            let prefix_view = view.clone();
            registry.gauge_fn(
                "flowdns_bgp_prefixes",
                "Prefixes in the active routing table",
                &[],
                move || prefix_view.snapshot().len() as f64,
            );
        }
        // Flight recorder.
        if let Some(flight) = &self.flight {
            let emitted = Arc::clone(flight);
            registry.counter_fn(
                "flowdns_trace_spans_total",
                "Flight-recorder spans written to the trace file",
                &[],
                move || emitted.spans_emitted(),
            );
            let dropped = Arc::clone(flight);
            registry.counter_fn(
                "flowdns_trace_spans_dropped_total",
                "Trace samples dropped at the active-span cap",
                &[],
                move || dropped.spans_dropped(),
            );
        }
    }

    /// Install a freshly compiled routing table without stopping the
    /// pipeline (live BGP feed reload). Returns `false` when the
    /// pipeline was started without a routing table — attribution cannot
    /// be turned on after the fact.
    pub fn swap_routing_table(&self, table: FrozenTable) -> bool {
        match &self.asn_view {
            Some(view) => {
                view.swap(table);
                true
            }
            None => false,
        }
    }

    /// Offer one DNS record to the FillUp stage. Returns `false` if the
    /// queue was full and the record was dropped (stream loss).
    ///
    /// In sharded mode this routes through a mutex-guarded fallback
    /// producer — fine for tests and trickle callers; high-rate
    /// producers should hold a per-thread [`Correlator::ingress_router`].
    pub fn push_dns(&self, record: DnsRecord) -> bool {
        match &self.ingress {
            Ingress::Shared { fillup, .. } => fillup.push(record),
            Ingress::Sharded { dns, fallback, .. } => {
                let lane = shard_of_dns(&record, dns.lanes());
                fallback.lock().0.push(dns, lane, record)
            }
        }
    }

    /// Offer one flow record to the LookUp stage. Returns `false` if the
    /// queue was full and the record was dropped (stream loss).
    pub fn push_flow(&self, record: FlowRecord) -> bool {
        match &self.ingress {
            Ingress::Shared { lookup, .. } => lookup.push(record),
            Ingress::Sharded {
                flows, fallback, ..
            } => {
                let lane = shard_of_flow(&record, flows.lanes());
                fallback.lock().1.push(flows, lane, record)
            }
        }
    }

    /// Offer a batch of DNS records to the FillUp stage, returning how
    /// many were accepted. Records beyond the queue's free space are
    /// dropped and counted as stream loss. One batch costs one pair of
    /// counter updates regardless of size — push whole decoded datagrams
    /// through here rather than record by record.
    pub fn push_dns_batch<I>(&self, records: I) -> usize
    where
        I: IntoIterator<Item = DnsRecord>,
    {
        match &self.ingress {
            Ingress::Shared { fillup, .. } => fillup.push_batch(records),
            Ingress::Sharded { dns, fallback, .. } => {
                let lanes = dns.lanes();
                let mut guard = fallback.lock();
                let mut total = 0usize;
                for record in records {
                    let lane = shard_of_dns(&record, lanes);
                    if guard.0.push(dns, lane, record) {
                        total += 1;
                    }
                }
                total
            }
        }
    }

    /// Offer a batch of flow records to the LookUp stage, returning how
    /// many were accepted (the rest were dropped and counted).
    pub fn push_flow_batch<I>(&self, records: I) -> usize
    where
        I: IntoIterator<Item = FlowRecord>,
    {
        match &self.ingress {
            Ingress::Shared { lookup, .. } => lookup.push_batch(records),
            Ingress::Sharded {
                flows, fallback, ..
            } => {
                let lanes = flows.lanes();
                let mut guard = fallback.lock();
                let mut total = 0usize;
                for record in records {
                    let lane = shard_of_flow(&record, lanes);
                    if guard.1.push(flows, lane, record) {
                        total += 1;
                    }
                }
                total
            }
        }
    }

    /// Current depth of the three stages' queues (fillup, lookup, write):
    /// the write figure sums the per-shard queues, as do the input
    /// figures in sharded mode.
    pub fn queue_depths(&self) -> (usize, usize, usize) {
        let write = self.write_queues.iter().map(|q| q.len()).sum();
        match &self.ingress {
            Ingress::Shared { fillup, lookup } => (fillup.len(), lookup.len(), write),
            Ingress::Sharded { dns, flows, .. } => (
                (0..dns.lanes()).map(|i| dns.lane_depth(i)).sum(),
                (0..flows.lanes()).map(|i| flows.lane_depth(i)).sum(),
                write,
            ),
        }
    }

    /// Records dropped on the write path: shard-queue overflow plus sink
    /// write errors.
    fn writes_dropped_total(&self) -> u64 {
        let overflow: u64 = self.write_queues.iter().map(|q| q.stats().dropped).sum();
        overflow + self.writes_dropped.load(Ordering::Relaxed)
    }

    /// A live snapshot of the pipeline's metrics without consuming it:
    /// worker stats (flushed every `STATS_FLUSH_EVERY` = 512 records, so
    /// slightly behind the instantaneous truth), queue drop counters, and
    /// the store's current memory estimate. This is what periodic stats
    /// reporters (e.g. `flowdnsd`) should read; `finish()` returns the
    /// exact final numbers.
    pub fn snapshot(&self) -> PipelineMetrics {
        let (dns_dropped, flows_dropped, fillup_latency, lookup_latency) = match &self.ingress {
            Ingress::Shared { fillup, lookup } => (
                fillup.stats().dropped,
                lookup.stats().dropped,
                fillup.latency_snapshot().unwrap_or_default(),
                lookup.latency_snapshot().unwrap_or_default(),
            ),
            Ingress::Sharded { dns, flows, .. } => {
                let mut fillup_latency = LatencySnapshot::default();
                let mut lookup_latency = LatencySnapshot::default();
                for lane in 0..dns.lanes() {
                    fillup_latency.merge(&dns.lane_latency(lane));
                }
                for lane in 0..flows.lanes() {
                    lookup_latency.merge(&flows.lane_latency(lane));
                }
                (
                    (0..dns.lanes()).map(|i| dns.lane_stats(i).dropped).sum(),
                    (0..flows.lanes())
                        .map(|i| flows.lane_stats(i).dropped)
                        .sum(),
                    fillup_latency,
                    lookup_latency,
                )
            }
        };
        PipelineMetrics {
            fillup: *self.fillup_stats.lock(),
            lookup: *self.lookup_stats.lock(),
            write: *self.write_stats.lock(),
            dns_dropped,
            flows_dropped,
            writes_dropped: self.writes_dropped_total(),
            fillup_queue_latency: fillup_latency,
            lookup_queue_latency: lookup_latency,
            work_units: 0.0,
            peak_memory: self.store.memory_estimate(),
            ingest: Default::default(),
            snapshot: self.snapshot_shared.stats(),
        }
    }

    /// Live snapshot-persistence counters: writes so far, last file size,
    /// wall-clock age of the last write, warm-start entry count, and the
    /// most recent error if any. All zero when no `snapshot_path` is
    /// configured.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.snapshot_shared.stats()
    }

    /// Export the store and write the configured snapshot file now,
    /// regardless of the periodic interval. Returns `false` when no
    /// `snapshot_path` is configured (or the variant has no durable
    /// state); errors are folded into [`Correlator::snapshot_stats`]
    /// like the background thread's.
    pub fn write_snapshot_now(&self) -> bool {
        match &self.config.snapshot_path {
            Some(path) if !self.store.is_exact_ttl() => {
                write_store_snapshot(&self.store, path, &self.snapshot_shared);
                true
            }
            _ => false,
        }
    }

    /// Stop accepting input, drain every queue, join all workers, write
    /// the final store snapshot (when configured), and return the final
    /// report.
    pub fn finish(mut self) -> Result<Report, FlowDnsError> {
        // Phase 0: stop the periodic snapshot thread. The *final*
        // snapshot is written below, after the input stages have drained,
        // so a clean shutdown always persists the complete store. A
        // panicked snapshot thread must NOT abort the shutdown here —
        // the worker stages still have to drain and flush their sinks —
        // so the error is held and surfaced at the end.
        self.snapshot_shutdown.store(true, Ordering::Release);
        let snapshot_panic = match self.snapshot_worker.take() {
            Some(handle) => handle
                .join()
                .err()
                .map(|_| FlowDnsError::PipelineState("snapshot worker panicked".into())),
            None => None,
        };
        // Phase 1: stop input stages and let them drain. The input and
        // write stages keep their handles in separate vectors, so the
        // ordering does not depend on thread names.
        self.input_shutdown.store(true, Ordering::Release);
        for handle in self.input_workers.drain(..) {
            handle
                .join()
                .map_err(|_| FlowDnsError::PipelineState("worker panicked".into()))?;
        }
        // Phase 2: input stages are done, so the write queues will receive
        // nothing more; let the writers drain, flush their sinks and stop.
        self.write_shutdown.store(true, Ordering::Release);
        for handle in self.write_workers.drain(..) {
            handle
                .join()
                .map_err(|_| FlowDnsError::PipelineState("write worker panicked".into()))?;
        }
        // Every record has reached egress, so the flight recorder's
        // buffered spans can be flushed to disk.
        if let Some(flight) = &self.flight {
            flight.flush();
        }
        // Final snapshot BEFORE the egress-error check: the store is
        // quiescent now (every accepted DNS record has been applied), so
        // this image is exact — and an output-disk failure must not also
        // forfeit the warm-start file (the snapshot usually lives on a
        // different path or volume than the TSV output). A snapshot
        // *write* failure lands in the metrics, not in the Result —
        // losing the warm-start file must not mask an otherwise clean
        // run.
        self.write_snapshot_now();
        // A failed end-of-run flush or rotation rename means output is
        // incomplete; report it instead of an Ok-looking Report.
        if let Some(e) = self.egress_error.lock().take() {
            return Err(e);
        }
        // A snapshot-thread panic is a real defect and errors out (after
        // the output is safely flushed above).
        if let Some(e) = snapshot_panic {
            return Err(e);
        }

        let metrics = self.snapshot();
        Ok(Report {
            volumes: metrics.write.volumes,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::write::RotatingFileSink;
    use flowdns_bgp::Announcement;
    use flowdns_types::{DomainName, SimDuration, SimTime};
    use std::net::Ipv4Addr;

    fn dns(ts: u64, name: &str, ip: [u8; 4], ttl: u32) -> DnsRecord {
        DnsRecord::address(
            SimTime::from_secs(ts),
            DomainName::literal(name),
            Ipv4Addr::from(ip).into(),
            ttl,
        )
    }

    fn flow(ts: u64, src: [u8; 4], bytes: u64) -> FlowRecord {
        FlowRecord::inbound(
            SimTime::from_secs(ts),
            Ipv4Addr::from(src).into(),
            Ipv4Addr::new(10, 0, 0, 1).into(),
            bytes,
        )
    }

    #[test]
    fn end_to_end_correlation_through_threads() {
        let correlator = Correlator::start(CorrelatorConfig::default()).unwrap();
        // Fill DNS first and give FillUp workers a moment to drain, so the
        // flows looked up afterwards find their records.
        for i in 0..50u8 {
            assert!(correlator.push_dns(dns(1, &format!("svc{i}.example"), [203, 0, 113, i], 300)));
        }
        while correlator.queue_depths().0 > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        for i in 0..50u8 {
            assert!(correlator.push_flow(flow(2, [203, 0, 113, i], 1_000)));
        }
        // One flow from an unknown source.
        assert!(correlator.push_flow(flow(2, [192, 0, 2, 1], 1_000)));
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.write.records_written, 51);
        assert_eq!(report.metrics.lookup.ip_hits, 50);
        assert_eq!(report.metrics.lookup.ip_misses, 1);
        let expected = 50.0 / 51.0 * 100.0;
        assert!((report.correlation_rate_pct() - expected).abs() < 0.5);
        assert_eq!(report.metrics.dns_dropped, 0);
        assert_eq!(report.metrics.flows_dropped, 0);
    }

    #[test]
    fn finish_drains_queues_before_reporting() {
        let config = CorrelatorConfig {
            fillup_workers: 1,
            lookup_workers: 1,
            ..CorrelatorConfig::default()
        };
        let correlator = Correlator::start(config).unwrap();
        for i in 0..200u8 {
            correlator.push_dns(dns(1, "bulk.example", [198, 51, 100, i], 60));
        }
        for i in 0..200u8 {
            correlator.push_flow(flow(2, [198, 51, 100, i], 500));
        }
        let report = correlator.finish().unwrap();
        // Every accepted record must have been processed and written.
        assert_eq!(report.metrics.write.records_written, 200);
        assert_eq!(
            report.metrics.fillup.addresses_stored + report.metrics.fillup.filtered,
            200
        );
        // 200 accepted records cross the 64-record sampling boundary at
        // least once per queue, so the residency histograms are live.
        assert!(report.metrics.fillup_queue_latency.count >= 1);
        assert!(report.metrics.lookup_queue_latency.count >= 1);
    }

    #[test]
    fn sharded_writers_cover_every_record_exactly_once() {
        // Four write shards, plenty of flows: the per-shard partitioning
        // must neither lose nor duplicate records, and the merged stats
        // must equal the single-writer totals.
        let config = CorrelatorConfig {
            write_workers: 4,
            ..CorrelatorConfig::default()
        };
        let correlator = Correlator::start(config).unwrap();
        for i in 0..100u8 {
            correlator.push_dns(dns(1, &format!("s{i}.example"), [203, 0, 113, i], 300));
        }
        while correlator.queue_depths().0 > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        for round in 0..4u64 {
            for i in 0..100u8 {
                correlator.push_flow(flow(2 + round, [203, 0, 113, i], 1_000));
            }
        }
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.write.records_written, 400);
        assert_eq!(report.metrics.lookup.ip_hits, 400);
        assert_eq!(report.metrics.writes_dropped, 0);
        assert_eq!(report.volumes.total.bytes(), 400_000);
    }

    #[test]
    fn shard_partitioning_is_stable_per_flow_key() {
        let key = FlowKey {
            src_ip: Ipv4Addr::new(203, 0, 113, 5).into(),
            dst_ip: Ipv4Addr::new(10, 0, 0, 1).into(),
            src_port: 443,
            dst_port: 50000,
            proto: flowdns_types::Protocol::Tcp,
        };
        let shard = shard_of(&key, 8);
        for _ in 0..100 {
            assert_eq!(shard_of(&key, 8), shard);
        }
        assert!(shard < 8);
        assert_eq!(shard_of(&key, 1), 0);
        // Different keys spread across shards.
        let spread: std::collections::HashSet<usize> = (0..64u8)
            .map(|i| {
                let mut k = key;
                k.src_ip = Ipv4Addr::new(203, 0, 113, i).into();
                shard_of(&k, 8)
            })
            .collect();
        assert!(spread.len() > 1);
    }

    #[test]
    fn start_with_sink_rejects_multiple_write_workers() {
        let config = CorrelatorConfig {
            write_workers: 2,
            ..CorrelatorConfig::default()
        };
        assert!(Correlator::start_with_sink(config, Box::new(MemorySink::new())).is_err());
    }

    #[test]
    fn sink_factory_error_fails_start_without_leaking_workers() {
        // Sinks are built before any worker thread is spawned, so a
        // factory failure (e.g. an unwritable output path) is a clean
        // start error — nothing is left spinning on the queues.
        let config = CorrelatorConfig {
            write_workers: 2,
            ..CorrelatorConfig::default()
        };
        let mut calls = 0usize;
        let result = Correlator::start_with_sink_factory(config, |shard| {
            calls += 1;
            if shard == 1 {
                Err(FlowDnsError::Config("no disk".into()))
            } else {
                Ok(Box::new(MemorySink::new()) as Box<dyn OutputSink>)
            }
        });
        assert!(result.is_err());
        assert_eq!(calls, 2);
    }

    #[test]
    fn finalize_errors_surface_through_finish() {
        // A sink whose end-of-run finalize fails (disk full during the
        // last flush / rotation rename) must turn finish() into an
        // error, not an Ok-looking report with missing output.
        struct BadEndSink;
        impl crate::write::OutputSink for BadEndSink {
            fn write_record(&mut self, _record: &CorrelatedRecord) -> Result<(), FlowDnsError> {
                Ok(())
            }
            fn finalize(&mut self) -> Result<(), FlowDnsError> {
                Err(FlowDnsError::Io("disk full at shutdown".into()))
            }
        }
        let correlator =
            Correlator::start_with_sink(CorrelatorConfig::default(), Box::new(BadEndSink)).unwrap();
        correlator.push_flow(flow(1, [203, 0, 113, 1], 100));
        match correlator.finish() {
            Err(FlowDnsError::Io(msg)) => assert!(msg.contains("disk full")),
            other => panic!("expected the finalize error, got {other:?}"),
        }
    }

    #[test]
    fn tiny_queues_produce_loss_not_deadlock() {
        let config = CorrelatorConfig {
            fillup_queue_capacity: 8,
            lookup_queue_capacity: 8,
            write_queue_capacity: 8,
            fillup_workers: 1,
            lookup_workers: 1,
            write_workers: 1,
            ..CorrelatorConfig::default()
        };
        let correlator = Correlator::start(config).unwrap();
        let mut dns_accepted = 0u64;
        for i in 0..10_000u32 {
            if correlator.push_dns(dns(1, "x.example", [10, (i >> 8) as u8, i as u8, 1], 60)) {
                dns_accepted += 1;
            }
        }
        let report = correlator.finish().unwrap();
        assert_eq!(
            report.metrics.fillup.total(),
            dns_accepted,
            "every accepted record is processed"
        );
        // With a queue of 8 against a burst of 10k, some loss is certain.
        assert!(report.metrics.dns_dropped > 0);
    }

    #[test]
    fn batched_ingress_matches_per_record_ingress() {
        let correlator = Correlator::start(CorrelatorConfig::default()).unwrap();
        let dns_batch: Vec<DnsRecord> = (0..40u8)
            .map(|i| dns(1, &format!("svc{i}.example"), [203, 0, 113, i], 300))
            .collect();
        assert_eq!(correlator.push_dns_batch(dns_batch), 40);
        while correlator.queue_depths().0 > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        let flow_batch: Vec<FlowRecord> = (0..40u8)
            .map(|i| flow(2, [203, 0, 113, i], 1_000))
            .collect();
        assert_eq!(correlator.push_flow_batch(flow_batch), 40);
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.lookup.ip_hits, 40);
        assert_eq!(report.metrics.write.records_written, 40);
        assert_eq!(report.metrics.dns_dropped, 0);
    }

    #[test]
    fn batch_push_reports_partial_acceptance_on_overflow() {
        let config = CorrelatorConfig {
            fillup_queue_capacity: 8,
            fillup_workers: 1,
            lookup_workers: 1,
            write_workers: 1,
            ..CorrelatorConfig::default()
        };
        let correlator = Correlator::start(config).unwrap();
        let batch: Vec<DnsRecord> = (0..10_000u32)
            .map(|i| dns(1, "x.example", [10, (i >> 8) as u8, i as u8, 1], 60))
            .collect();
        let accepted = correlator.push_dns_batch(batch);
        assert!(accepted < 10_000, "a burst past a queue of 8 must drop");
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.fillup.total(), accepted as u64);
        assert_eq!(report.metrics.dns_dropped, 10_000 - accepted as u64);
    }

    #[test]
    fn snapshot_reads_live_metrics_without_consuming() {
        let correlator = Correlator::start(CorrelatorConfig::default()).unwrap();
        for i in 0..30u8 {
            correlator.push_dns(dns(1, "snap.example", [198, 51, 100, i], 60));
        }
        while correlator.queue_depths().0 > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        for i in 0..30u8 {
            correlator.push_flow(flow(2, [198, 51, 100, i], 500));
        }
        // Wait until the pipeline has visibly written everything, then
        // snapshot: the pipeline keeps running afterwards.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let snap = correlator.snapshot();
            // Worker-local stats flush on idle, so the live snapshot must
            // converge to the full totals without finishing the pipeline.
            if snap.write.records_written == 30
                && snap.lookup.total() == 30
                && snap.fillup.addresses_stored == 30
            {
                assert!(snap.peak_memory.entries > 0);
                assert_eq!(snap.dns_dropped, 0);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "live snapshot never converged to 30 records"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // Worker-side stats (flushed periodically) must be exact in the
        // final report even if the snapshot lagged.
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.lookup.total(), 30);
        assert_eq!(report.metrics.write.records_written, 30);
    }

    #[test]
    fn exact_ttl_variant_runs_in_pipeline() {
        let correlator =
            Correlator::start(CorrelatorConfig::for_variant(Variant::ExactTtl)).unwrap();
        correlator.push_dns(dns(1, "ttl.example", [203, 0, 113, 77], 30));
        while correlator.queue_depths().0 > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        // Within TTL: correlated. After TTL: not.
        correlator.push_flow(flow(10, [203, 0, 113, 77], 100));
        correlator.push_flow(flow(500, [203, 0, 113, 77], 100));
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.lookup.ip_hits, 1);
        assert_eq!(report.metrics.lookup.ip_misses, 1);
    }

    #[test]
    fn pipeline_stamps_asns_and_swaps_tables_live() {
        let table = |asn: u32| {
            let mut t = RoutingTable::new();
            t.announce(Announcement {
                prefix: "203.0.113.0/24".parse().unwrap(),
                origin_as: asn,
            });
            t.freeze()
        };
        let view = AsnView::new(table(64500));
        let dir = std::env::temp_dir().join("flowdns-pipeline-asn-test");
        std::fs::remove_dir_all(&dir).ok();
        let correlator = Correlator::start_with_egress(
            CorrelatorConfig::default(),
            |shard| {
                Ok(Box::new(
                    RotatingFileSink::new(&dir, "corr", SimDuration::from_secs(3600))?
                        .with_shard(shard),
                ))
            },
            Some(view),
        )
        .unwrap();

        correlator.push_dns(dns(1, "svc.example", [203, 0, 113, 9], 300));
        while correlator.queue_depths().0 > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        correlator.push_flow(flow(2, [203, 0, 113, 9], 1_000));

        // Live reload: later flows must see the new origin AS.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while correlator.snapshot().write.records_written < 1 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(correlator.swap_routing_table(table(64999)));
        assert_eq!(correlator.asn_view().unwrap().epoch(), 1);
        correlator.push_flow(flow(3, [203, 0, 113, 9], 2_000));

        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.write.records_written, 2);
        assert_eq!(report.metrics.lookup.asn_stamped, 2);

        let mut lines: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flat_map(|e| {
                let content = std::fs::read_to_string(e.unwrap().path()).unwrap_or_default();
                content.lines().map(String::from).collect::<Vec<_>>()
            })
            .collect();
        lines.sort();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\t64500\t"), "line: {}", lines[0]);
        assert!(lines[1].contains("\t64999\t"), "line: {}", lines[1]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finish_writes_a_snapshot_and_restart_warm_starts_from_it() {
        let dir = std::env::temp_dir().join("flowdns-pipeline-snapshot-test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("store.fdns");
        let config = CorrelatorConfig {
            snapshot_path: Some(path.to_string_lossy().into_owned()),
            snapshot_interval: Duration::ZERO, // shutdown snapshot only
            ..CorrelatorConfig::default()
        };

        // First run: learn 20 DNS records, shut down cleanly.
        let first = Correlator::start(config.clone()).unwrap();
        assert!(!first.snapshot_stats().warm_started());
        for i in 0..20u8 {
            first.push_dns(dns(1, &format!("svc{i}.example"), [203, 0, 113, i], 300));
        }
        let report = first.finish().unwrap();
        assert_eq!(report.metrics.snapshot.snapshots_written, 1);
        assert!(report.metrics.snapshot.last_bytes > 0);
        assert_eq!(report.metrics.snapshot.last_entries, 20);
        assert!(path.exists());
        assert!(!flowdns_snapshot::part_path(&path).exists());

        // Second run: no DNS ingest at all — flows must still correlate
        // from the snapshotted state.
        let second = Correlator::start(config).unwrap();
        let stats = second.snapshot_stats();
        assert!(stats.warm_started(), "expected a warm start: {stats:?}");
        assert_eq!(stats.warm_start_entries, 20);
        assert_eq!(second.stored_entries(), 20);
        for i in 0..20u8 {
            second.push_flow(flow(2, [203, 0, 113, i], 1_000));
        }
        let report = second.finish().unwrap();
        assert_eq!(report.metrics.lookup.ip_hits, 20);
        assert_eq!(report.metrics.lookup.ip_misses, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn periodic_snapshot_thread_writes_while_live() {
        let dir = std::env::temp_dir().join("flowdns-pipeline-snapshot-periodic");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("store.fdns");
        let config = CorrelatorConfig {
            snapshot_path: Some(path.to_string_lossy().into_owned()),
            snapshot_interval: Duration::from_millis(100),
            ..CorrelatorConfig::default()
        };
        let correlator = Correlator::start(config).unwrap();
        for i in 0..10u8 {
            correlator.push_dns(dns(1, "live.example", [198, 51, 100, i], 60));
        }
        // The background thread must write without any shutdown.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let stats = correlator.snapshot_stats();
            if stats.snapshots_written >= 1 {
                assert!(path.exists());
                assert!(stats.last_write_age_secs.is_some());
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "periodic snapshot never appeared"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let report = correlator.finish().unwrap();
        // Shutdown adds a final snapshot on top of the periodic ones.
        assert!(report.metrics.snapshot.snapshots_written >= 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_start_ages_snapshotted_state_by_process_downtime() {
        let dir = std::env::temp_dir().join("flowdns-pipeline-snapshot-downtime");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("store.fdns");
        let config = CorrelatorConfig {
            snapshot_path: Some(path.to_string_lossy().into_owned()),
            snapshot_interval: Duration::ZERO,
            ..CorrelatorConfig::default()
        };
        let first = Correlator::start(config.clone()).unwrap();
        // One short-TTL record (Active map) and one long-TTL (Long map).
        first.push_dns(dns(1, "short.example", [203, 0, 113, 1], 300));
        first.push_dns(dns(1, "stable.example", [203, 0, 113, 2], 86_400));
        first.finish().unwrap();

        // Backdate the snapshot by two days, as if the process had been
        // down that long; live record timestamps are wall-clock-derived,
        // so the warm start must expire everything but the Long maps.
        let file = std::fs::File::options().write(true).open(&path).unwrap();
        file.set_modified(std::time::SystemTime::now() - Duration::from_secs(2 * 86_400))
            .unwrap();
        drop(file);

        let second = Correlator::start(config).unwrap();
        let stats = second.snapshot_stats();
        assert!(stats.warm_started(), "{stats:?}");
        // Only the Long entry survived the simulated outage.
        assert_eq!(second.stored_entries(), 1);
        second.push_flow(flow(2, [203, 0, 113, 1], 1_000)); // expired
        second.push_flow(flow(2, [203, 0, 113, 2], 1_000)); // long-lived
        let report = second.finish().unwrap();
        assert_eq!(report.metrics.lookup.ip_hits, 1);
        assert_eq!(report.metrics.lookup.ip_misses, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_degrades_to_a_cold_start() {
        let dir = std::env::temp_dir().join("flowdns-pipeline-snapshot-corrupt");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.fdns");
        std::fs::write(&path, b"FDNSSNAPgarbage-not-a-snapshot").unwrap();
        let config = CorrelatorConfig {
            snapshot_path: Some(path.to_string_lossy().into_owned()),
            snapshot_interval: Duration::ZERO,
            ..CorrelatorConfig::default()
        };
        let correlator = Correlator::start(config).unwrap();
        let stats = correlator.snapshot_stats();
        assert!(!stats.warm_started());
        assert!(
            stats
                .last_error
                .as_deref()
                .is_some_and(|e| e.contains("warm start")),
            "expected a recorded warm-start error: {stats:?}"
        );
        // The pipeline still runs, and shutdown replaces the bad file.
        correlator.push_dns(dns(1, "fresh.example", [203, 0, 113, 1], 60));
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.snapshot.snapshots_written, 1);
        assert!(flowdns_snapshot::read_snapshot(&path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_and_obs_bucket_schemes_are_identical() {
        // `latency_to_histogram` moves bucket counters verbatim between
        // the two crates' histograms; that is only sound if every value
        // lands in the same index with the same upper bound on both
        // sides.
        assert_eq!(
            flowdns_stream::LATENCY_BUCKETS,
            flowdns_obs::HISTOGRAM_BUCKETS
        );
        for us in [0u64, 1, 3, 4, 5, 7, 8, 100, 1_000, 65_536, u64::MAX >> 20] {
            assert_eq!(
                flowdns_stream::bucket_index_us(us),
                flowdns_obs::bucket_index(us),
                "bucket index diverges at {us}µs"
            );
        }
        for index in 0..flowdns_obs::HISTOGRAM_BUCKETS {
            assert_eq!(
                flowdns_stream::bucket_upper_bound_us(index),
                flowdns_obs::bucket_upper_bound(index),
                "upper bound diverges at bucket {index}"
            );
        }
    }

    #[test]
    fn registry_reflects_pipeline_counters() {
        let correlator = Correlator::start(CorrelatorConfig::default()).unwrap();
        let registry = MetricsRegistry::new();
        correlator.register_metrics(&registry);
        for i in 0..30u8 {
            correlator.push_dns(dns(1, "reg.example", [203, 0, 113, i], 300));
        }
        while correlator.queue_depths().0 > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        for i in 0..30u8 {
            correlator.push_flow(flow(2, [203, 0, 113, i], 1_000));
        }
        // The registry reads the same live counters as `snapshot()`, so
        // it must converge to the full totals without a shutdown.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let snap = registry.snapshot();
            // Worker-local stats flush on idle; wait for every stage's
            // counters to converge, then check the derived series.
            if snap.counter("flowdns_egress_records_total") == 30
                && snap.counter_with("flowdns_lookup_flows_total", "result", "ip_hit") == 30
                && snap.counter_with("flowdns_fillup_records_total", "kind", "addresses") == 30
            {
                assert_eq!(snap.counter("flowdns_egress_bytes_total"), 30_000);
                assert!(snap.gauge("flowdns_store_entries").unwrap() >= 1.0);
                // Sampled 1-in-16: 30 records time at least one sample.
                let service = snap
                    .histogram_with("flowdns_stage_service_us", "stage", "lookup")
                    .expect("service histogram registered");
                assert!(service.count() >= 1);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "registry never converged: {}",
                registry.render_prometheus()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // The exposition renders and mentions the key families.
        let text = registry.render_prometheus();
        for family in [
            "flowdns_queue_depth",
            "flowdns_queue_wait_us_bucket",
            "flowdns_egress_queue_depth",
            "flowdns_snapshots_written_total",
        ] {
            assert!(text.contains(family), "missing {family} in exposition");
        }
        correlator.finish().unwrap();
    }

    #[test]
    fn flight_recorder_traces_flows_end_to_end() {
        let dir = std::env::temp_dir().join("flowdns-pipeline-trace-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.jsonl");
        let config = CorrelatorConfig {
            trace_sample_every: 1,
            trace_path: Some(trace_path.to_string_lossy().into_owned()),
            ..CorrelatorConfig::default()
        };
        let correlator = Correlator::start(config).unwrap();
        let flight = Arc::clone(correlator.flight_recorder().expect("tracing on"));
        correlator.push_dns(dns(1, "traced.example", [203, 0, 113, 1], 300));
        while correlator.queue_depths().0 > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        // The ingest layer hands out tokens post-decode; emulate it.
        for i in 0..8u8 {
            let mut f = flow(2, [203, 0, 113, 1], 1_000 + i as u64);
            f.trace = flight.maybe_start();
            if let Some(id) = f.trace {
                flight.stamp_enqueue(id);
            }
            correlator.push_flow(f);
        }
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.write.records_written, 8);
        assert_eq!(flight.spans_emitted(), 8);
        let text = std::fs::read_to_string(&trace_path).unwrap();
        assert_eq!(text.lines().count(), 8);
        for line in text.lines() {
            for key in [
                "\"trace_id\":",
                "\"queue_wait_us\":",
                "\"lookup_us\":",
                "\"egress_us\":",
                "\"total_us\":",
                "\"shard\":0",
            ] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tracing_requires_a_path() {
        let config = CorrelatorConfig {
            trace_sample_every: 64,
            ..CorrelatorConfig::default()
        };
        assert!(Correlator::start(config).is_err());
    }

    #[test]
    fn pipeline_without_table_leaves_asns_unstamped() {
        let correlator = Correlator::start(CorrelatorConfig::default()).unwrap();
        assert!(correlator.asn_view().is_none());
        assert!(!correlator.swap_routing_table(FrozenTable::new()));
        correlator.push_flow(flow(1, [203, 0, 113, 1], 100));
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.lookup.asn_stamped, 0);
    }

    #[test]
    fn sharded_pipeline_correlates_end_to_end() {
        let config = CorrelatorConfig {
            correlator_shards: 4,
            ..CorrelatorConfig::default()
        };
        let correlator = Correlator::start(config).unwrap();
        assert_eq!(correlator.shards(), 4);
        assert!(correlator.sharded_store().is_some());
        for i in 0..50u8 {
            assert!(correlator.push_dns(dns(1, &format!("svc{i}.example"), [203, 0, 113, i], 300)));
        }
        while correlator.queue_depths().0 > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        for i in 0..50u8 {
            assert!(correlator.push_flow(flow(2, [203, 0, 113, i], 1_000)));
        }
        assert!(correlator.push_flow(flow(2, [192, 0, 2, 1], 1_000)));
        // Per-shard routed counters must account for every accepted
        // record (the CI saturation smoke asserts the same invariant).
        let (dns_routed, flow_routed) = correlator.shard_routed_counts().unwrap();
        assert_eq!(dns_routed.len(), 4);
        assert_eq!(dns_routed.iter().sum::<u64>(), 50);
        assert_eq!(flow_routed.iter().sum::<u64>(), 51);
        // 50 distinct IPs across 4 shards: every shard must see some.
        assert!(
            dns_routed.iter().all(|&n| n > 0),
            "unbalanced: {dns_routed:?}"
        );
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.write.records_written, 51);
        assert_eq!(report.metrics.lookup.ip_hits, 50);
        assert_eq!(report.metrics.lookup.ip_misses, 1);
        assert_eq!(report.metrics.dns_dropped, 0);
        assert_eq!(report.metrics.flows_dropped, 0);
    }

    #[test]
    fn sharded_router_batches_match_per_record_pushes() {
        let config = CorrelatorConfig {
            correlator_shards: 2,
            ..CorrelatorConfig::default()
        };
        let correlator = Correlator::start(config).unwrap();
        let mut router = correlator.ingress_router().unwrap();
        assert_eq!(router.shards(), 2);
        let accepted = router
            .route_dns_batch((0..40u8).map(|i| dns(1, "batch.example", [198, 51, 100, i], 60)));
        assert_eq!(accepted, 40);
        while correlator.queue_depths().0 > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        let accepted = router.route_flow_batch((0..40u8).map(|i| flow(2, [198, 51, 100, i], 500)));
        assert_eq!(accepted, 40);
        let (dns_routed, flow_routed) = correlator.shard_routed_counts().unwrap();
        assert_eq!(dns_routed.iter().sum::<u64>(), 40);
        assert_eq!(flow_routed.iter().sum::<u64>(), 40);
        // A DNS answer for an IP and a flow from that IP must route to
        // the same shard — that is the whole correctness argument.
        assert_eq!(dns_routed, flow_routed);
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.write.records_written, 40);
        assert_eq!(report.metrics.lookup.ip_hits, 40);
    }

    #[test]
    fn sharded_kill_and_restart_warm_starts_from_the_snapshot() {
        let dir = std::env::temp_dir().join("flowdns-pipeline-sharded-snapshot");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("store.fdns");
        let config = CorrelatorConfig {
            correlator_shards: 2,
            snapshot_path: Some(path.to_string_lossy().into_owned()),
            snapshot_interval: Duration::ZERO,
            ..CorrelatorConfig::default()
        };
        let first = Correlator::start(config.clone()).unwrap();
        for i in 0..20u8 {
            first.push_dns(dns(1, &format!("svc{i}.example"), [203, 0, 113, i], 300));
        }
        let report = first.finish().unwrap();
        assert_eq!(report.metrics.snapshot.snapshots_written, 1);
        assert_eq!(report.metrics.snapshot.last_entries, 20);

        let second = Correlator::start(config).unwrap();
        let stats = second.snapshot_stats();
        assert!(stats.warm_started(), "expected a warm start: {stats:?}");
        assert_eq!(second.stored_entries(), 20);
        for i in 0..20u8 {
            second.push_flow(flow(2, [203, 0, 113, i], 1_000));
        }
        let report = second.finish().unwrap();
        assert_eq!(report.metrics.lookup.ip_hits, 20);
        assert_eq!(report.metrics.lookup.ip_misses, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_count_change_on_warm_start_degrades_to_a_cold_start() {
        let dir = std::env::temp_dir().join("flowdns-pipeline-shard-count-change");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("store.fdns");
        let write_config = CorrelatorConfig {
            correlator_shards: 2,
            snapshot_path: Some(path.to_string_lossy().into_owned()),
            snapshot_interval: Duration::ZERO,
            ..CorrelatorConfig::default()
        };
        let first = Correlator::start(write_config.clone()).unwrap();
        first.push_dns(dns(1, "persist.example", [203, 0, 113, 7], 300));
        first.finish().unwrap();
        assert!(path.exists());

        // Same snapshot, different shard count: the warm start must be
        // rejected cleanly — cold start, recorded error, daemon still up.
        let reread_config = CorrelatorConfig {
            correlator_shards: 4,
            ..write_config
        };
        let second = Correlator::start(reread_config).unwrap();
        let stats = second.snapshot_stats();
        assert!(!stats.warm_started());
        assert!(
            stats
                .last_error
                .as_deref()
                .is_some_and(|e| e.contains("warm start") && e.contains("shards")),
            "expected a recorded shard-count error: {stats:?}"
        );
        assert_eq!(second.stored_entries(), 0);
        // Still a live pipeline; shutdown overwrites the incompatible
        // snapshot with a 4-shard image.
        second.push_dns(dns(1, "fresh.example", [203, 0, 113, 8], 300));
        second.finish().unwrap();
        let image = flowdns_snapshot::read_snapshot(path.to_str().unwrap()).unwrap();
        assert_eq!(image.shards, 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
