//! The live, threaded correlation pipeline (Figure 1).
//!
//! [`Correlator`] wires the worker stages together with bounded queues:
//!
//! * `push_dns` places DNS records on the **FillUp queue**; FillUp worker
//!   threads drain it into the shared [`DnsStore`];
//! * `push_flow` places flow records on the **LookUp queue**; LookUp
//!   worker threads resolve them against the store and place the results
//!   on the **Write queue**;
//! * Write worker threads drain the Write queue into the configured
//!   [`OutputSink`].
//!
//! All queues are bounded and lossy (see `flowdns-stream`): when a queue
//! overflows, records are dropped and counted, exactly like the paper's
//! stream buffers. Ingress is available per record (`push_dns`,
//! `push_flow`) and per batch (`push_dns_batch`, `push_flow_batch`); the
//! batch forms amortize the queue's synchronization over a whole decoded
//! datagram and are what the live ingest layer uses. `finish()` performs
//! an ordered shutdown (producers first, writers last) so no accepted
//! record is lost on the way out; `snapshot()` reads live
//! [`PipelineMetrics`] without stopping anything.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use flowdns_stream::StreamBuffer;
use flowdns_types::{CorrelatedRecord, DnsRecord, FlowDnsError, FlowRecord};

use crate::config::CorrelatorConfig;
use crate::fillup::{process_dns_record, FillUpStats};
use crate::lookup::{LookUpStats, Resolver};
use crate::metrics::{PipelineMetrics, Report};
use crate::store::DnsStore;
use crate::write::{MemorySink, OutputSink, SharedWriter};

const POP_WAIT: Duration = Duration::from_millis(5);

/// Records a worker processes between flushes of its thread-local stats
/// into the shared counters `snapshot()` reads. Large enough to keep the
/// hot loop lock-free in practice, small enough that live stats lag by
/// at most a few hundred records per worker.
const STATS_FLUSH_EVERY: u64 = 512;

/// A running correlation pipeline.
pub struct Correlator {
    config: CorrelatorConfig,
    store: Arc<DnsStore>,
    fillup_queue: StreamBuffer<DnsRecord>,
    lookup_queue: StreamBuffer<FlowRecord>,
    write_queue: StreamBuffer<CorrelatedRecord>,
    writer: Arc<SharedWriter>,
    fillup_stats: Arc<Mutex<FillUpStats>>,
    lookup_stats: Arc<Mutex<LookUpStats>>,
    input_shutdown: Arc<AtomicBool>,
    write_shutdown: Arc<AtomicBool>,
    writes_dropped: Arc<Mutex<u64>>,
    /// FillUp and LookUp worker handles (joined first at shutdown).
    input_workers: Vec<JoinHandle<()>>,
    /// Write worker handles (joined after the input stages have drained).
    write_workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Correlator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Correlator")
            .field("config", &self.config)
            .field("stored_entries", &self.store.total_entries())
            .finish()
    }
}

impl Correlator {
    /// Start a pipeline writing to an in-memory sink.
    pub fn start(config: CorrelatorConfig) -> Result<Self, FlowDnsError> {
        Correlator::start_with_sink(config, Box::new(MemorySink::new()))
    }

    /// Start a pipeline writing to the given sink.
    pub fn start_with_sink(
        config: CorrelatorConfig,
        sink: Box<dyn OutputSink>,
    ) -> Result<Self, FlowDnsError> {
        config.validate()?;
        let store = Arc::new(DnsStore::new(&config));
        let fillup_queue = StreamBuffer::new(config.fillup_queue_capacity);
        let lookup_queue = StreamBuffer::new(config.lookup_queue_capacity);
        let write_queue = StreamBuffer::new(config.write_queue_capacity);
        let writer = Arc::new(SharedWriter::new(sink));
        let fillup_stats = Arc::new(Mutex::new(FillUpStats::default()));
        let lookup_stats = Arc::new(Mutex::new(LookUpStats::default()));
        let input_shutdown = Arc::new(AtomicBool::new(false));
        let write_shutdown = Arc::new(AtomicBool::new(false));
        let writes_dropped = Arc::new(Mutex::new(0u64));

        let mut input_workers = Vec::new();
        let mut write_workers = Vec::new();

        // FillUp workers.
        for i in 0..config.fillup_workers {
            let queue = fillup_queue.clone();
            let store = Arc::clone(&store);
            let stats = Arc::clone(&fillup_stats);
            let shutdown = Arc::clone(&input_shutdown);
            input_workers.push(
                std::thread::Builder::new()
                    .name(format!("fillup-{i}"))
                    .spawn(move || {
                        let mut local = FillUpStats::default();
                        loop {
                            match queue.pop_wait(POP_WAIT) {
                                Some(record) => {
                                    process_dns_record(&store, &record, &mut local);
                                    if local.total() >= STATS_FLUSH_EVERY {
                                        stats.lock().merge(&local);
                                        local = FillUpStats::default();
                                    }
                                }
                                None => {
                                    // Idle: flush pending local stats so
                                    // `snapshot()` converges on quiet streams.
                                    if local != FillUpStats::default() {
                                        stats.lock().merge(&local);
                                        local = FillUpStats::default();
                                    }
                                    if shutdown.load(Ordering::Acquire) && queue.is_empty() {
                                        break;
                                    }
                                }
                            }
                        }
                        stats.lock().merge(&local);
                    })
                    .expect("spawn fillup worker"),
            );
        }

        // LookUp workers.
        for i in 0..config.lookup_workers {
            let queue = lookup_queue.clone();
            let out = write_queue.clone();
            let store = Arc::clone(&store);
            let stats = Arc::clone(&lookup_stats);
            let shutdown = Arc::clone(&input_shutdown);
            let config_copy = config;
            input_workers.push(
                std::thread::Builder::new()
                    .name(format!("lookup-{i}"))
                    .spawn(move || {
                        let resolver = Resolver::new(&store, &config_copy);
                        let mut local = LookUpStats::default();
                        loop {
                            match queue.pop_wait(POP_WAIT) {
                                Some(flow) => {
                                    let record = resolver.process_flow(flow, &mut local);
                                    // The write queue drop counter lives in the
                                    // buffer stats; nothing more to do on failure.
                                    let _ = out.push(record);
                                    if local.total() >= STATS_FLUSH_EVERY {
                                        stats.lock().merge(&local);
                                        local = LookUpStats::default();
                                    }
                                }
                                None => {
                                    // Idle: flush pending local stats so
                                    // `snapshot()` converges on quiet streams.
                                    if local != LookUpStats::default() {
                                        stats.lock().merge(&local);
                                        local = LookUpStats::default();
                                    }
                                    if shutdown.load(Ordering::Acquire) && queue.is_empty() {
                                        break;
                                    }
                                }
                            }
                        }
                        stats.lock().merge(&local);
                    })
                    .expect("spawn lookup worker"),
            );
        }

        // Write workers.
        for i in 0..config.write_workers {
            let queue = write_queue.clone();
            let writer = Arc::clone(&writer);
            let shutdown = Arc::clone(&write_shutdown);
            let dropped = Arc::clone(&writes_dropped);
            write_workers.push(
                std::thread::Builder::new()
                    .name(format!("write-{i}"))
                    .spawn(move || {
                        loop {
                            match queue.pop_wait(POP_WAIT) {
                                Some(record) => {
                                    if writer.write(&record).is_err() {
                                        *dropped.lock() += 1;
                                    }
                                }
                                None => {
                                    if shutdown.load(Ordering::Acquire) && queue.is_empty() {
                                        break;
                                    }
                                }
                            }
                        }
                        let _ = writer.flush();
                    })
                    .expect("spawn write worker"),
            );
        }

        Ok(Correlator {
            config,
            store,
            fillup_queue,
            lookup_queue,
            write_queue,
            writer,
            fillup_stats,
            lookup_stats,
            input_shutdown,
            write_shutdown,
            writes_dropped,
            input_workers,
            write_workers,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &CorrelatorConfig {
        &self.config
    }

    /// The shared DNS store (for inspection in tests and examples).
    pub fn store(&self) -> &DnsStore {
        &self.store
    }

    /// Offer one DNS record to the FillUp queue. Returns `false` if the
    /// queue was full and the record was dropped (stream loss).
    pub fn push_dns(&self, record: DnsRecord) -> bool {
        self.fillup_queue.push(record)
    }

    /// Offer one flow record to the LookUp queue. Returns `false` if the
    /// queue was full and the record was dropped (stream loss).
    pub fn push_flow(&self, record: FlowRecord) -> bool {
        self.lookup_queue.push(record)
    }

    /// Offer a batch of DNS records to the FillUp queue, returning how
    /// many were accepted. Records beyond the queue's free space are
    /// dropped and counted as stream loss. One batch costs one pair of
    /// counter updates regardless of size — push whole decoded datagrams
    /// through here rather than record by record.
    pub fn push_dns_batch<I>(&self, records: I) -> usize
    where
        I: IntoIterator<Item = DnsRecord>,
    {
        self.fillup_queue.push_batch(records)
    }

    /// Offer a batch of flow records to the LookUp queue, returning how
    /// many were accepted (the rest were dropped and counted).
    pub fn push_flow_batch<I>(&self, records: I) -> usize
    where
        I: IntoIterator<Item = FlowRecord>,
    {
        self.lookup_queue.push_batch(records)
    }

    /// Current depth of the three queues (fillup, lookup, write): useful
    /// for examples that display live buffer usage.
    pub fn queue_depths(&self) -> (usize, usize, usize) {
        (
            self.fillup_queue.len(),
            self.lookup_queue.len(),
            self.write_queue.len(),
        )
    }

    /// A live snapshot of the pipeline's metrics without consuming it:
    /// worker stats (flushed every [`STATS_FLUSH_EVERY`] records, so
    /// slightly behind the instantaneous truth), queue drop counters, and
    /// the store's current memory estimate. This is what periodic stats
    /// reporters (e.g. `flowdnsd`) should read; `finish()` returns the
    /// exact final numbers.
    pub fn snapshot(&self) -> PipelineMetrics {
        PipelineMetrics {
            fillup: *self.fillup_stats.lock(),
            lookup: *self.lookup_stats.lock(),
            write: self.writer.stats(),
            dns_dropped: self.fillup_queue.stats().dropped,
            flows_dropped: self.lookup_queue.stats().dropped,
            writes_dropped: self.write_queue.stats().dropped + *self.writes_dropped.lock(),
            work_units: 0.0,
            peak_memory: self.store.memory_estimate(),
            ingest: Default::default(),
        }
    }

    /// Stop accepting input, drain every queue, join all workers, and
    /// return the final report.
    pub fn finish(mut self) -> Result<Report, FlowDnsError> {
        // Phase 1: stop input stages and let them drain. The input and
        // write stages keep their handles in separate vectors, so the
        // ordering does not depend on thread names.
        self.input_shutdown.store(true, Ordering::Release);
        for handle in self.input_workers.drain(..) {
            handle
                .join()
                .map_err(|_| FlowDnsError::PipelineState("worker panicked".into()))?;
        }
        // Phase 2: input stages are done, so the write queue will receive
        // nothing more; let the writers drain and stop.
        self.write_shutdown.store(true, Ordering::Release);
        for handle in self.write_workers.drain(..) {
            handle
                .join()
                .map_err(|_| FlowDnsError::PipelineState("write worker panicked".into()))?;
        }
        self.writer.flush()?;

        let write = self.writer.stats();
        let metrics = PipelineMetrics {
            write,
            ..self.snapshot()
        };
        Ok(Report {
            volumes: write.volumes,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use flowdns_types::{DomainName, SimTime};
    use std::net::Ipv4Addr;

    fn dns(ts: u64, name: &str, ip: [u8; 4], ttl: u32) -> DnsRecord {
        DnsRecord::address(
            SimTime::from_secs(ts),
            DomainName::literal(name),
            Ipv4Addr::from(ip).into(),
            ttl,
        )
    }

    fn flow(ts: u64, src: [u8; 4], bytes: u64) -> FlowRecord {
        FlowRecord::inbound(
            SimTime::from_secs(ts),
            Ipv4Addr::from(src).into(),
            Ipv4Addr::new(10, 0, 0, 1).into(),
            bytes,
        )
    }

    #[test]
    fn end_to_end_correlation_through_threads() {
        let correlator = Correlator::start(CorrelatorConfig::default()).unwrap();
        // Fill DNS first and give FillUp workers a moment to drain, so the
        // flows looked up afterwards find their records.
        for i in 0..50u8 {
            assert!(correlator.push_dns(dns(1, &format!("svc{i}.example"), [203, 0, 113, i], 300)));
        }
        while correlator.queue_depths().0 > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        for i in 0..50u8 {
            assert!(correlator.push_flow(flow(2, [203, 0, 113, i], 1_000)));
        }
        // One flow from an unknown source.
        assert!(correlator.push_flow(flow(2, [192, 0, 2, 1], 1_000)));
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.write.records_written, 51);
        assert_eq!(report.metrics.lookup.ip_hits, 50);
        assert_eq!(report.metrics.lookup.ip_misses, 1);
        let expected = 50.0 / 51.0 * 100.0;
        assert!((report.correlation_rate_pct() - expected).abs() < 0.5);
        assert_eq!(report.metrics.dns_dropped, 0);
        assert_eq!(report.metrics.flows_dropped, 0);
    }

    #[test]
    fn finish_drains_queues_before_reporting() {
        let config = CorrelatorConfig {
            fillup_workers: 1,
            lookup_workers: 1,
            ..CorrelatorConfig::default()
        };
        let correlator = Correlator::start(config).unwrap();
        for i in 0..200u8 {
            correlator.push_dns(dns(1, "bulk.example", [198, 51, 100, i], 60));
        }
        for i in 0..200u8 {
            correlator.push_flow(flow(2, [198, 51, 100, i], 500));
        }
        let report = correlator.finish().unwrap();
        // Every accepted record must have been processed and written.
        assert_eq!(report.metrics.write.records_written, 200);
        assert_eq!(
            report.metrics.fillup.addresses_stored + report.metrics.fillup.filtered,
            200
        );
    }

    #[test]
    fn tiny_queues_produce_loss_not_deadlock() {
        let config = CorrelatorConfig {
            fillup_queue_capacity: 8,
            lookup_queue_capacity: 8,
            write_queue_capacity: 8,
            fillup_workers: 1,
            lookup_workers: 1,
            write_workers: 1,
            ..CorrelatorConfig::default()
        };
        let correlator = Correlator::start(config).unwrap();
        let mut dns_accepted = 0u64;
        for i in 0..10_000u32 {
            if correlator.push_dns(dns(1, "x.example", [10, (i >> 8) as u8, i as u8, 1], 60)) {
                dns_accepted += 1;
            }
        }
        let report = correlator.finish().unwrap();
        assert_eq!(
            report.metrics.fillup.total(),
            dns_accepted,
            "every accepted record is processed"
        );
        // With a queue of 8 against a burst of 10k, some loss is certain.
        assert!(report.metrics.dns_dropped > 0);
    }

    #[test]
    fn batched_ingress_matches_per_record_ingress() {
        let correlator = Correlator::start(CorrelatorConfig::default()).unwrap();
        let dns_batch: Vec<DnsRecord> = (0..40u8)
            .map(|i| dns(1, &format!("svc{i}.example"), [203, 0, 113, i], 300))
            .collect();
        assert_eq!(correlator.push_dns_batch(dns_batch), 40);
        while correlator.queue_depths().0 > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        let flow_batch: Vec<FlowRecord> = (0..40u8)
            .map(|i| flow(2, [203, 0, 113, i], 1_000))
            .collect();
        assert_eq!(correlator.push_flow_batch(flow_batch), 40);
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.lookup.ip_hits, 40);
        assert_eq!(report.metrics.write.records_written, 40);
        assert_eq!(report.metrics.dns_dropped, 0);
    }

    #[test]
    fn batch_push_reports_partial_acceptance_on_overflow() {
        let config = CorrelatorConfig {
            fillup_queue_capacity: 8,
            fillup_workers: 1,
            lookup_workers: 1,
            write_workers: 1,
            ..CorrelatorConfig::default()
        };
        let correlator = Correlator::start(config).unwrap();
        let batch: Vec<DnsRecord> = (0..10_000u32)
            .map(|i| dns(1, "x.example", [10, (i >> 8) as u8, i as u8, 1], 60))
            .collect();
        let accepted = correlator.push_dns_batch(batch);
        assert!(accepted < 10_000, "a burst past a queue of 8 must drop");
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.fillup.total(), accepted as u64);
        assert_eq!(report.metrics.dns_dropped, 10_000 - accepted as u64);
    }

    #[test]
    fn snapshot_reads_live_metrics_without_consuming() {
        let correlator = Correlator::start(CorrelatorConfig::default()).unwrap();
        for i in 0..30u8 {
            correlator.push_dns(dns(1, "snap.example", [198, 51, 100, i], 60));
        }
        while correlator.queue_depths().0 > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        for i in 0..30u8 {
            correlator.push_flow(flow(2, [198, 51, 100, i], 500));
        }
        // Wait until the pipeline has visibly written everything, then
        // snapshot: the pipeline keeps running afterwards.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let snap = correlator.snapshot();
            // Worker-local stats flush on idle, so the live snapshot must
            // converge to the full totals without finishing the pipeline.
            if snap.write.records_written == 30
                && snap.lookup.total() == 30
                && snap.fillup.addresses_stored == 30
            {
                assert!(snap.peak_memory.entries > 0);
                assert_eq!(snap.dns_dropped, 0);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "live snapshot never converged to 30 records"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // Worker-side stats (flushed periodically) must be exact in the
        // final report even if the snapshot lagged.
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.lookup.total(), 30);
        assert_eq!(report.metrics.write.records_written, 30);
    }

    #[test]
    fn exact_ttl_variant_runs_in_pipeline() {
        let correlator =
            Correlator::start(CorrelatorConfig::for_variant(Variant::ExactTtl)).unwrap();
        correlator.push_dns(dns(1, "ttl.example", [203, 0, 113, 77], 30));
        while correlator.queue_depths().0 > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        // Within TTL: correlated. After TTL: not.
        correlator.push_flow(flow(10, [203, 0, 113, 77], 100));
        correlator.push_flow(flow(500, [203, 0, 113, 77], 100));
        let report = correlator.finish().unwrap();
        assert_eq!(report.metrics.lookup.ip_hits, 1);
        assert_eq!(report.metrics.lookup.ip_misses, 1);
    }
}
