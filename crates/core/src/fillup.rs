//! FillUp processing (Algorithm 1): DNS records → shared storage.
//!
//! Each FillUp worker picks DNS records off the FillUp queue, validates
//! them, labels A/AAAA records by IP, and inserts them into the shared
//! [`DnsStore`]. The clear-up check happens inside the store, driven by
//! the record's own timestamp. Inserts are allocation-free on the hot
//! path: IPs become compact [`flowdns_types::IpKey`]s and names interned
//! [`flowdns_types::NameRef`] handles inside the store.

use flowdns_types::{DnsAnswer, DnsRecord, RecordType};

use crate::store::DnsStore;

/// Statistics of FillUp processing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FillUpStats {
    /// A/AAAA records stored.
    pub addresses_stored: u64,
    /// CNAME records stored.
    pub cnames_stored: u64,
    /// Records dropped by the validity filter (wrong type, inconsistent
    /// answer, etc.).
    pub filtered: u64,
}

impl FillUpStats {
    /// Total records examined.
    pub fn total(&self) -> u64 {
        self.addresses_stored + self.cnames_stored + self.filtered
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &FillUpStats) {
        self.addresses_stored += other.addresses_stored;
        self.cnames_stored += other.cnames_stored;
        self.filtered += other.filtered;
    }
}

/// Process one DNS record against the store (the body of the FillUp
/// worker loop). Returns `true` if the record was stored.
pub fn process_dns_record(store: &DnsStore, record: &DnsRecord, stats: &mut FillUpStats) -> bool {
    if !record.is_correlatable() {
        stats.filtered += 1;
        return false;
    }
    match (&record.rtype, &record.answer) {
        (RecordType::A | RecordType::Aaaa, DnsAnswer::Ip(ip)) => {
            store.insert_address(*ip, &record.query, record.ttl, record.ts);
            stats.addresses_stored += 1;
            true
        }
        (RecordType::Cname, DnsAnswer::Name(target)) => {
            store.insert_cname(target, &record.query, record.ttl, record.ts);
            stats.cnames_stored += 1;
            true
        }
        _ => {
            stats.filtered += 1;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorrelatorConfig;
    use flowdns_types::{DomainName, SimTime};
    use std::net::Ipv4Addr;

    fn store() -> DnsStore {
        DnsStore::new(&CorrelatorConfig::default())
    }

    #[test]
    fn addresses_and_cnames_are_stored() {
        let s = store();
        let mut stats = FillUpStats::default();
        let a = DnsRecord::address(
            SimTime::from_secs(1),
            DomainName::literal("edge.cdn.example"),
            Ipv4Addr::new(203, 0, 113, 3).into(),
            120,
        );
        let c = DnsRecord::cname(
            SimTime::from_secs(1),
            DomainName::literal("www.service.example"),
            DomainName::literal("edge.cdn.example"),
            600,
        );
        assert!(process_dns_record(&s, &a, &mut stats));
        assert!(process_dns_record(&s, &c, &mut stats));
        assert_eq!(stats.addresses_stored, 1);
        assert_eq!(stats.cnames_stored, 1);
        assert_eq!(stats.filtered, 0);
        assert!(s
            .lookup_ip("203.0.113.3".parse().unwrap(), SimTime::from_secs(2))
            .is_some());
        // CNAME is keyed by the canonical target.
        let edge = s.intern(&DomainName::literal("edge.cdn.example"));
        assert_eq!(
            s.lookup_cname(&edge, SimTime::from_secs(2))
                .unwrap()
                .0
                .as_str(),
            "www.service.example"
        );
    }

    #[test]
    fn uncorrelatable_records_are_filtered() {
        let s = store();
        let mut stats = FillUpStats::default();
        let txt = DnsRecord {
            ts: SimTime::ZERO,
            query: DomainName::literal("example.com"),
            rtype: RecordType::Txt,
            ttl: 60,
            answer: DnsAnswer::Raw(vec![1, 2, 3]),
        };
        assert!(!process_dns_record(&s, &txt, &mut stats));
        // A record with a name answer (inconsistent) is also filtered.
        let broken = DnsRecord {
            ts: SimTime::ZERO,
            query: DomainName::literal("example.com"),
            rtype: RecordType::A,
            ttl: 60,
            answer: DnsAnswer::Name(DomainName::literal("oops.example")),
        };
        assert!(!process_dns_record(&s, &broken, &mut stats));
        assert_eq!(stats.filtered, 2);
        assert_eq!(s.total_entries(), 0);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = FillUpStats {
            addresses_stored: 3,
            cnames_stored: 1,
            filtered: 2,
        };
        let b = FillUpStats {
            addresses_stored: 1,
            cnames_stored: 1,
            filtered: 0,
        };
        a.merge(&b);
        assert_eq!(a.total(), 8);
        assert_eq!(a.addresses_stored, 4);
    }
}
