//! The deterministic offline simulator.
//!
//! The paper's evaluation runs FlowDNS against live ISP streams for a day
//! or a week and reports CPU, memory, loss and correlation rate over time
//! (Figures 2, 3, 7). We cannot replay a week of 1M-records/s streams in
//! wall-clock time, so the experiment harness drives this simulator
//! instead: it processes a timestamped trace **in data-time order**
//! through the exact same [`DnsStore`]/[`Resolver`] code the live pipeline
//! uses, and accounts *work units* via the [`CostModel`]:
//!
//! * every event has a processing cost (insert, lookup cascade, CNAME
//!   hops, output write, per-split bookkeeping);
//! * rotation copies and exact-TTL purge scans are charged per entry;
//! * the exact-TTL variant additionally pays a serialization penalty per
//!   event, modelling the shared-map contention Appendix A.8 blames for
//!   its collapse;
//! * a machine capacity (cores × units/s) and a bounded work backlog model
//!   the stream buffers: when the backlog exceeds the buffer allowance,
//!   incoming events are dropped and counted as stream loss, which is how
//!   the >90% loss of the exact-TTL strawman emerges.
//!
//! The simulator emits per-hour samples (CPU%, memory, traffic volume,
//! correlation rate, loss) — one row per point of the paper's time-series
//! figures — plus the same [`Report`] the live pipeline produces.

use flowdns_bgp::AsnView;
use flowdns_storage::MemoryEstimate;
use flowdns_types::{CorrelatedRecord, DnsRecord, FlowRecord, SimTime};

use crate::config::CorrelatorConfig;
use crate::fillup::{process_dns_record, FillUpStats};
use crate::lookup::{LookUpStats, Resolver};
use crate::metrics::{CostModel, Report};
use crate::shard::{shard_of_dns, shard_of_flow, ShardedStore};
use crate::store::DnsStore;

/// One input event of the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A DNS record arriving on the DNS streams.
    Dns(DnsRecord),
    /// A flow record arriving on the NetFlow streams.
    Flow(FlowRecord),
}

impl Event {
    /// The event's timestamp.
    pub fn ts(&self) -> SimTime {
        match self {
            Event::Dns(r) => r.ts,
            Event::Flow(f) => f.ts,
        }
    }
}

/// The simulator's storage, matching whichever layout the config
/// selects for the live pipeline: classic shared or per-shard
/// partitions. The sharded form broadcasts the data clock to every
/// partition before each event, so rotation boundaries — and therefore
/// the correlated output — are identical for any shard count.
enum SimStore {
    Classic(Box<DnsStore>),
    Sharded(Box<ShardedStore>),
}

impl SimStore {
    fn memory_estimate(&self) -> MemoryEstimate {
        match self {
            SimStore::Classic(store) => store.memory_estimate(),
            SimStore::Sharded(store) => store.memory_estimate(),
        }
    }

    fn is_exact_ttl(&self) -> bool {
        match self {
            SimStore::Classic(store) => store.is_exact_ttl(),
            // Config validation rejects ExactTtl with shards > 0.
            SimStore::Sharded(_) => false,
        }
    }

    fn rotated_entries(&self) -> u64 {
        match self {
            SimStore::Classic(store) => store.rotated_entries(),
            SimStore::Sharded(store) => store.rotated_entries(),
        }
    }

    fn purge_scanned(&self) -> u64 {
        match self {
            SimStore::Classic(store) => store.purge_scanned(),
            SimStore::Sharded(_) => 0,
        }
    }
}

/// One hour of the simulated run (one point of the time-series figures).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HourlySample {
    /// Hour index since the start of the trace.
    pub hour: u64,
    /// Simulated CPU usage in percent (100% = one core).
    pub cpu_pct: f64,
    /// Estimated memory of the DNS store at the end of the hour, in GB.
    pub memory_gb: f64,
    /// Total flow bytes offered during the hour.
    pub traffic_bytes: u64,
    /// Correlation rate (bytes) for flows processed during the hour.
    pub correlation_rate_pct: f64,
    /// DNS records dropped during the hour, percent of offered.
    pub dns_loss_pct: f64,
    /// Flow records dropped during the hour, percent of offered.
    pub flow_loss_pct: f64,
}

/// The complete outcome of a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationOutcome {
    /// Final aggregate report (same type as the live pipeline).
    pub report: Report,
    /// Per-hour samples, in order.
    pub hourly: Vec<HourlySample>,
}

impl SimulationOutcome {
    /// Mean of the hourly correlation rates (the paper's per-hour
    /// correlation plots average this way).
    pub fn mean_hourly_correlation_pct(&self) -> f64 {
        if self.hourly.is_empty() {
            return 0.0;
        }
        self.hourly
            .iter()
            .map(|h| h.correlation_rate_pct)
            .sum::<f64>()
            / self.hourly.len() as f64
    }

    /// Mean CPU% across hours.
    pub fn mean_cpu_pct(&self) -> f64 {
        if self.hourly.is_empty() {
            return 0.0;
        }
        self.hourly.iter().map(|h| h.cpu_pct).sum::<f64>() / self.hourly.len() as f64
    }

    /// Peak memory (GB) across hours.
    pub fn peak_memory_gb(&self) -> f64 {
        self.hourly.iter().map(|h| h.memory_gb).fold(0.0, f64::max)
    }
}

/// Extra cost charged per event by the exact-TTL variant (shared-map
/// serialization; see module docs).
const EXACT_TTL_OP_PENALTY: f64 = 25.0;

/// The offline simulator.
#[derive(Debug, Clone)]
pub struct OfflineSimulator {
    config: CorrelatorConfig,
    cost: CostModel,
    /// Number of CPU cores available to the deployment.
    capacity_cores: f64,
    /// Work-unit backlog tolerated before drops begin (the stream buffer).
    backlog_allowance: f64,
    /// Routing-table view for in-pipeline AS attribution, mirroring the
    /// live pipeline's LookUp-side stamping.
    asn_view: Option<AsnView>,
}

impl OfflineSimulator {
    /// A simulator for `config` with the default cost model and a 32-core
    /// machine (the paper's testbed has 128 cores but never uses more than
    /// ~25 of them for the Main variant).
    pub fn new(config: CorrelatorConfig) -> Self {
        let cost = CostModel::default();
        let capacity_cores = 32.0;
        OfflineSimulator {
            config,
            cost,
            capacity_cores,
            backlog_allowance: cost.core_units_per_sec * capacity_cores * 5.0,
            asn_view: None,
        }
    }

    /// Attach a routing-table view: the simulated LookUp stage stamps
    /// `src_asn`/`dst_asn` on every record, exactly like the live
    /// pipeline with a loaded `routing_table`.
    pub fn with_asn_view(mut self, view: AsnView) -> Self {
        self.asn_view = Some(view);
        self
    }

    /// Override the cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self.backlog_allowance = self.cost.core_units_per_sec * self.capacity_cores * 5.0;
        self
    }

    /// Override the machine size in cores.
    pub fn with_capacity_cores(mut self, cores: f64) -> Self {
        self.capacity_cores = cores;
        self.backlog_allowance = self.cost.core_units_per_sec * self.capacity_cores * 5.0;
        self
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &CorrelatorConfig {
        &self.config
    }

    /// Merge DNS and flow records into a single time-ordered event trace.
    pub fn merge_events(dns: Vec<DnsRecord>, flows: Vec<FlowRecord>) -> Vec<Event> {
        let mut events: Vec<Event> = dns
            .into_iter()
            .map(Event::Dns)
            .chain(flows.into_iter().map(Event::Flow))
            .collect();
        events.sort_by_key(|e| e.ts());
        events
    }

    /// Run the simulation over an already time-ordered event trace,
    /// discarding per-record output.
    pub fn run(&self, events: &[Event]) -> SimulationOutcome {
        self.run_with(events.iter().cloned(), |_| {})
    }

    /// Run the simulation, invoking `on_record` for every correlated
    /// output record (the per-record stream the Section 5 analyses and the
    /// BGP use case consume).
    pub fn run_with<I, F>(&self, events: I, mut on_record: F) -> SimulationOutcome
    where
        I: IntoIterator<Item = Event>,
        F: FnMut(&CorrelatedRecord),
    {
        let store = if self.config.correlator_shards > 0 {
            SimStore::Sharded(Box::new(ShardedStore::new(&self.config)))
        } else {
            SimStore::Classic(Box::new(DnsStore::new(&self.config)))
        };
        let mut resolver = match &store {
            SimStore::Classic(classic) => {
                let mut resolver = Resolver::new(classic, &self.config);
                if let Some(view) = &self.asn_view {
                    resolver = resolver.with_asn_reader(view.reader());
                }
                Some(resolver)
            }
            SimStore::Sharded(_) => None,
        };
        let mut shard_asn = self.asn_view.as_ref().map(|view| view.reader());
        let mut fillup_stats = FillUpStats::default();
        let mut lookup_stats = LookUpStats::default();

        let split_overhead =
            self.cost.split_overhead * (self.config.effective_num_split().saturating_sub(1)) as f64;
        let capacity_per_sec = self.cost.core_units_per_sec * self.capacity_cores;

        let mut report = Report::default();
        let mut hourly: Vec<HourlySample> = Vec::new();

        // Hour-level accumulators.
        let mut hour_idx: Option<u64> = None;
        let mut hour_work = 0.0f64;
        let mut hour_bytes = 0u64;
        let mut hour_correlated_bytes = 0u64;
        let mut hour_dns_offered = 0u64;
        let mut hour_dns_dropped = 0u64;
        let mut hour_flows_offered = 0u64;
        let mut hour_flows_dropped = 0u64;

        // Second-level backlog accounting (the stream buffers).
        let mut backlog = 0.0f64;
        let mut last_sec: Option<u64> = None;

        // Deltas of store-internal work.
        let mut prev_rotated = 0u64;
        let mut prev_purged = 0u64;

        let mut total_dns_dropped = 0u64;
        let mut total_flows_dropped = 0u64;
        let mut peak_memory = store.memory_estimate();
        let mut total_work = 0.0f64;

        let flush_hour = |hour: u64,
                          work: f64,
                          bytes: u64,
                          correlated: u64,
                          dns_off: u64,
                          dns_drop: u64,
                          flow_off: u64,
                          flow_drop: u64,
                          memory_gb: f64,
                          out: &mut Vec<HourlySample>| {
            let correlation = if bytes == 0 {
                0.0
            } else {
                correlated as f64 / bytes as f64 * 100.0
            };
            out.push(HourlySample {
                hour,
                cpu_pct: self.cost.cpu_pct(work, 3600.0),
                memory_gb,
                traffic_bytes: bytes,
                correlation_rate_pct: correlation,
                dns_loss_pct: pct(dns_drop, dns_off),
                flow_loss_pct: pct(flow_drop, flow_off),
            });
        };

        for event in events {
            let ts = event.ts();
            let sec = ts.as_secs();
            let hour = sec / 3600;

            // Advance the per-second backlog: each elapsed second grants
            // `capacity_per_sec` units of processing.
            match last_sec {
                None => last_sec = Some(sec),
                Some(prev) if sec > prev => {
                    let elapsed = (sec - prev) as f64;
                    backlog = (backlog - capacity_per_sec * elapsed).max(0.0);
                    last_sec = Some(sec);
                }
                _ => {}
            }

            // Close finished hours (also emitting empty hours so the time
            // axis of the figures stays uniform).
            match hour_idx {
                None => hour_idx = Some(hour),
                Some(current) if hour > current => {
                    let memory_gb = store.memory_estimate().total_gb();
                    flush_hour(
                        current,
                        hour_work,
                        hour_bytes,
                        hour_correlated_bytes,
                        hour_dns_offered,
                        hour_dns_dropped,
                        hour_flows_offered,
                        hour_flows_dropped,
                        memory_gb,
                        &mut hourly,
                    );
                    for missing in current + 1..hour {
                        flush_hour(missing, 0.0, 0, 0, 0, 0, 0, 0, memory_gb, &mut hourly);
                    }
                    hour_work = 0.0;
                    hour_bytes = 0;
                    hour_correlated_bytes = 0;
                    hour_dns_offered = 0;
                    hour_dns_dropped = 0;
                    hour_flows_offered = 0;
                    hour_flows_dropped = 0;
                    hour_idx = Some(hour);
                }
                _ => {}
            }

            // Stream-buffer overflow: drop the event without processing.
            let overloaded = backlog > self.backlog_allowance;
            match event {
                Event::Dns(record) => {
                    hour_dns_offered += 1;
                    if overloaded {
                        hour_dns_dropped += 1;
                        total_dns_dropped += 1;
                        continue;
                    }
                    match &store {
                        SimStore::Classic(classic) => {
                            process_dns_record(classic, &record, &mut fillup_stats);
                        }
                        SimStore::Sharded(sharded) => {
                            // Broadcast the clock first so every
                            // partition rotates on the same boundary
                            // regardless of which shards see events.
                            sharded.observe_time_all(record.ts);
                            let shard = shard_of_dns(&record, sharded.shards());
                            sharded.partition(shard).lock().process_dns(
                                sharded,
                                &record,
                                &mut fillup_stats,
                            );
                        }
                    }
                    let mut work = self.cost.dns_insert + split_overhead;
                    if store.is_exact_ttl() {
                        work += EXACT_TTL_OP_PENALTY;
                    }
                    work +=
                        self.store_maintenance_work(&store, &mut prev_rotated, &mut prev_purged);
                    backlog += work;
                    hour_work += work;
                    total_work += work;
                }
                Event::Flow(flow) => {
                    hour_flows_offered += 1;
                    hour_bytes += flow.bytes;
                    if overloaded {
                        hour_flows_dropped += 1;
                        total_flows_dropped += 1;
                        continue;
                    }
                    let hops_before = lookup_stats.cname_hops;
                    let record = match (&mut resolver, &store) {
                        (Some(resolver), _) => {
                            resolver.process_flow(flow.clone(), &mut lookup_stats)
                        }
                        (None, SimStore::Sharded(sharded)) => {
                            sharded.observe_time_all(flow.ts);
                            let shard = shard_of_flow(&flow, sharded.shards());
                            sharded.partition(shard).lock().process_flow(
                                sharded,
                                &mut shard_asn,
                                flow.clone(),
                                &mut lookup_stats,
                            )
                        }
                        // `resolver` is Some exactly when the store is
                        // classic, so this arm cannot be reached.
                        (None, SimStore::Classic(_)) => continue,
                    };
                    let hops = (lookup_stats.cname_hops - hops_before) as f64;
                    let mut work = self.cost.flow_lookup
                        + split_overhead
                        + hops * self.cost.cname_hop
                        + self.cost.write_record;
                    if store.is_exact_ttl() {
                        work += EXACT_TTL_OP_PENALTY;
                    }
                    work +=
                        self.store_maintenance_work(&store, &mut prev_rotated, &mut prev_purged);
                    backlog += work;
                    hour_work += work;
                    total_work += work;

                    report.volumes.record(flow.bytes, record.is_correlated());
                    if record.is_correlated() {
                        hour_correlated_bytes += flow.bytes;
                    }
                    report.metrics.write.records_written += 1;
                    on_record(&record);
                }
            }

            // Track peak memory occasionally (every 4096 events would also
            // work; per-event is cheap because it only counts entries).
            if report.metrics.write.records_written % 4096 == 0 {
                let est = store.memory_estimate();
                if est.total_bytes() > peak_memory.total_bytes() {
                    peak_memory = est;
                }
            }
        }

        // Close the final hour.
        if let Some(current) = hour_idx {
            let memory_gb = store.memory_estimate().total_gb();
            flush_hour(
                current,
                hour_work,
                hour_bytes,
                hour_correlated_bytes,
                hour_dns_offered,
                hour_dns_dropped,
                hour_flows_offered,
                hour_flows_dropped,
                memory_gb,
                &mut hourly,
            );
        }

        let final_est = store.memory_estimate();
        if final_est.total_bytes() > peak_memory.total_bytes() {
            peak_memory = final_est;
        }

        report.metrics.fillup = fillup_stats;
        report.metrics.lookup = lookup_stats;
        report.metrics.write.volumes = report.volumes;
        report.metrics.dns_dropped = total_dns_dropped;
        report.metrics.flows_dropped = total_flows_dropped;
        report.metrics.work_units = total_work;
        report.metrics.peak_memory = peak_memory;

        SimulationOutcome { report, hourly }
    }

    /// Work charged for store-internal maintenance that happened since the
    /// previous event (rotation copies, exact-TTL purge scans).
    fn store_maintenance_work(
        &self,
        store: &SimStore,
        prev_rotated: &mut u64,
        prev_purged: &mut u64,
    ) -> f64 {
        let rotated = store.rotated_entries();
        let purged = store.purge_scanned();
        let rotated_delta = rotated - *prev_rotated;
        let purged_delta = purged - *prev_purged;
        *prev_rotated = rotated;
        *prev_purged = purged;
        rotated_delta as f64 * self.cost.rotate_entry
            + purged_delta as f64 * self.cost.purge_scan_entry
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use flowdns_types::DomainName;
    use std::net::Ipv4Addr;

    fn dns(ts: u64, name: &str, ip: [u8; 4], ttl: u32) -> DnsRecord {
        DnsRecord::address(
            SimTime::from_secs(ts),
            DomainName::literal(name),
            Ipv4Addr::from(ip).into(),
            ttl,
        )
    }

    fn flow(ts: u64, src: [u8; 4], bytes: u64) -> FlowRecord {
        FlowRecord::inbound(
            SimTime::from_secs(ts),
            Ipv4Addr::from(src).into(),
            Ipv4Addr::new(10, 0, 0, 1).into(),
            bytes,
        )
    }

    /// A small two-hour trace: every flow's source IP was announced via DNS
    /// except the ones derived from `unknown`.
    fn small_trace() -> Vec<Event> {
        let mut dns_records = Vec::new();
        let mut flow_records = Vec::new();
        for i in 0..50u8 {
            dns_records.push(dns(
                10 + i as u64,
                &format!("svc{i}.example"),
                [203, 0, 113, i],
                300,
            ));
        }
        for hour in 0..2u64 {
            for i in 0..50u8 {
                flow_records.push(flow(hour * 3600 + 100 + i as u64, [203, 0, 113, i], 1_000));
            }
            // 10 flows from sources never seen in DNS.
            for i in 0..10u8 {
                flow_records.push(flow(hour * 3600 + 200 + i as u64, [192, 0, 2, i], 1_000));
            }
        }
        OfflineSimulator::merge_events(dns_records, flow_records)
    }

    #[test]
    fn merge_orders_events_by_time() {
        let events = small_trace();
        for pair in events.windows(2) {
            assert!(pair[0].ts() <= pair[1].ts());
        }
    }

    #[test]
    fn correlation_rate_reflects_dns_coverage() {
        let events = small_trace();
        let sim = OfflineSimulator::new(CorrelatorConfig::default());
        let outcome = sim.run(&events);
        // 50 of 60 flows per hour are correlated → 83.3% by bytes.
        assert!((outcome.report.correlation_rate_pct() - 83.33).abs() < 0.5);
        assert_eq!(outcome.hourly.len(), 2);
        assert_eq!(outcome.report.metrics.flows_dropped, 0);
        assert_eq!(outcome.report.metrics.dns_dropped, 0);
        assert!(outcome.report.metrics.work_units > 0.0);
        // Hour 1: the DNS records are >3600s old. With rotation they live
        // in the Inactive maps and correlation holds.
        assert!(outcome.hourly[1].correlation_rate_pct > 80.0);
    }

    #[test]
    fn no_rotation_loses_correlation_after_clear_up() {
        let events = small_trace();
        let main = OfflineSimulator::new(CorrelatorConfig::for_variant(Variant::Main)).run(&events);
        let norot =
            OfflineSimulator::new(CorrelatorConfig::for_variant(Variant::NoRotation)).run(&events);
        // In hour 1 the NoRotation variant has cleared the DNS records
        // without keeping a copy, so its correlation collapses relative to
        // Main — the mechanism behind the paper's 81.7% vs 79.5%.
        assert!(main.hourly[1].correlation_rate_pct > 80.0);
        assert!(norot.hourly[1].correlation_rate_pct < 10.0);
        // Overall: NoRotation strictly below Main.
        assert!(norot.report.correlation_rate_pct() < main.report.correlation_rate_pct());
    }

    #[test]
    fn no_clear_up_correlates_at_least_as_much_as_main() {
        let events = small_trace();
        let main = OfflineSimulator::new(CorrelatorConfig::for_variant(Variant::Main)).run(&events);
        let nocl =
            OfflineSimulator::new(CorrelatorConfig::for_variant(Variant::NoClearUp)).run(&events);
        assert!(nocl.report.correlation_rate_pct() >= main.report.correlation_rate_pct() - 1e-9);
    }

    #[test]
    fn no_split_uses_less_cpu_than_main() {
        let events = small_trace();
        let main = OfflineSimulator::new(CorrelatorConfig::for_variant(Variant::Main)).run(&events);
        let nosplit =
            OfflineSimulator::new(CorrelatorConfig::for_variant(Variant::NoSplit)).run(&events);
        assert!(nosplit.mean_cpu_pct() < main.mean_cpu_pct());
        // ... while correlating the same share of traffic.
        assert!(
            (nosplit.report.correlation_rate_pct() - main.report.correlation_rate_pct()).abs()
                < 1e-9
        );
    }

    #[test]
    fn exact_ttl_overloads_and_drops() {
        // A denser trace so the serialization penalty exceeds capacity.
        let mut dns_records = Vec::new();
        let mut flow_records = Vec::new();
        for s in 0..600u64 {
            for i in 0..5u8 {
                dns_records.push(dns(
                    s,
                    &format!("d{s}-{i}.example"),
                    [10, 1, (s % 256) as u8, i],
                    120,
                ));
                flow_records.push(flow(s, [10, 1, (s % 256) as u8, i], 1_000));
                flow_records.push(flow(s, [10, 2, (s % 256) as u8, i], 1_000));
            }
        }
        let events = OfflineSimulator::merge_events(dns_records, flow_records);
        // A deliberately small machine: 12 cores of simulated capacity.
        let main = OfflineSimulator::new(CorrelatorConfig::for_variant(Variant::Main))
            .with_capacity_cores(12.0)
            .run(&events);
        let exact = OfflineSimulator::new(CorrelatorConfig::for_variant(Variant::ExactTtl))
            .with_capacity_cores(12.0)
            .run(&events);
        assert!(main.report.metrics.flow_loss_pct() < 1.0);
        assert!(
            exact.report.metrics.flow_loss_pct() > 50.0,
            "exact-TTL should overload: got {:.1}%",
            exact.report.metrics.flow_loss_pct()
        );
        assert!(exact.mean_cpu_pct() > main.mean_cpu_pct());
    }

    #[test]
    fn hourly_samples_cover_every_hour() {
        let mut flows = Vec::new();
        for hour in [0u64, 1, 5] {
            flows.push(flow(hour * 3600 + 10, [1, 2, 3, 4], 500));
        }
        let events = OfflineSimulator::merge_events(Vec::new(), flows);
        let outcome = OfflineSimulator::new(CorrelatorConfig::default()).run(&events);
        let hours: Vec<u64> = outcome.hourly.iter().map(|h| h.hour).collect();
        assert_eq!(hours, vec![0, 1, 2, 3, 4, 5]);
        // Empty hours have zero traffic and zero CPU.
        assert_eq!(outcome.hourly[3].traffic_bytes, 0);
        assert_eq!(outcome.hourly[3].cpu_pct, 0.0);
    }

    #[test]
    fn run_with_exposes_every_written_record() {
        let events = small_trace();
        let mut seen = 0u64;
        let outcome = OfflineSimulator::new(CorrelatorConfig::default())
            .run_with(events.iter().cloned(), |_| seen += 1);
        assert_eq!(seen, outcome.report.metrics.write.records_written);
        assert_eq!(seen, 120);
    }

    #[test]
    fn simulator_stamps_asns_like_the_live_pipeline() {
        use flowdns_bgp::{Announcement, RoutingTable};
        let mut table = RoutingTable::new();
        table.announce(Announcement {
            prefix: "203.0.113.0/24".parse().unwrap(),
            origin_as: 64500,
        });
        let events = small_trace();
        let mut stamped = 0u64;
        let mut unstamped = 0u64;
        let outcome = OfflineSimulator::new(CorrelatorConfig::default())
            .with_asn_view(AsnView::new(table.freeze()))
            .run_with(events.iter().cloned(), |record| {
                if record.src_asn == Some(64500) {
                    stamped += 1;
                } else {
                    unstamped += 1;
                }
            });
        // The 203.0.113.0/24 sources are announced, the 192.0.2.x are not.
        assert_eq!(stamped, 100);
        assert_eq!(unstamped, 20);
        assert_eq!(outcome.report.metrics.lookup.asn_stamped, 100);
        // Without a view, nothing is stamped.
        let plain = OfflineSimulator::new(CorrelatorConfig::default()).run(&events);
        assert_eq!(plain.report.metrics.lookup.asn_stamped, 0);
    }

    #[test]
    fn outcome_summary_helpers() {
        let events = small_trace();
        let outcome = OfflineSimulator::new(CorrelatorConfig::default()).run(&events);
        assert!(outcome.mean_hourly_correlation_pct() > 0.0);
        assert!(outcome.peak_memory_gb() >= 0.0);
        assert!(outcome.mean_cpu_pct() >= 0.0);
    }

    /// A trace with CNAME chains (cross-shard in sharded mode) spanning
    /// a rotation boundary, then the sorted TSV egress for a given shard
    /// count.
    fn sorted_egress(correlator_shards: usize) -> (Vec<String>, SimulationOutcome) {
        let mut dns_records = Vec::new();
        let mut flow_records = Vec::new();
        for i in 0..60u8 {
            dns_records.push(dns(
                10 + i as u64,
                &format!("edge{i}.cdn.example"),
                [203, 0, 113, i],
                300,
            ));
            // Two-hop CNAME chain ending at the customer-facing name:
            // www{i} → alias{i} → edge{i} (stored answer→query, so the
            // chain is followed from the looked-up edge name back up).
            dns_records.push(DnsRecord::cname(
                SimTime::from_secs(10 + i as u64),
                DomainName::literal(&format!("alias{i}.example")),
                DomainName::literal(&format!("edge{i}.cdn.example")),
                300,
            ));
            dns_records.push(DnsRecord::cname(
                SimTime::from_secs(11 + i as u64),
                DomainName::literal(&format!("www{i}.example")),
                DomainName::literal(&format!("alias{i}.example")),
                300,
            ));
        }
        for hour in 0..2u64 {
            for i in 0..60u8 {
                flow_records.push(flow(
                    hour * 3600 + 100 + i as u64,
                    [203, 0, 113, i],
                    1_000 + i as u64,
                ));
            }
            for i in 0..10u8 {
                flow_records.push(flow(hour * 3600 + 200 + i as u64, [192, 0, 2, i], 500));
            }
        }
        let events = OfflineSimulator::merge_events(dns_records, flow_records);
        let config = CorrelatorConfig {
            correlator_shards,
            ..CorrelatorConfig::default()
        };
        let mut lines = Vec::new();
        let outcome =
            OfflineSimulator::new(config).run_with(events, |record| lines.push(record.to_tsv()));
        lines.sort();
        (lines, outcome)
    }

    #[test]
    fn sharded_simulator_output_is_identical_for_any_shard_count() {
        // The tentpole equivalence claim: routing by IP key plus a
        // broadcast clock makes the correlated output byte-identical
        // whether the store is one partition or four — and identical to
        // the classic shared store as well.
        let (classic, classic_outcome) = sorted_egress(0);
        let (one, one_outcome) = sorted_egress(1);
        let (four, four_outcome) = sorted_egress(4);
        assert_eq!(one, four);
        assert_eq!(classic, one);
        assert!(!classic.is_empty());
        // The resolved names came through the CNAME chains: the final
        // name of a correlated record is the customer-facing www name.
        assert!(classic.iter().any(|l| l.contains("www7.example")));
        for (a, b) in [
            (&classic_outcome, &one_outcome),
            (&one_outcome, &four_outcome),
        ] {
            assert_eq!(
                a.report.metrics.lookup.ip_hits,
                b.report.metrics.lookup.ip_hits
            );
            assert_eq!(
                a.report.metrics.lookup.cname_hops,
                b.report.metrics.lookup.cname_hops
            );
            assert_eq!(
                a.report.metrics.fillup.addresses_stored,
                b.report.metrics.fillup.addresses_stored
            );
        }
    }
}
