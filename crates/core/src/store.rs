//! The shared DNS store: split IP-NAME maps plus the NAME-CNAME map.
//!
//! This is the "shared internal storage" of Figure 1 that FillUp workers
//! write and LookUp workers read. It combines:
//!
//! * `NUM_SPLIT` rotating **IP-NAME** stores (key: compact [`IpKey`],
//!   value: interned query domain name), rotated every `AClearUpInterval`,
//! * one rotating **NAME-CNAME** store (key: interned canonical target
//!   name, value: interned query/alias name — see below), rotated every
//!   `CClearUpInterval`,
//! * for the [`Variant::ExactTtl`] strawman, exact-TTL stores replace the
//!   rotating ones.
//!
//! ### Typed keys
//!
//! Both hot loops — an insert per A/AAAA answer, a lookup per flow — go
//! through this API, so keys are *typed*, not textual: IPs are stored as
//! their raw bits ([`IpKey`]) and names as interned [`NameRef`] handles
//! drawn from a per-store [`NameInterner`]. Inserting or looking up a
//! record allocates nothing; cloning a stored value is a reference-count
//! bump.
//!
//! ### Key orientation
//!
//! The paper is explicit: "In all our hashmaps, the key is the answer
//! section, and the value is the query." For A/AAAA records the answer is
//! the IP and the query is the domain name, so IP → name. For CNAME
//! records the answer is the canonical (target) name and the query is the
//! alias. Chain following in Algorithm 2 then looks the *name found so
//! far* up as a key, obtaining the alias it answers for. Followed
//! repeatedly this walks the CNAME chain from the CDN-internal name back
//! towards the customer-facing name, which is exactly what the paper's
//! service attribution needs (the A record is keyed by the CDN edge name;
//! following the chain recovers e.g. `www.netflix.com`).

use std::collections::HashMap;
use std::net::IpAddr;

use flowdns_snapshot::{DnsStoreImage, SnapshotKey, StoreImage};
use flowdns_storage::{
    ExactTtlStore, Generation, GenerationsImage, MemoryEstimate, RotatingStore, RotationPolicy,
    SplitStore,
};
use flowdns_types::{DomainName, FlowDnsError, IpKey, NameInterner, NameRef, SimTime};

use crate::config::{CorrelatorConfig, Variant};

/// Builds the deduplicated name table of a snapshot: each distinct
/// [`NameRef`] gets one index, assigned on first sight, so the on-disk
/// image stores every name exactly once — mirroring the interner's
/// one-allocation-per-name invariant.
#[derive(Default)]
pub(crate) struct NameTable {
    pub(crate) names: Vec<String>,
    index: HashMap<NameRef, u32>,
}

impl NameTable {
    fn index_of(&mut self, name: &NameRef) -> u32 {
        if let Some(&idx) = self.index.get(name) {
            return idx;
        }
        let idx = self.names.len() as u32;
        self.names.push(name.as_str().to_string());
        self.index.insert(name.clone(), idx);
        idx
    }
}

/// The shared DNS storage used by one correlator instance.
#[derive(Debug)]
pub struct DnsStore {
    config: CorrelatorConfig,
    names: NameInterner,
    ip_name: SplitStore<IpKey, NameRef>,
    name_cname: RotatingStore<NameRef, NameRef>,
    exact_ip_name: Option<ExactTtlStore<IpKey, NameRef>>,
    exact_name_cname: Option<ExactTtlStore<NameRef, NameRef>>,
}

impl DnsStore {
    /// Build the storage for `config`.
    pub fn new(config: &CorrelatorConfig) -> Self {
        let ip_policy = RotationPolicy {
            clear_up_interval: config.a_clear_up_interval,
            clear_up: config.clears_up(),
            rotation: config.rotates(),
            long_maps: config.uses_long_maps(),
        };
        let cname_policy = RotationPolicy {
            clear_up_interval: config.c_clear_up_interval,
            clear_up: config.clears_up(),
            rotation: config.rotates(),
            long_maps: config.uses_long_maps(),
        };
        let exact = matches!(config.variant, Variant::ExactTtl);
        DnsStore {
            config: config.clone(),
            names: NameInterner::new(),
            ip_name: SplitStore::new(ip_policy, config.effective_num_split(), config.map_shards),
            name_cname: RotatingStore::new(cname_policy, config.map_shards),
            exact_ip_name: exact
                .then(|| ExactTtlStore::new(config.exact_ttl_purge_interval, config.map_shards)),
            exact_name_cname: exact
                .then(|| ExactTtlStore::new(config.exact_ttl_purge_interval, config.map_shards)),
        }
    }

    /// The configuration this store was built for.
    pub fn config(&self) -> &CorrelatorConfig {
        &self.config
    }

    /// Is this the exact-TTL strawman store?
    pub fn is_exact_ttl(&self) -> bool {
        self.exact_ip_name.is_some()
    }

    /// Intern a domain name in this store's pool, returning the shared
    /// handle (allocates only the first time a name is seen).
    pub fn intern(&self, name: &DomainName) -> NameRef {
        self.names.intern_domain(name)
    }

    /// Number of distinct names currently pooled in the interner.
    pub fn interned_names(&self) -> usize {
        self.names.len()
    }

    /// Store an A/AAAA mapping: IP (answer) → query name.
    pub fn insert_address(&self, ip: IpAddr, name: &DomainName, ttl: u32, ts: SimTime) {
        let key = IpKey::from_ip(ip);
        let value = self.names.intern_domain(name);
        match &self.exact_ip_name {
            Some(exact) => exact.insert(key, value, ttl, ts),
            None => self.ip_name.insert(key, value, ttl, ts),
        }
    }

    /// Store a CNAME mapping: canonical target (answer) → alias (query).
    pub fn insert_cname(&self, target: &DomainName, alias: &DomainName, ttl: u32, ts: SimTime) {
        let key = self.names.intern_domain(target);
        let value = self.names.intern_domain(alias);
        match &self.exact_name_cname {
            Some(exact) => exact.insert(key, value, ttl, ts),
            None => self.name_cname.insert(key, value, ttl, ts),
        }
    }

    /// Advance the clear-up clocks using a record timestamp (used by flow
    /// processing so quiet DNS periods still rotate).
    pub fn observe_time(&self, ts: SimTime) {
        if self.is_exact_ttl() {
            if let Some(s) = &self.exact_ip_name {
                s.maybe_purge(ts);
            }
            if let Some(s) = &self.exact_name_cname {
                s.maybe_purge(ts);
            }
        } else {
            self.ip_name.observe_time(ts);
            self.name_cname.observe_time(ts);
        }
    }

    /// `deepLookUp` on the IP-NAME store: the name a source IP maps to.
    /// `now` is the flow timestamp (only used by the exact-TTL variant).
    pub fn lookup_ip(&self, ip: IpAddr, now: SimTime) -> Option<(NameRef, Generation)> {
        let key = IpKey::from_ip(ip);
        match &self.exact_ip_name {
            Some(exact) => exact.lookup(&key, now).map(|v| (v, Generation::Active)),
            None => self.ip_name.lookup(&key),
        }
    }

    /// `deepLookUp` on the NAME-CNAME store: the alias that `name` is the
    /// canonical answer for.
    pub fn lookup_cname(&self, name: &NameRef, now: SimTime) -> Option<(NameRef, Generation)> {
        match &self.exact_name_cname {
            Some(exact) => exact.lookup(name, now).map(|v| (v, Generation::Active)),
            None => self.name_cname.lookup(name),
        }
    }

    /// Memoize a multi-hop CNAME resolution into the active NAME-CNAME map
    /// ("If the result is found with more than one look-up ... we add it
    /// to NAME-CNAMEactive for later use"). Handles are shared, so this
    /// clones two reference counts, not two strings.
    pub fn memoize_cname(&self, target: &NameRef, alias: &NameRef) {
        if self.exact_name_cname.is_none() {
            self.name_cname.memoize(target.clone(), alias.clone());
        }
    }

    /// Total stored entries across all maps.
    pub fn total_entries(&self) -> usize {
        match (&self.exact_ip_name, &self.exact_name_cname) {
            (Some(a), Some(b)) => a.len() + b.len(),
            _ => self.ip_name.total_entries() + self.name_cname.total_entries(),
        }
    }

    /// Memory estimate across all maps.
    pub fn memory_estimate(&self) -> MemoryEstimate {
        let mut est = MemoryEstimate::new();
        match (&self.exact_ip_name, &self.exact_name_cname) {
            (Some(a), Some(b)) => {
                est.merge(a.memory_estimate());
                est.merge(b.memory_estimate());
            }
            _ => {
                est.merge(self.ip_name.memory_estimate());
                est.merge(self.name_cname.memory_estimate());
            }
        }
        est
    }

    /// Export the store as a snapshot image for persistence: the
    /// deduplicated name table, one generation triple per IP-NAME split,
    /// the NAME-CNAME triple, and the rotation clocks.
    ///
    /// Returns `None` for the exact-TTL strawman — its validity depends
    /// on per-entry expiry deadlines the store does not retain, so there
    /// is nothing durable to write.
    ///
    /// The export reads each map shard under its read lock (never a
    /// global lock), so it is safe to run from a background thread while
    /// FillUp workers keep inserting; see
    /// [`RotatingStore::export_image`] for the exact consistency
    /// guarantee.
    pub fn export_image(&self) -> Option<DnsStoreImage> {
        if self.is_exact_ttl() {
            return None;
        }
        let mut table = NameTable::default();
        let ip_splits = self.ip_name.export_images();
        let mut as_of = SimTime::ZERO;
        let mut observe = |seen: Option<SimTime>| {
            if let Some(seen) = seen {
                as_of = as_of.max(seen);
            }
        };
        let mut ip_name = Vec::with_capacity(ip_splits.len());
        for split in ip_splits {
            observe(split.last_seen_ts);
            ip_name.push(StoreImage {
                last_clear_ts: split.last_clear_ts,
                last_seen_ts: split.last_seen_ts,
                active: encode_ip_entries(split.active, &mut table),
                inactive: encode_ip_entries(split.inactive, &mut table),
                long: encode_ip_entries(split.long, &mut table),
            });
        }
        let cname = self.name_cname.export_image();
        observe(cname.last_seen_ts);
        let name_cname = StoreImage {
            last_clear_ts: cname.last_clear_ts,
            last_seen_ts: cname.last_seen_ts,
            active: encode_name_entries(cname.active, &mut table),
            inactive: encode_name_entries(cname.inactive, &mut table),
            long: encode_name_entries(cname.long, &mut table),
        };
        Some(DnsStoreImage {
            as_of,
            num_split: ip_name.len() as u32,
            shards: 0,
            a_interval_secs: self.config.a_clear_up_interval.as_secs(),
            c_interval_secs: self.config.c_clear_up_interval.as_secs(),
            names: table.names,
            ip_name,
            name_cname,
        })
    }

    /// Warm-start the store from a snapshot image, returning how many
    /// entries survived the aging rules.
    ///
    /// The image's name table is interned once through this store's pool
    /// (so the dedup invariant — one allocation per distinct name across
    /// every generation — is reconstructed exactly), then each store's
    /// generations are loaded and aged to `now`: generations older than
    /// the rotation window are discarded, a one-window-old Active
    /// demotes to Inactive, and the Long maps always survive (see
    /// [`RotatingStore::import_image`]). `now` defaults to the image's
    /// own [`DnsStoreImage::as_of`] — right for a quick restart, where
    /// data time effectively stood still while the process was down.
    ///
    /// Errors if this store is the exact-TTL variant, if the split count
    /// or clear-up intervals changed between runs (the aging math above
    /// is only meaningful against the intervals the image was built
    /// with), or if the image references names out of its table's
    /// bounds.
    pub fn import_image(
        &self,
        image: &DnsStoreImage,
        now: Option<SimTime>,
    ) -> Result<usize, FlowDnsError> {
        if self.is_exact_ttl() {
            return Err(FlowDnsError::Snapshot(
                "the exact-TTL store variant cannot warm-start from a snapshot".into(),
            ));
        }
        if image.shards != 0 {
            return Err(FlowDnsError::Snapshot(format!(
                "snapshot was written by a sharded correlator ({} shards), \
                 this store is the classic shared layout \
                 (set correlator_shards to match, or delete the snapshot)",
                image.shards
            )));
        }
        for (key, image_secs, config_secs) in [
            (
                "a_clear_up_interval",
                image.a_interval_secs,
                self.config.a_clear_up_interval.as_secs(),
            ),
            (
                "c_clear_up_interval",
                image.c_interval_secs,
                self.config.c_clear_up_interval.as_secs(),
            ),
        ] {
            if image_secs != config_secs {
                return Err(FlowDnsError::Snapshot(format!(
                    "snapshot was written with {key} = {image_secs} s, \
                     this store is configured for {config_secs} s \
                     (delete the snapshot to change intervals)"
                )));
            }
        }
        let now = now.unwrap_or(image.as_of);
        let handles = self.names.import_names(&image.names);
        let before = self.total_entries();
        let mut splits = Vec::with_capacity(image.ip_name.len());
        for split in &image.ip_name {
            splits.push(GenerationsImage {
                last_clear_ts: split.last_clear_ts,
                last_seen_ts: split.last_seen_ts,
                active: decode_ip_entries(&split.active, &handles)?,
                inactive: decode_ip_entries(&split.inactive, &handles)?,
                long: decode_ip_entries(&split.long, &handles)?,
            });
        }
        self.ip_name.import_images(splits, now)?;
        let cname = &image.name_cname;
        self.name_cname.import_image(
            GenerationsImage {
                last_clear_ts: cname.last_clear_ts,
                last_seen_ts: cname.last_seen_ts,
                active: decode_name_entries(&cname.active, &handles)?,
                inactive: decode_name_entries(&cname.inactive, &handles)?,
                long: decode_name_entries(&cname.long, &handles)?,
            },
            now,
        );
        Ok(self.total_entries().saturating_sub(before))
    }

    /// Number of clear-up rounds performed so far (0 for exact-TTL).
    pub fn clear_ups(&self) -> u64 {
        if self.is_exact_ttl() {
            0
        } else {
            self.ip_name.stats().clear_ups + self.name_cname.stats().clear_ups
        }
    }

    /// Entries scanned by exact-TTL purges so far (0 for rotating stores).
    pub fn purge_scanned(&self) -> u64 {
        match (&self.exact_ip_name, &self.exact_name_cname) {
            (Some(a), Some(b)) => a.stats().purge_scanned + b.stats().purge_scanned,
            _ => 0,
        }
    }

    /// Entries rotated into Inactive maps so far.
    pub fn rotated_entries(&self) -> u64 {
        if self.is_exact_ttl() {
            0
        } else {
            self.ip_name.stats().rotated_entries + self.name_cname.stats().rotated_entries
        }
    }
}

pub(crate) fn encode_ip_entries(
    entries: Vec<(IpKey, NameRef)>,
    table: &mut NameTable,
) -> Vec<(SnapshotKey, u32)> {
    entries
        .into_iter()
        .map(|(key, value)| (SnapshotKey::Ip(key), table.index_of(&value)))
        .collect()
}

pub(crate) fn encode_name_entries(
    entries: Vec<(NameRef, NameRef)>,
    table: &mut NameTable,
) -> Vec<(SnapshotKey, u32)> {
    entries
        .into_iter()
        .map(|(key, value)| {
            (
                SnapshotKey::Name(table.index_of(&key)),
                table.index_of(&value),
            )
        })
        .collect()
}

fn resolve_name(handles: &[NameRef], idx: u32) -> Result<NameRef, FlowDnsError> {
    handles.get(idx as usize).cloned().ok_or_else(|| {
        FlowDnsError::Snapshot(format!(
            "name index {idx} out of bounds (table has {} names)",
            handles.len()
        ))
    })
}

pub(crate) fn decode_ip_entries(
    entries: &[(SnapshotKey, u32)],
    handles: &[NameRef],
) -> Result<Vec<(IpKey, NameRef)>, FlowDnsError> {
    entries
        .iter()
        .map(|(key, value)| match key {
            SnapshotKey::Ip(ip) => Ok((*ip, resolve_name(handles, *value)?)),
            SnapshotKey::Name(_) => Err(FlowDnsError::Snapshot(
                "IP-NAME split contains a non-IP key".into(),
            )),
        })
        .collect()
}

pub(crate) fn decode_name_entries(
    entries: &[(SnapshotKey, u32)],
    handles: &[NameRef],
) -> Result<Vec<(NameRef, NameRef)>, FlowDnsError> {
    entries
        .iter()
        .map(|(key, value)| match key {
            SnapshotKey::Name(idx) => {
                Ok((resolve_name(handles, *idx)?, resolve_name(handles, *value)?))
            }
            SnapshotKey::Ip(_) => Err(FlowDnsError::Snapshot(
                "NAME-CNAME store contains an IP key".into(),
            )),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdns_types::NameRef;

    fn store(variant: Variant) -> DnsStore {
        DnsStore::new(&CorrelatorConfig::for_variant(variant))
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn name(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    #[test]
    fn address_and_cname_lookups() {
        let s = store(Variant::Main);
        s.insert_address(
            ip("203.0.113.9"),
            &name("edge7.cdn.example.net"),
            60,
            SimTime::ZERO,
        );
        s.insert_cname(
            &name("edge7.cdn.example.net"),
            &name("www.shop.example"),
            600,
            SimTime::ZERO,
        );
        let (found, generation) = s.lookup_ip(ip("203.0.113.9"), SimTime::ZERO).unwrap();
        assert_eq!(found.as_str(), "edge7.cdn.example.net");
        assert_eq!(generation, Generation::Active);
        let (alias, _) = s.lookup_cname(&found, SimTime::ZERO).unwrap();
        assert_eq!(alias.as_str(), "www.shop.example");
        assert!(s.lookup_ip(ip("198.51.100.1"), SimTime::ZERO).is_none());
        assert_eq!(s.total_entries(), 2);
    }

    #[test]
    fn values_share_the_interned_allocation() {
        let s = store(Variant::Main);
        let edge = name("edge.cdn.example");
        // The same name stored under two IPs is one pooled allocation.
        s.insert_address(ip("203.0.113.1"), &edge, 60, SimTime::ZERO);
        s.insert_address(ip("203.0.113.2"), &edge, 60, SimTime::ZERO);
        let (a, _) = s.lookup_ip(ip("203.0.113.1"), SimTime::ZERO).unwrap();
        let (b, _) = s.lookup_ip(ip("203.0.113.2"), SimTime::ZERO).unwrap();
        assert!(NameRef::ptr_eq(&a, &b));
        assert_eq!(s.interned_names(), 1);
    }

    #[test]
    fn ipv6_addresses_are_first_class_keys() {
        let s = store(Variant::Main);
        s.insert_address(ip("2001:db8::7"), &name("v6.example"), 60, SimTime::ZERO);
        let (found, _) = s.lookup_ip(ip("2001:db8::7"), SimTime::ZERO).unwrap();
        assert_eq!(found.as_str(), "v6.example");
        // The v4-mapped form is a different key.
        assert!(s
            .lookup_ip(ip("::ffff:203.0.113.9"), SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn clear_up_intervals_differ_between_maps() {
        let s = store(Variant::Main);
        s.insert_address(ip("1.1.1.1"), &name("a.example"), 60, SimTime::from_secs(0));
        s.insert_cname(
            &name("cdn.example"),
            &name("www.example"),
            60,
            SimTime::from_secs(0),
        );
        // After 4000 s the IP-NAME maps have rotated (interval 3600) but
        // the NAME-CNAME map (interval 7200) has not.
        s.observe_time(SimTime::from_secs(4000));
        assert_eq!(
            s.lookup_ip(ip("1.1.1.1"), SimTime::from_secs(4000))
                .unwrap()
                .1,
            Generation::Inactive
        );
        let cdn = s.intern(&name("cdn.example"));
        assert_eq!(
            s.lookup_cname(&cdn, SimTime::from_secs(4000)).unwrap().1,
            Generation::Active
        );
        // Only the split that has seen data had an armed clear-up clock.
        assert_eq!(s.clear_ups(), 1);
    }

    #[test]
    fn no_split_variant_uses_one_split() {
        let s = store(Variant::NoSplit);
        for i in 0..20 {
            s.insert_address(
                ip(&format!("10.0.0.{i}")),
                &name("x.example"),
                60,
                SimTime::ZERO,
            );
        }
        // A clear-up round on a single-split store counts once for IP-NAME.
        s.observe_time(SimTime::from_secs(4000));
        assert_eq!(s.clear_ups(), 1);
    }

    #[test]
    fn exact_ttl_variant_expires_by_record_ttl() {
        let s = store(Variant::ExactTtl);
        assert!(s.is_exact_ttl());
        s.insert_address(
            ip("9.9.9.9"),
            &name("short.example"),
            30,
            SimTime::from_secs(0),
        );
        assert!(s.lookup_ip(ip("9.9.9.9"), SimTime::from_secs(10)).is_some());
        assert!(s
            .lookup_ip(ip("9.9.9.9"), SimTime::from_secs(100))
            .is_none());
        // purge accounting becomes visible after the purge interval
        s.observe_time(SimTime::from_secs(1));
        s.observe_time(SimTime::from_secs(10_000));
        assert!(s.purge_scanned() > 0);
        assert_eq!(s.clear_ups(), 0);
    }

    #[test]
    fn memoization_feeds_later_lookups() {
        let s = store(Variant::Main);
        let edge = s.intern(&name("edge.cdn.example"));
        let service = s.intern(&name("service.example"));
        s.memoize_cname(&edge, &service);
        assert_eq!(
            s.lookup_cname(&edge, SimTime::ZERO).unwrap().0.as_str(),
            "service.example"
        );
    }

    #[test]
    fn snapshot_round_trip_restores_lookups_and_dedup() {
        let s = store(Variant::Main);
        let ts = SimTime::from_secs(10);
        s.insert_address(ip("203.0.113.9"), &name("edge7.cdn.example.net"), 60, ts);
        s.insert_address(ip("203.0.113.10"), &name("edge7.cdn.example.net"), 60, ts);
        s.insert_address(ip("2001:db8::7"), &name("v6.example"), 86_400, ts);
        s.insert_cname(
            &name("edge7.cdn.example.net"),
            &name("www.shop.example"),
            600,
            ts,
        );
        let image = s.export_image().unwrap();
        // The same name under two IPs (and as a CNAME key) is stored once.
        assert_eq!(image.names.len(), 3);
        assert_eq!(image.entry_count(), 4);
        assert_eq!(image.as_of, ts);

        let restored = store(Variant::Main);
        let loaded = restored.import_image(&image, None).unwrap();
        assert_eq!(loaded, 4);
        assert_eq!(restored.interned_names(), 3);
        let (a, gen_a) = restored.lookup_ip(ip("203.0.113.9"), ts).unwrap();
        assert_eq!(a.as_str(), "edge7.cdn.example.net");
        assert_eq!(gen_a, Generation::Active);
        let (b, _) = restored.lookup_ip(ip("203.0.113.10"), ts).unwrap();
        // Interner dedup reconstructed exactly: one allocation again.
        assert!(NameRef::ptr_eq(&a, &b));
        assert_eq!(
            restored.lookup_ip(ip("2001:db8::7"), ts).unwrap().1,
            Generation::Long
        );
        let (alias, _) = restored.lookup_cname(&a, ts).unwrap();
        assert_eq!(alias.as_str(), "www.shop.example");
    }

    #[test]
    fn import_ages_generations_past_the_rotation_window() {
        let s = store(Variant::Main);
        s.insert_address(ip("1.2.3.4"), &name("short.example"), 60, SimTime::ZERO);
        s.insert_address(
            ip("5.6.7.8"),
            &name("stable.example"),
            86_400,
            SimTime::ZERO,
        );
        let image = s.export_image().unwrap();
        let restored = store(Variant::Main);
        // Restart a full day later: only the Long generation survives.
        let now = SimTime::from_secs(86_400);
        restored.import_image(&image, Some(now)).unwrap();
        assert!(restored.lookup_ip(ip("1.2.3.4"), now).is_none());
        assert_eq!(
            restored.lookup_ip(ip("5.6.7.8"), now).unwrap().0.as_str(),
            "stable.example"
        );
    }

    #[test]
    fn exact_ttl_variant_has_no_snapshot() {
        let s = store(Variant::ExactTtl);
        assert!(s.export_image().is_none());
        let donor = store(Variant::Main);
        donor.insert_address(ip("1.1.1.1"), &name("a.example"), 60, SimTime::ZERO);
        let image = donor.export_image().unwrap();
        assert!(matches!(
            s.import_image(&image, None),
            Err(FlowDnsError::Snapshot(_))
        ));
    }

    #[test]
    fn import_rejects_changed_split_counts() {
        let s = store(Variant::Main); // 10 splits
        s.insert_address(ip("1.1.1.1"), &name("a.example"), 60, SimTime::ZERO);
        let image = s.export_image().unwrap();
        let single = store(Variant::NoSplit); // 1 split
        assert!(matches!(
            single.import_image(&image, None),
            Err(FlowDnsError::Snapshot(_))
        ));
    }

    #[test]
    fn import_rejects_changed_clear_up_intervals() {
        let s = store(Variant::Main);
        s.insert_address(ip("1.1.1.1"), &name("a.example"), 60, SimTime::ZERO);
        let image = s.export_image().unwrap();
        // The aging rules are computed against the exporting intervals;
        // a reconfigured store must reject the file, not misage it.
        let shorter = DnsStore::new(&CorrelatorConfig {
            a_clear_up_interval: flowdns_types::SimDuration::from_secs(60),
            ..CorrelatorConfig::default()
        });
        match shorter.import_image(&image, None) {
            Err(FlowDnsError::Snapshot(msg)) => {
                assert!(msg.contains("a_clear_up_interval"), "{msg}")
            }
            other => panic!("expected interval rejection, got {other:?}"),
        }
    }

    #[test]
    fn memory_estimate_grows_with_inserts() {
        let s = store(Variant::Main);
        let before = s.memory_estimate().total_bytes();
        for i in 0..100 {
            s.insert_address(
                ip(&format!("198.51.100.{i}")),
                &name("service.example.net"),
                60,
                SimTime::ZERO,
            );
        }
        assert!(s.memory_estimate().total_bytes() > before);
        assert_eq!(s.memory_estimate().entries, 100);
    }
}
