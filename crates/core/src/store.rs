//! The shared DNS store: split IP-NAME maps plus the NAME-CNAME map.
//!
//! This is the "shared internal storage" of Figure 1 that FillUp workers
//! write and LookUp workers read. It combines:
//!
//! * `NUM_SPLIT` rotating **IP-NAME** stores (key: textual IP address,
//!   value: query domain name), rotated every `AClearUpInterval`,
//! * one rotating **NAME-CNAME** store (key: canonical target name,
//!   value: query/alias name is *not* what the paper stores — see below),
//!   rotated every `CClearUpInterval`,
//! * for the [`Variant::ExactTtl`] strawman, exact-TTL stores replace the
//!   rotating ones.
//!
//! ### Key orientation
//!
//! The paper is explicit: "In all our hashmaps, the key is the answer
//! section, and the value is the query." For A/AAAA records the answer is
//! the IP and the query is the domain name, so IP → name. For CNAME
//! records the answer is the canonical (target) name and the query is the
//! alias. Chain following in Algorithm 2 then looks the *name found so
//! far* up as a key, obtaining the alias it answers for. Followed
//! repeatedly this walks the CNAME chain from the CDN-internal name back
//! towards the customer-facing name, which is exactly what the paper's
//! service attribution needs (the A record is keyed by the CDN edge name;
//! following the chain recovers e.g. `www.netflix.com`).

use flowdns_storage::{
    ExactTtlStore, Generation, MemoryEstimate, RotatingStore, RotationPolicy, SplitStore,
};
use flowdns_types::SimTime;

use crate::config::{CorrelatorConfig, Variant};

/// The shared DNS storage used by one correlator instance.
#[derive(Debug)]
pub struct DnsStore {
    config: CorrelatorConfig,
    ip_name: SplitStore,
    name_cname: RotatingStore,
    exact_ip_name: Option<ExactTtlStore>,
    exact_name_cname: Option<ExactTtlStore>,
}

impl DnsStore {
    /// Build the storage for `config`.
    pub fn new(config: &CorrelatorConfig) -> Self {
        let ip_policy = RotationPolicy {
            clear_up_interval: config.a_clear_up_interval,
            clear_up: config.clears_up(),
            rotation: config.rotates(),
            long_maps: config.uses_long_maps(),
        };
        let cname_policy = RotationPolicy {
            clear_up_interval: config.c_clear_up_interval,
            clear_up: config.clears_up(),
            rotation: config.rotates(),
            long_maps: config.uses_long_maps(),
        };
        let exact = matches!(config.variant, Variant::ExactTtl);
        DnsStore {
            config: *config,
            ip_name: SplitStore::new(ip_policy, config.effective_num_split(), config.map_shards),
            name_cname: RotatingStore::new(cname_policy, config.map_shards),
            exact_ip_name: exact
                .then(|| ExactTtlStore::new(config.exact_ttl_purge_interval, config.map_shards)),
            exact_name_cname: exact
                .then(|| ExactTtlStore::new(config.exact_ttl_purge_interval, config.map_shards)),
        }
    }

    /// The configuration this store was built for.
    pub fn config(&self) -> &CorrelatorConfig {
        &self.config
    }

    /// Is this the exact-TTL strawman store?
    pub fn is_exact_ttl(&self) -> bool {
        self.exact_ip_name.is_some()
    }

    /// Store an A/AAAA mapping: IP (answer) → query name.
    pub fn insert_address(&self, ip: &str, name: &str, ttl: u32, ts: SimTime) {
        match &self.exact_ip_name {
            Some(exact) => exact.insert(ip.to_string(), name.to_string(), ttl, ts),
            None => self
                .ip_name
                .insert(ip.to_string(), name.to_string(), ttl, ts),
        }
    }

    /// Store a CNAME mapping: canonical target (answer) → alias (query).
    pub fn insert_cname(&self, target: &str, alias: &str, ttl: u32, ts: SimTime) {
        match &self.exact_name_cname {
            Some(exact) => exact.insert(target.to_string(), alias.to_string(), ttl, ts),
            None => self
                .name_cname
                .insert(target.to_string(), alias.to_string(), ttl, ts),
        }
    }

    /// Advance the clear-up clocks using a record timestamp (used by flow
    /// processing so quiet DNS periods still rotate).
    pub fn observe_time(&self, ts: SimTime) {
        if self.is_exact_ttl() {
            if let Some(s) = &self.exact_ip_name {
                s.maybe_purge(ts);
            }
            if let Some(s) = &self.exact_name_cname {
                s.maybe_purge(ts);
            }
        } else {
            self.ip_name.observe_time(ts);
            self.name_cname.observe_time(ts);
        }
    }

    /// `deepLookUp` on the IP-NAME store: the name a source IP maps to.
    /// `now` is the flow timestamp (only used by the exact-TTL variant).
    pub fn lookup_ip(&self, ip: &str, now: SimTime) -> Option<(String, Generation)> {
        match &self.exact_ip_name {
            Some(exact) => exact.lookup(ip, now).map(|v| (v, Generation::Active)),
            None => self.ip_name.lookup(ip),
        }
    }

    /// `deepLookUp` on the NAME-CNAME store: the alias that `name` is the
    /// canonical answer for.
    pub fn lookup_cname(&self, name: &str, now: SimTime) -> Option<(String, Generation)> {
        match &self.exact_name_cname {
            Some(exact) => exact.lookup(name, now).map(|v| (v, Generation::Active)),
            None => self.name_cname.lookup(name),
        }
    }

    /// Memoize a multi-hop CNAME resolution into the active NAME-CNAME map
    /// ("If the result is found with more than one look-up ... we add it
    /// to NAME-CNAMEactive for later use").
    pub fn memoize_cname(&self, target: &str, alias: &str) {
        if self.exact_name_cname.is_none() {
            self.name_cname
                .memoize(target.to_string(), alias.to_string());
        }
    }

    /// Total stored entries across all maps.
    pub fn total_entries(&self) -> usize {
        match (&self.exact_ip_name, &self.exact_name_cname) {
            (Some(a), Some(b)) => a.len() + b.len(),
            _ => self.ip_name.total_entries() + self.name_cname.total_entries(),
        }
    }

    /// Memory estimate across all maps.
    pub fn memory_estimate(&self) -> MemoryEstimate {
        let mut est = MemoryEstimate::new();
        match (&self.exact_ip_name, &self.exact_name_cname) {
            (Some(a), Some(b)) => {
                est.merge(a.memory_estimate());
                est.merge(b.memory_estimate());
            }
            _ => {
                est.merge(self.ip_name.memory_estimate());
                est.merge(self.name_cname.memory_estimate());
            }
        }
        est
    }

    /// Number of clear-up rounds performed so far (0 for exact-TTL).
    pub fn clear_ups(&self) -> u64 {
        if self.is_exact_ttl() {
            0
        } else {
            self.ip_name.stats().clear_ups + self.name_cname.stats().clear_ups
        }
    }

    /// Entries scanned by exact-TTL purges so far (0 for rotating stores).
    pub fn purge_scanned(&self) -> u64 {
        match (&self.exact_ip_name, &self.exact_name_cname) {
            (Some(a), Some(b)) => a.stats().purge_scanned + b.stats().purge_scanned,
            _ => 0,
        }
    }

    /// Entries rotated into Inactive maps so far.
    pub fn rotated_entries(&self) -> u64 {
        if self.is_exact_ttl() {
            0
        } else {
            self.ip_name.stats().rotated_entries + self.name_cname.stats().rotated_entries
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(variant: Variant) -> DnsStore {
        DnsStore::new(&CorrelatorConfig::for_variant(variant))
    }

    #[test]
    fn address_and_cname_lookups() {
        let s = store(Variant::Main);
        s.insert_address("203.0.113.9", "edge7.cdn.example.net", 60, SimTime::ZERO);
        s.insert_cname(
            "edge7.cdn.example.net",
            "www.shop.example",
            600,
            SimTime::ZERO,
        );
        let (name, generation) = s.lookup_ip("203.0.113.9", SimTime::ZERO).unwrap();
        assert_eq!(name, "edge7.cdn.example.net");
        assert_eq!(generation, Generation::Active);
        let (alias, _) = s.lookup_cname(&name, SimTime::ZERO).unwrap();
        assert_eq!(alias, "www.shop.example");
        assert!(s.lookup_ip("198.51.100.1", SimTime::ZERO).is_none());
        assert_eq!(s.total_entries(), 2);
    }

    #[test]
    fn clear_up_intervals_differ_between_maps() {
        let s = store(Variant::Main);
        s.insert_address("1.1.1.1", "a.example", 60, SimTime::from_secs(0));
        s.insert_cname("cdn.example", "www.example", 60, SimTime::from_secs(0));
        // After 4000 s the IP-NAME maps have rotated (interval 3600) but
        // the NAME-CNAME map (interval 7200) has not.
        s.observe_time(SimTime::from_secs(4000));
        assert_eq!(
            s.lookup_ip("1.1.1.1", SimTime::from_secs(4000)).unwrap().1,
            Generation::Inactive
        );
        assert_eq!(
            s.lookup_cname("cdn.example", SimTime::from_secs(4000))
                .unwrap()
                .1,
            Generation::Active
        );
        // Only the split that has seen data had an armed clear-up clock.
        assert_eq!(s.clear_ups(), 1);
    }

    #[test]
    fn no_split_variant_uses_one_split() {
        let s = store(Variant::NoSplit);
        for i in 0..20 {
            s.insert_address(&format!("10.0.0.{i}"), "x.example", 60, SimTime::ZERO);
        }
        // A clear-up round on a single-split store counts once for IP-NAME.
        s.observe_time(SimTime::from_secs(4000));
        assert_eq!(s.clear_ups(), 1);
    }

    #[test]
    fn exact_ttl_variant_expires_by_record_ttl() {
        let s = store(Variant::ExactTtl);
        assert!(s.is_exact_ttl());
        s.insert_address("9.9.9.9", "short.example", 30, SimTime::from_secs(0));
        assert!(s.lookup_ip("9.9.9.9", SimTime::from_secs(10)).is_some());
        assert!(s.lookup_ip("9.9.9.9", SimTime::from_secs(100)).is_none());
        // purge accounting becomes visible after the purge interval
        s.observe_time(SimTime::from_secs(1));
        s.observe_time(SimTime::from_secs(10_000));
        assert!(s.purge_scanned() > 0);
        assert_eq!(s.clear_ups(), 0);
    }

    #[test]
    fn memoization_feeds_later_lookups() {
        let s = store(Variant::Main);
        s.memoize_cname("edge.cdn.example", "service.example");
        assert_eq!(
            s.lookup_cname("edge.cdn.example", SimTime::ZERO).unwrap().0,
            "service.example"
        );
    }

    #[test]
    fn memory_estimate_grows_with_inserts() {
        let s = store(Variant::Main);
        let before = s.memory_estimate().total_bytes();
        for i in 0..100 {
            s.insert_address(
                &format!("198.51.100.{i}"),
                "service.example.net",
                60,
                SimTime::ZERO,
            );
        }
        assert!(s.memory_estimate().total_bytes() > before);
        assert_eq!(s.memory_estimate().entries, 100);
    }
}
