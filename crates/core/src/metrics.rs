//! Pipeline metrics: correlation rate, loss, CPU (work units) and memory.
//!
//! The paper evaluates FlowDNS on four axes: correlation rate (share of
//! traffic bytes attributed to a name), stream loss (buffer overflow
//! drops), CPU usage and memory usage. The live pipeline reports measured
//! wall-clock numbers; the offline simulator reports *work units*
//! converted to CPU-core-percent via a documented [`CostModel`], because
//! the figures' shape comes from how much work each variant does per
//! record, not from the absolute speed of the host machine.

use flowdns_storage::MemoryEstimate;
use flowdns_types::VolumeAccumulator;

use crate::fillup::FillUpStats;
use crate::lookup::LookUpStats;
use crate::write::WriteStats;

/// The cost model converting operations into abstract work units.
///
/// The constants are chosen so that the relative cost ordering matches the
/// paper's observations: per-record costs dominate in steady state,
/// rotation copies are amortized, per-split bookkeeping adds a small
/// per-record overhead (the paper: splitting "consum[es] higher CPU for
/// the same amount of data"), and full-map purge scans (exact-TTL) are
/// catastrophic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Work to parse + insert one DNS record.
    pub dns_insert: f64,
    /// Work to parse one flow record and perform the IP lookup cascade.
    pub flow_lookup: f64,
    /// Work per CNAME chain hop.
    pub cname_hop: f64,
    /// Work per record to serialize + write output.
    pub write_record: f64,
    /// Extra work per record and per additional split beyond the first
    /// (simultaneous access bookkeeping).
    pub split_overhead: f64,
    /// Work per entry copied during buffer rotation.
    pub rotate_entry: f64,
    /// Work per entry scanned by an exact-TTL purge.
    pub purge_scan_entry: f64,
    /// Work units one CPU core performs per simulated second. This sets
    /// the scale of the CPU-percent axis.
    pub core_units_per_sec: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            dns_insert: 1.0,
            flow_lookup: 1.0,
            cname_hop: 0.4,
            write_record: 0.3,
            split_overhead: 0.03,
            rotate_entry: 0.2,
            purge_scan_entry: 0.8,
            core_units_per_sec: 3.0,
        }
    }
}

impl CostModel {
    /// CPU usage in percent (100% = one core) for `work` units spent over
    /// `secs` simulated seconds.
    pub fn cpu_pct(&self, work: f64, secs: f64) -> f64 {
        if secs <= 0.0 {
            return 0.0;
        }
        work / secs / self.core_units_per_sec * 100.0
    }
}

/// Aggregated metrics of a pipeline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineMetrics {
    /// FillUp-side statistics.
    pub fillup: FillUpStats,
    /// LookUp-side statistics.
    pub lookup: LookUpStats,
    /// Write-side statistics.
    pub write: WriteStats,
    /// DNS records dropped because the FillUp queue overflowed.
    pub dns_dropped: u64,
    /// Flow records dropped because the LookUp queue overflowed.
    pub flows_dropped: u64,
    /// Correlated records dropped because the Write queue overflowed.
    pub writes_dropped: u64,
    /// Total abstract work units spent (offline simulator only).
    pub work_units: f64,
    /// Peak memory estimate observed.
    pub peak_memory: MemoryEstimate,
}

impl PipelineMetrics {
    /// Fraction of offered DNS records that were lost, in percent.
    pub fn dns_loss_pct(&self) -> f64 {
        loss_pct(self.dns_dropped, self.fillup.total())
    }

    /// Fraction of offered flow records that were lost, in percent.
    pub fn flow_loss_pct(&self) -> f64 {
        loss_pct(self.flows_dropped, self.lookup.total())
    }
}

fn loss_pct(dropped: u64, processed: u64) -> f64 {
    let offered = dropped + processed;
    if offered == 0 {
        0.0
    } else {
        dropped as f64 / offered as f64 * 100.0
    }
}

/// The final report of a correlator run: what `Correlator::finish` and the
/// offline simulator return.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Byte-volume accounting; `volumes.correlation_rate_pct()` is the
    /// paper's headline metric.
    pub volumes: VolumeAccumulator,
    /// Detailed pipeline metrics.
    pub metrics: PipelineMetrics,
}

impl Report {
    /// The correlation rate in percent.
    pub fn correlation_rate_pct(&self) -> f64 {
        self.volumes.correlation_rate_pct()
    }

    /// Render a short human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "correlated {:.1}% of {} total bytes; dns_loss={:.2}% flow_loss={:.2}%; \
             {} dns records stored, {} flows looked up, {} records written",
            self.correlation_rate_pct(),
            self.volumes.total,
            self.metrics.dns_loss_pct(),
            self.metrics.flow_loss_pct(),
            self.metrics.fillup.addresses_stored + self.metrics.fillup.cnames_stored,
            self.metrics.lookup.total(),
            self.metrics.write.records_written,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_pct_scales_with_work_and_time() {
        let m = CostModel::default();
        let one_core = m.core_units_per_sec;
        assert!((m.cpu_pct(one_core, 1.0) - 100.0).abs() < 1e-9);
        assert!((m.cpu_pct(one_core * 25.0, 1.0) - 2500.0).abs() < 1e-6);
        assert!((m.cpu_pct(one_core, 2.0) - 50.0).abs() < 1e-9);
        assert_eq!(m.cpu_pct(100.0, 0.0), 0.0);
    }

    #[test]
    fn loss_percentages() {
        let mut m = PipelineMetrics::default();
        assert_eq!(m.dns_loss_pct(), 0.0);
        m.fillup.addresses_stored = 90;
        m.dns_dropped = 10;
        assert!((m.dns_loss_pct() - 10.0).abs() < 1e-9);
        m.lookup.ip_hits = 50;
        m.lookup.ip_misses = 25;
        m.flows_dropped = 25;
        assert!((m.flow_loss_pct() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn report_summary_mentions_key_numbers() {
        let mut r = Report::default();
        r.volumes.record(1000, true);
        r.volumes.record(1000, false);
        r.metrics.write.records_written = 2;
        let s = r.summary();
        assert!(s.contains("50.0%"));
        assert!(s.contains("2 records written"));
    }
}
