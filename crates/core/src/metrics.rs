//! Pipeline metrics: correlation rate, loss, CPU (work units) and memory.
//!
//! The paper evaluates FlowDNS on four axes: correlation rate (share of
//! traffic bytes attributed to a name), stream loss (buffer overflow
//! drops), CPU usage and memory usage. The live pipeline reports measured
//! wall-clock numbers; the offline simulator reports *work units*
//! converted to CPU-core-percent via a documented [`CostModel`], because
//! the figures' shape comes from how much work each variant does per
//! record, not from the absolute speed of the host machine.

use flowdns_storage::MemoryEstimate;
use flowdns_stream::LatencySnapshot;
use flowdns_types::VolumeAccumulator;

use crate::fillup::FillUpStats;
use crate::lookup::LookUpStats;
use crate::write::WriteStats;

/// The cost model converting operations into abstract work units.
///
/// The constants are chosen so that the relative cost ordering matches the
/// paper's observations: per-record costs dominate in steady state,
/// rotation copies are amortized, per-split bookkeeping adds a small
/// per-record overhead (the paper: splitting "consum\[es\] higher CPU for
/// the same amount of data"), and full-map purge scans (exact-TTL) are
/// catastrophic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Work to parse + insert one DNS record.
    pub dns_insert: f64,
    /// Work to parse one flow record and perform the IP lookup cascade.
    pub flow_lookup: f64,
    /// Work per CNAME chain hop.
    pub cname_hop: f64,
    /// Work per record to serialize + write output.
    pub write_record: f64,
    /// Extra work per record and per additional split beyond the first
    /// (simultaneous access bookkeeping).
    pub split_overhead: f64,
    /// Work per entry copied during buffer rotation.
    pub rotate_entry: f64,
    /// Work per entry scanned by an exact-TTL purge.
    pub purge_scan_entry: f64,
    /// Work units one CPU core performs per simulated second. This sets
    /// the scale of the CPU-percent axis.
    pub core_units_per_sec: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            dns_insert: 1.0,
            flow_lookup: 1.0,
            cname_hop: 0.4,
            write_record: 0.3,
            split_overhead: 0.03,
            rotate_entry: 0.2,
            purge_scan_entry: 0.8,
            core_units_per_sec: 3.0,
        }
    }
}

impl CostModel {
    /// CPU usage in percent (100% = one core) for `work` units spent over
    /// `secs` simulated seconds.
    pub fn cpu_pct(&self, work: f64, secs: f64) -> f64 {
        if secs <= 0.0 {
            return 0.0;
        }
        work / secs / self.core_units_per_sec * 100.0
    }
}

/// Counters of one network exporter peer, as folded into the final
/// report by the live ingest layer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExporterStats {
    /// The exporter's socket address, stringified.
    pub exporter: String,
    /// Datagrams successfully decoded from this exporter.
    pub datagrams: u64,
    /// Flow records extracted from this exporter's datagrams.
    pub flows: u64,
    /// Datagrams rejected as malformed.
    pub malformed: u64,
    /// Data flowsets dropped because their template was not yet known.
    pub unknown_template_drops: u64,
}

/// Network-ingest counters folded into [`PipelineMetrics`] when the
/// pipeline is fed by live sockets rather than in-process replay.
///
/// All-zero (the `Default`) for offline runs, so offline reports are
/// unchanged by the ingest subsystem's existence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestSummary {
    /// NetFlow datagrams decoded across all exporters.
    pub netflow_datagrams: u64,
    /// Flow records extracted across all exporters.
    pub netflow_flows: u64,
    /// Malformed NetFlow datagrams across all exporters.
    pub netflow_malformed: u64,
    /// Data flowsets dropped for lack of a template, across all exporters.
    pub netflow_unknown_template_drops: u64,
    /// Flow records dropped because the LookUp queue was full at ingest.
    pub netflow_queue_drops: u64,
    /// DNS feed connections accepted.
    pub dns_connections: u64,
    /// DNS records decoded from the feed framing.
    pub dns_records: u64,
    /// DNS feed connections dropped for malformed framing.
    pub dns_malformed_streams: u64,
    /// DNS records dropped because the FillUp queue was full at ingest.
    pub dns_queue_drops: u64,
    /// Per-exporter breakdown, sorted by exporter address.
    pub per_exporter: Vec<ExporterStats>,
}

impl IngestSummary {
    /// Did this run ingest anything over the network at all?
    pub fn is_live(&self) -> bool {
        *self != IngestSummary::default()
    }

    /// Short stats line for periodic reporting and the final summary.
    pub fn summary_line(&self) -> String {
        format!(
            "netflow: {} datagrams from {} exporters -> {} flows \
             ({} malformed, {} no-template, {} queue-dropped); \
             dns feed: {} records over {} connections \
             ({} malformed streams, {} queue-dropped)",
            self.netflow_datagrams,
            self.per_exporter.len(),
            self.netflow_flows,
            self.netflow_malformed,
            self.netflow_unknown_template_drops,
            self.netflow_queue_drops,
            self.dns_records,
            self.dns_connections,
            self.dns_malformed_streams,
            self.dns_queue_drops,
        )
    }
}

/// Counters of the snapshot persistence subsystem (all zero when no
/// `snapshot_path` is configured).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotStats {
    /// Snapshots successfully written since start (periodic + shutdown).
    pub snapshots_written: u64,
    /// File size in bytes of the most recent successful snapshot.
    pub last_bytes: u64,
    /// Store entries serialized into the most recent successful snapshot.
    pub last_entries: u64,
    /// Wall-clock seconds since the most recent successful write
    /// (`None` until the first write succeeds). A periodic reporter can
    /// alert when this grows well past the configured
    /// `snapshot_interval`.
    pub last_write_age_secs: Option<f64>,
    /// Entries restored from a snapshot at warm start (0 = cold start).
    pub warm_start_entries: u64,
    /// The most recent snapshot write or warm-start load failure, if
    /// any. A corrupt or torn snapshot shows up here (the daemon starts
    /// cold rather than dying).
    pub last_error: Option<String>,
}

impl SnapshotStats {
    /// Did this pipeline warm-start from a snapshot?
    pub fn warm_started(&self) -> bool {
        self.warm_start_entries > 0
    }

    /// Short stats fragment for periodic reporting, e.g.
    /// `3 written, last 15083 B / 120 entries, age 12s`.
    pub fn summary_line(&self) -> String {
        let age = match self.last_write_age_secs {
            Some(age) => format!("{age:.0}s"),
            None => "never".to_string(),
        };
        format!(
            "{} written, last {} B / {} entries, age {age}",
            self.snapshots_written, self.last_bytes, self.last_entries
        )
    }
}

/// Aggregated metrics of a pipeline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineMetrics {
    /// FillUp-side statistics.
    pub fillup: FillUpStats,
    /// LookUp-side statistics.
    pub lookup: LookUpStats,
    /// Write-side statistics.
    pub write: WriteStats,
    /// DNS records dropped because the FillUp queue overflowed.
    pub dns_dropped: u64,
    /// Flow records dropped because the LookUp queue overflowed.
    pub flows_dropped: u64,
    /// Correlated records dropped because the Write queue overflowed.
    pub writes_dropped: u64,
    /// Sampled enqueue→dequeue residency of the FillUp queue (empty when
    /// sampling never resolved a record, e.g. an idle run).
    pub fillup_queue_latency: LatencySnapshot,
    /// Sampled enqueue→dequeue residency of the LookUp queue — the
    /// "p99 ingress-queue latency" of the saturation harness.
    pub lookup_queue_latency: LatencySnapshot,
    /// Total abstract work units spent (offline simulator only).
    pub work_units: f64,
    /// Peak memory estimate observed.
    pub peak_memory: MemoryEstimate,
    /// Network-ingest counters (all zero for offline runs).
    pub ingest: IngestSummary,
    /// Snapshot persistence counters (all zero without a
    /// `snapshot_path`).
    pub snapshot: SnapshotStats,
}

impl PipelineMetrics {
    /// Fraction of offered DNS records that were lost, in percent.
    pub fn dns_loss_pct(&self) -> f64 {
        loss_pct(self.dns_dropped, self.fillup.total())
    }

    /// Fraction of offered flow records that were lost, in percent.
    pub fn flow_loss_pct(&self) -> f64 {
        loss_pct(self.flows_dropped, self.lookup.total())
    }
}

fn loss_pct(dropped: u64, processed: u64) -> f64 {
    let offered = dropped + processed;
    if offered == 0 {
        0.0
    } else {
        dropped as f64 / offered as f64 * 100.0
    }
}

/// The final report of a correlator run: what `Correlator::finish` and the
/// offline simulator return.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Byte-volume accounting; `volumes.correlation_rate_pct()` is the
    /// paper's headline metric.
    pub volumes: VolumeAccumulator,
    /// Detailed pipeline metrics.
    pub metrics: PipelineMetrics,
}

impl Report {
    /// The correlation rate in percent.
    pub fn correlation_rate_pct(&self) -> f64 {
        self.volumes.correlation_rate_pct()
    }

    /// Render a short human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "correlated {:.1}% of {} total bytes; dns_loss={:.2}% flow_loss={:.2}%; \
             {} dns records stored, {} flows looked up, {} records written",
            self.correlation_rate_pct(),
            self.volumes.total,
            self.metrics.dns_loss_pct(),
            self.metrics.flow_loss_pct(),
            self.metrics.fillup.addresses_stored + self.metrics.fillup.cnames_stored,
            self.metrics.lookup.total(),
            self.metrics.write.records_written,
        );
        if self.metrics.ingest.is_live() {
            s.push('\n');
            s.push_str(&self.metrics.ingest.summary_line());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_pct_scales_with_work_and_time() {
        let m = CostModel::default();
        let one_core = m.core_units_per_sec;
        assert!((m.cpu_pct(one_core, 1.0) - 100.0).abs() < 1e-9);
        assert!((m.cpu_pct(one_core * 25.0, 1.0) - 2500.0).abs() < 1e-6);
        assert!((m.cpu_pct(one_core, 2.0) - 50.0).abs() < 1e-9);
        assert_eq!(m.cpu_pct(100.0, 0.0), 0.0);
    }

    #[test]
    fn loss_percentages() {
        let mut m = PipelineMetrics::default();
        assert_eq!(m.dns_loss_pct(), 0.0);
        m.fillup.addresses_stored = 90;
        m.dns_dropped = 10;
        assert!((m.dns_loss_pct() - 10.0).abs() < 1e-9);
        m.lookup.ip_hits = 50;
        m.lookup.ip_misses = 25;
        m.flows_dropped = 25;
        assert!((m.flow_loss_pct() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn report_summary_mentions_key_numbers() {
        let mut r = Report::default();
        r.volumes.record(1000, true);
        r.volumes.record(1000, false);
        r.metrics.write.records_written = 2;
        let s = r.summary();
        assert!(s.contains("50.0%"));
        assert!(s.contains("2 records written"));
        // Offline runs carry no ingest line.
        assert!(!s.contains("netflow:"));
    }

    #[test]
    fn live_reports_append_the_ingest_line() {
        let mut r = Report::default();
        r.metrics.ingest.netflow_datagrams = 12;
        r.metrics.ingest.netflow_flows = 30;
        r.metrics.ingest.dns_records = 7;
        r.metrics.ingest.per_exporter.push(ExporterStats {
            exporter: "127.0.0.1:5000".into(),
            datagrams: 12,
            flows: 30,
            malformed: 0,
            unknown_template_drops: 1,
        });
        assert!(r.metrics.ingest.is_live());
        let s = r.summary();
        assert!(s.contains("netflow: 12 datagrams from 1 exporters -> 30 flows"));
        assert!(s.contains("dns feed: 7 records"));
    }

    #[test]
    fn default_ingest_summary_is_offline() {
        assert!(!IngestSummary::default().is_live());
    }
}
