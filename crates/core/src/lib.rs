//! # flowdns-core
//!
//! The FlowDNS correlator: the paper's primary contribution.
//!
//! FlowDNS joins two live streams — DNS responses collected at the ISP's
//! resolvers and NetFlow records collected at its ingress routers — so
//! that each flow can be attributed to the domain name (and hence the
//! service) that caused it. The architecture (Figure 1 of the paper):
//!
//! ```text
//!  DNS streams ──► FillUp queue ──► FillUp workers ──► shared DNS store
//!                                                       (IP-NAME splits,
//!                                                        NAME-CNAME,
//!                                                        Active/Inactive/Long)
//!  NetFlow streams ──► LookUp queue ──► LookUp workers ──► Write queues ──► Write workers ──► output
//!                                        (BGP origin-AS    (flow-key hash    (one owned sink
//!                                         stamping)          sharding)         per worker)
//! ```
//!
//! Modules:
//!
//! * [`config`] — [`CorrelatorConfig`] with the Table 1 parameters and the
//!   ablation [`Variant`]s, plus a small key=value config-file parser,
//! * [`store`] — [`DnsStore`], the shared storage combining the split
//!   IP-NAME stores and the NAME-CNAME store,
//! * [`fillup`] — Algorithm 1 (DNS read and fill-up),
//! * [`lookup`] — Algorithm 2 (NetFlow read and look-up with CNAME chain
//!   following),
//! * [`write`](mod@write) — the output sinks each Write worker owns
//!   (single file, paper-style rotating window files, fan-out, memory),
//! * [`metrics`] — correlation-rate, loss, work-unit (CPU) and memory
//!   accounting,
//! * [`pipeline`] — [`Correlator`], the threaded live pipeline,
//! * [`simulate`] — the deterministic offline simulator used by the
//!   experiment harness to regenerate the paper's figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fillup;
pub mod lookup;
pub mod metrics;
pub mod pipeline;
pub mod shard;
pub mod simulate;
pub mod store;
pub mod write;

pub use config::{CorrelatorConfig, Variant};
pub use fillup::FillUpStats;
pub use lookup::{LookUpStats, Resolver};
pub use metrics::{
    CostModel, ExporterStats, IngestSummary, PipelineMetrics, Report, SnapshotStats,
};
pub use pipeline::{Correlator, StoreHealth};
pub use shard::{
    shard_of_dns, shard_of_flow, shard_of_ip, shard_of_key, ShardPartition, ShardedStore,
};
pub use simulate::{HourlySample, OfflineSimulator, SimulationOutcome};
pub use store::DnsStore;
pub use write::{
    DiscardSink, MemorySink, MultiSink, OutputSink, RotatingFileSink, TsvFileSink, WriteStats,
};
