//! Write workers and output sinks.
//!
//! The last stage of Figure 1: correlated records are taken off the Write
//! queue and persisted. The paper writes TSV-like output files with "a
//! maximum delay of 45 seconds"; the write stage here tracks that delay
//! (time between a flow's record timestamp and the moment it is written,
//! in wall-clock terms the queue residency) as well as byte-volume
//! accounting used for the correlation rate.

use std::fs::File;
use std::io::{BufWriter, Write as IoWrite};
use std::path::Path;

use parking_lot::Mutex;

use flowdns_types::{CorrelatedRecord, FlowDnsError, VolumeAccumulator};

/// Statistics of the write stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WriteStats {
    /// Records written.
    pub records_written: u64,
    /// Byte-volume accounting (correlated vs. total).
    pub volumes: VolumeAccumulator,
}

/// Anything that can receive correlated output records.
pub trait OutputSink: Send {
    /// Persist one record.
    fn write_record(&mut self, record: &CorrelatedRecord) -> Result<(), FlowDnsError>;
    /// Flush any buffered output.
    fn flush(&mut self) -> Result<(), FlowDnsError> {
        Ok(())
    }
}

/// A sink that keeps records in memory (tests, examples, analyses).
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Vec<CorrelatedRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The records collected so far.
    pub fn records(&self) -> &[CorrelatedRecord] {
        &self.records
    }

    /// Consume the sink, returning the records.
    pub fn into_records(self) -> Vec<CorrelatedRecord> {
        self.records
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the sink empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl OutputSink for MemorySink {
    fn write_record(&mut self, record: &CorrelatedRecord) -> Result<(), FlowDnsError> {
        self.records.push(record.clone());
        Ok(())
    }
}

/// A sink that appends TSV lines to a file (what the paper's deployment
/// does).
#[derive(Debug)]
pub struct TsvFileSink {
    writer: BufWriter<File>,
}

impl TsvFileSink {
    /// Create (truncate) the output file.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, FlowDnsError> {
        let file = File::create(path)?;
        Ok(TsvFileSink {
            writer: BufWriter::new(file),
        })
    }
}

impl OutputSink for TsvFileSink {
    fn write_record(&mut self, record: &CorrelatedRecord) -> Result<(), FlowDnsError> {
        self.writer.write_all(record.to_tsv().as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), FlowDnsError> {
        IoWrite::flush(&mut self.writer)?;
        Ok(())
    }
}

/// A thread-safe writer wrapping any sink, used by the Write workers.
pub struct SharedWriter {
    sink: Mutex<Box<dyn OutputSink>>,
    stats: Mutex<WriteStats>,
}

impl std::fmt::Debug for SharedWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedWriter")
            .field("stats", &self.stats())
            .finish()
    }
}

impl SharedWriter {
    /// Wrap a sink.
    pub fn new(sink: Box<dyn OutputSink>) -> Self {
        SharedWriter {
            sink: Mutex::new(sink),
            stats: Mutex::new(WriteStats::default()),
        }
    }

    /// Write one record, updating volume accounting.
    pub fn write(&self, record: &CorrelatedRecord) -> Result<(), FlowDnsError> {
        self.sink.lock().write_record(record)?;
        let mut stats = self.stats.lock();
        stats.records_written += 1;
        stats
            .volumes
            .record(record.flow.bytes, record.is_correlated());
        Ok(())
    }

    /// Flush the underlying sink.
    pub fn flush(&self) -> Result<(), FlowDnsError> {
        self.sink.lock().flush()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> WriteStats {
        *self.stats.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdns_types::{CorrelationOutcome, DomainName, FlowRecord, SimTime};
    use std::net::Ipv4Addr;

    fn record(bytes: u64, correlated: bool) -> CorrelatedRecord {
        CorrelatedRecord {
            flow: FlowRecord::inbound(
                SimTime::from_secs(1),
                Ipv4Addr::new(203, 0, 113, 1).into(),
                Ipv4Addr::new(10, 0, 0, 1).into(),
                bytes,
            ),
            outcome: if correlated {
                CorrelationOutcome::Name(DomainName::literal("svc.example"))
            } else {
                CorrelationOutcome::NotFound
            },
        }
    }

    #[test]
    fn memory_sink_collects_records() {
        let mut sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.write_record(&record(100, true)).unwrap();
        sink.write_record(&record(50, false)).unwrap();
        assert_eq!(sink.len(), 2);
        assert!(sink.records()[0].is_correlated());
        assert_eq!(sink.into_records().len(), 2);
    }

    #[test]
    fn shared_writer_tracks_volumes() {
        let writer = SharedWriter::new(Box::new(MemorySink::new()));
        writer.write(&record(800, true)).unwrap();
        writer.write(&record(200, false)).unwrap();
        let stats = writer.stats();
        assert_eq!(stats.records_written, 2);
        assert!((stats.volumes.correlation_rate_pct() - 80.0).abs() < 1e-9);
        writer.flush().unwrap();
    }

    #[test]
    fn tsv_file_sink_writes_lines() {
        let dir = std::env::temp_dir().join("flowdns-test-sink");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.tsv");
        {
            let mut sink = TsvFileSink::create(&path).unwrap();
            sink.write_record(&record(123, true)).unwrap();
            sink.write_record(&record(7, false)).unwrap();
            sink.flush().unwrap();
        }
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("svc.example"));
        assert!(lines[1].ends_with("-\t-"));
        std::fs::remove_file(&path).ok();
    }
}
