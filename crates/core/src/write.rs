//! Output sinks for the Write stage.
//!
//! The last stage of Figure 1: correlated records are taken off the Write
//! queues and persisted. The paper writes TSV output files per time
//! interval with "a maximum delay of 45 seconds"; [`RotatingFileSink`]
//! reproduces exactly that — one file per configured window of record
//! time, finished files made visible by an atomic rename.
//!
//! Since the sharded-egress refactor each Write worker **owns** its sink
//! (records are partitioned by flow-key hash), so sinks are plain
//! single-threaded `&mut self` objects and no lock sits on the
//! per-record write path. The old `SharedWriter` (one mutexed sink shared
//! by every worker) is gone; see `pipeline.rs` for the worker loop and
//! `docs/MIGRATION.md` for migration notes.

use std::fs::File;
use std::io::{BufWriter, Write as IoWrite};
use std::path::{Path, PathBuf};

use flowdns_types::{CorrelatedRecord, FlowDnsError, SimDuration, VolumeAccumulator};

/// Statistics of the write stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WriteStats {
    /// Records written.
    pub records_written: u64,
    /// Byte-volume accounting (correlated vs. total).
    pub volumes: VolumeAccumulator,
}

impl WriteStats {
    /// Merge another stats block into this one (thread-local flush).
    pub fn merge(&mut self, other: &WriteStats) {
        self.records_written += other.records_written;
        self.volumes.merge(&other.volumes);
    }
}

/// Anything that can receive correlated output records.
pub trait OutputSink: Send {
    /// Persist one record.
    fn write_record(&mut self, record: &CorrelatedRecord) -> Result<(), FlowDnsError>;
    /// Flush any buffered output.
    fn flush(&mut self) -> Result<(), FlowDnsError> {
        Ok(())
    }
    /// Finish the sink at end of run: flush buffers and complete any
    /// pending file work (e.g. the rotation rename). Write workers call
    /// this before dropping the sink so failures surface through
    /// `Correlator::finish()`; the `Drop` impls only remain as a
    /// best-effort backstop for abnormal exits.
    fn finalize(&mut self) -> Result<(), FlowDnsError> {
        self.flush()
    }
}

/// Wrap one sink as a write-stage sink factory.
///
/// A single sink can only be owned by a single Write worker, so this
/// errors unless `write_workers == 1` — the shared guard behind
/// `Correlator::start_with_sink` and `IngestRuntime::start_with_sink`.
pub fn single_sink_factory(
    write_workers: usize,
    sink: Box<dyn OutputSink>,
) -> Result<impl FnMut(usize) -> Result<Box<dyn OutputSink>, FlowDnsError>, FlowDnsError> {
    if write_workers != 1 {
        return Err(FlowDnsError::Config(
            "a single output sink requires write_workers = 1; \
             use a sink factory for sharded egress"
                .into(),
        ));
    }
    let mut sink = Some(sink);
    Ok(move |_| {
        sink.take().ok_or_else(|| {
            FlowDnsError::Config("single sink factory invoked more than once".into())
        })
    })
}

/// A sink that keeps records in memory (tests, examples, analyses).
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Vec<CorrelatedRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The records collected so far.
    pub fn records(&self) -> &[CorrelatedRecord] {
        &self.records
    }

    /// Consume the sink, returning the records.
    pub fn into_records(self) -> Vec<CorrelatedRecord> {
        self.records
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the sink empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl OutputSink for MemorySink {
    fn write_record(&mut self, record: &CorrelatedRecord) -> Result<(), FlowDnsError> {
        self.records.push(record.clone());
        Ok(())
    }
}

/// A sink that discards records after the Write stage has done its
/// volume accounting — the daemon default when no `output` is
/// configured.
#[derive(Debug, Default)]
pub struct DiscardSink;

impl OutputSink for DiscardSink {
    fn write_record(&mut self, _record: &CorrelatedRecord) -> Result<(), FlowDnsError> {
        Ok(())
    }
}

/// A sink that appends TSV lines to a single file.
#[derive(Debug)]
pub struct TsvFileSink {
    writer: BufWriter<File>,
}

impl TsvFileSink {
    /// Create (truncate) the output file.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, FlowDnsError> {
        let file = File::create(path)?;
        Ok(TsvFileSink {
            writer: BufWriter::new(file),
        })
    }
}

impl OutputSink for TsvFileSink {
    fn write_record(&mut self, record: &CorrelatedRecord) -> Result<(), FlowDnsError> {
        self.writer.write_all(record.to_tsv().as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), FlowDnsError> {
        IoWrite::flush(&mut self.writer)?;
        Ok(())
    }
}

impl Drop for TsvFileSink {
    /// Buffered lines must survive a drop without an explicit `flush()`
    /// — a worker that exits via an error path still persists its tail.
    fn drop(&mut self) {
        let _ = IoWrite::flush(&mut self.writer);
    }
}

/// The currently open window file of a [`RotatingFileSink`].
#[derive(Debug)]
struct ActiveWindow {
    window_start: u64,
    part_path: PathBuf,
    final_path: PathBuf,
    writer: BufWriter<File>,
}

/// A sink writing one TSV file per window of *record time* — the
/// paper-style per-interval output files.
///
/// Records land in the file whose window covers their flow timestamp's
/// window start; when a record from a later window arrives, the current
/// file is flushed and atomically renamed from its `.part` name to its
/// final name (so downstream consumers only ever see finished files),
/// and a new window file is opened. Records that arrive *late* (their
/// window already rotated away) stay in the currently open file — the
/// bounded-delay semantics of the paper's deployment rather than
/// unbounded reordering.
///
/// Dropping the sink finalizes the open window, so an end-of-run file is
/// never lost.
#[derive(Debug)]
pub struct RotatingFileSink {
    dir: PathBuf,
    prefix: String,
    shard_tag: String,
    window_secs: u64,
    current: Option<ActiveWindow>,
    completed: Vec<PathBuf>,
}

impl RotatingFileSink {
    /// A sink writing `{prefix}-{window_start:010}.tsv` files under
    /// `dir` (created if missing), rotating every `window`.
    pub fn new<P: AsRef<Path>>(
        dir: P,
        prefix: &str,
        window: SimDuration,
    ) -> Result<Self, FlowDnsError> {
        if window == SimDuration::ZERO {
            return Err(FlowDnsError::Config(
                "rotation window must be positive".into(),
            ));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(RotatingFileSink {
            dir,
            prefix: prefix.to_string(),
            shard_tag: String::new(),
            window_secs: window.as_secs(),
            current: None,
            completed: Vec::new(),
        })
    }

    /// Tag this sink's files with a write-worker shard id
    /// (`{prefix}-{window}-w{shard}.tsv`), so the shards of one
    /// deployment never collide in the shared output directory.
    pub fn with_shard(mut self, shard: usize) -> Self {
        self.shard_tag = format!("-w{shard}");
        self
    }

    /// Window files completed (rotated and renamed) so far.
    pub fn completed_files(&self) -> &[PathBuf] {
        &self.completed
    }

    /// The path the currently open window will get once finished.
    pub fn active_file(&self) -> Option<&Path> {
        self.current.as_ref().map(|w| w.final_path.as_path())
    }

    fn open_window(&mut self, window_start: u64) -> Result<(), FlowDnsError> {
        let name = format!("{}-{:010}{}.tsv", self.prefix, window_start, self.shard_tag);
        let final_path = self.dir.join(&name);
        let part_path = self.dir.join(format!("{name}.part"));
        let writer = BufWriter::new(File::create(&part_path)?);
        self.current = Some(ActiveWindow {
            window_start,
            part_path,
            final_path,
            writer,
        });
        Ok(())
    }

    fn close_window(&mut self) -> Result<(), FlowDnsError> {
        if let Some(mut window) = self.current.take() {
            IoWrite::flush(&mut window.writer)?;
            drop(window.writer);
            std::fs::rename(&window.part_path, &window.final_path)?;
            self.completed.push(window.final_path);
        }
        Ok(())
    }
}

impl OutputSink for RotatingFileSink {
    fn write_record(&mut self, record: &CorrelatedRecord) -> Result<(), FlowDnsError> {
        let window_start = record.flow.ts.as_secs() / self.window_secs * self.window_secs;
        match &self.current {
            Some(open) if window_start <= open.window_start => {}
            Some(_) => {
                self.close_window()?;
                self.open_window(window_start)?;
            }
            None => self.open_window(window_start)?,
        }
        // The match above just ensured a window is open; surface an
        // error instead of panicking the write worker if that ever
        // stops holding.
        let Some(open) = self.current.as_mut() else {
            return Err(FlowDnsError::Io("rotating sink has no open window".into()));
        };
        open.writer.write_all(record.to_tsv().as_bytes())?;
        open.writer.write_all(b"\n")?;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), FlowDnsError> {
        if let Some(open) = self.current.as_mut() {
            IoWrite::flush(&mut open.writer)?;
        }
        Ok(())
    }

    /// Flush and finish the open window file under its final name.
    fn finalize(&mut self) -> Result<(), FlowDnsError> {
        self.close_window()
    }
}

impl Drop for RotatingFileSink {
    fn drop(&mut self) {
        let _ = self.close_window();
    }
}

/// A fan-out sink: every record goes to every inner sink (tests and
/// analyses that want a file *and* an in-memory copy, for instance).
#[derive(Default)]
pub struct MultiSink {
    sinks: Vec<Box<dyn OutputSink>>,
}

impl std::fmt::Debug for MultiSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl MultiSink {
    /// An empty fan-out.
    pub fn new() -> Self {
        MultiSink::default()
    }

    /// Add a sink to the fan-out.
    pub fn push(mut self, sink: Box<dyn OutputSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Number of fan-out targets.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Is the fan-out empty?
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl OutputSink for MultiSink {
    fn write_record(&mut self, record: &CorrelatedRecord) -> Result<(), FlowDnsError> {
        for sink in &mut self.sinks {
            sink.write_record(record)?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), FlowDnsError> {
        for sink in &mut self.sinks {
            sink.flush()?;
        }
        Ok(())
    }

    fn finalize(&mut self) -> Result<(), FlowDnsError> {
        for sink in &mut self.sinks {
            sink.finalize()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdns_types::{CorrelationOutcome, DomainName, FlowRecord, SimTime};
    use std::net::Ipv4Addr;

    fn record(bytes: u64, correlated: bool) -> CorrelatedRecord {
        record_at(1, bytes, correlated)
    }

    fn record_at(ts: u64, bytes: u64, correlated: bool) -> CorrelatedRecord {
        CorrelatedRecord::new(
            FlowRecord::inbound(
                SimTime::from_secs(ts),
                Ipv4Addr::new(203, 0, 113, 1).into(),
                Ipv4Addr::new(10, 0, 0, 1).into(),
                bytes,
            ),
            if correlated {
                CorrelationOutcome::Name(DomainName::literal("svc.example"))
            } else {
                CorrelationOutcome::NotFound
            },
        )
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn memory_sink_collects_records() {
        let mut sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.write_record(&record(100, true)).unwrap();
        sink.write_record(&record(50, false)).unwrap();
        assert_eq!(sink.len(), 2);
        assert!(sink.records()[0].is_correlated());
        assert_eq!(sink.into_records().len(), 2);
    }

    #[test]
    fn write_stats_merge_accumulates() {
        let mut a = WriteStats {
            records_written: 1,
            ..Default::default()
        };
        a.volumes.record(800, true);
        let mut b = WriteStats {
            records_written: 1,
            ..Default::default()
        };
        b.volumes.record(200, false);
        a.merge(&b);
        assert_eq!(a.records_written, 2);
        assert!((a.volumes.correlation_rate_pct() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn tsv_file_sink_writes_lines() {
        let dir = temp_dir("flowdns-test-sink");
        let path = dir.join("out.tsv");
        {
            let mut sink = TsvFileSink::create(&path).unwrap();
            sink.write_record(&record(123, true)).unwrap();
            sink.write_record(&record(7, false)).unwrap();
            sink.flush().unwrap();
        }
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("svc.example"));
        assert!(lines[1].ends_with("-\t-"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tsv_file_sink_flushes_on_drop() {
        let dir = temp_dir("flowdns-test-sink-drop");
        let path = dir.join("dropped.tsv");
        {
            let mut sink = TsvFileSink::create(&path).unwrap();
            sink.write_record(&record(999, true)).unwrap();
            // No explicit flush: the Drop impl must persist the line.
        }
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotating_sink_cuts_files_on_window_boundaries() {
        let dir = temp_dir("flowdns-test-rotate");
        {
            let mut sink = RotatingFileSink::new(&dir, "corr", SimDuration::from_secs(60)).unwrap();
            sink.write_record(&record_at(10, 100, true)).unwrap();
            sink.write_record(&record_at(59, 100, true)).unwrap();
            assert_eq!(sink.completed_files().len(), 0);
            assert!(sink.active_file().unwrap().ends_with("corr-0000000000.tsv"));
            // Crossing into the next window rotates.
            sink.write_record(&record_at(61, 100, false)).unwrap();
            assert_eq!(sink.completed_files().len(), 1);
            // A late record stays in the open window (bounded delay).
            sink.write_record(&record_at(40, 100, true)).unwrap();
            sink.write_record(&record_at(125, 100, true)).unwrap();
            assert_eq!(sink.completed_files().len(), 2);
            sink.finalize().unwrap();
        }
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "corr-0000000000.tsv",
                "corr-0000000060.tsv",
                "corr-0000000120.tsv"
            ]
        );
        // No `.part` leftovers, and the late record is in the 60s file.
        let middle = std::fs::read_to_string(dir.join("corr-0000000060.tsv")).unwrap();
        assert_eq!(middle.lines().count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotating_sink_finalizes_on_drop_and_tags_shards() {
        let dir = temp_dir("flowdns-test-rotate-drop");
        {
            let mut sink = RotatingFileSink::new(&dir, "corr", SimDuration::from_secs(30))
                .unwrap()
                .with_shard(3);
            sink.write_record(&record_at(5, 100, true)).unwrap();
            // Dropped without finalize(): the window must still appear.
        }
        let content = std::fs::read_to_string(dir.join("corr-0000000000-w3.tsv")).unwrap();
        assert_eq!(content.lines().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotating_sink_rejects_zero_window() {
        let dir = std::env::temp_dir().join("flowdns-test-rotate-zero");
        assert!(RotatingFileSink::new(&dir, "x", SimDuration::ZERO).is_err());
    }

    #[test]
    fn multi_sink_fans_out() {
        let dir = temp_dir("flowdns-test-multi");
        let path = dir.join("copy.tsv");
        let mut multi = MultiSink::new()
            .push(Box::new(MemorySink::new()))
            .push(Box::new(TsvFileSink::create(&path).unwrap()));
        assert_eq!(multi.len(), 2);
        assert!(!multi.is_empty());
        multi.write_record(&record(42, true)).unwrap();
        multi.flush().unwrap();
        drop(multi);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
