//! LookUp processing (Algorithm 2): flow records → correlation outcomes.
//!
//! Each LookUp worker takes a flow record, looks its source IP up in the
//! IP-NAME store (Active → Inactive → Long), and if a name is found,
//! follows the CNAME chain in the NAME-CNAME store up to the loop limit
//! (6 by default). Multi-hop resolutions are memoized back into the
//! active NAME-CNAME map.
//!
//! The whole resolution runs on typed keys: the source IP is looked up
//! as a compact [`flowdns_types::IpKey`] (no textual formatting per
//! flow) and the chain is chased on interned [`NameRef`] handles, so a
//! hit allocates only the chain `Vec` — every name in it is a shared
//! reference-count bump.
//!
//! When a routing table is loaded, the resolver additionally stamps both
//! flow endpoints with their BGP origin AS via an [`AsnReader`] — a
//! lock-free longest-prefix-match over the frozen table — so the paper's
//! Network Provisioning join (Figure 4) happens in the hot path instead
//! of in a separate offline pass.

use std::net::IpAddr;

use flowdns_bgp::AsnReader;
use flowdns_types::{CorrelatedRecord, CorrelationOutcome, DomainName, FlowRecord, NameRef};

use crate::config::CorrelatorConfig;
use crate::store::DnsStore;

/// Statistics of LookUp processing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookUpStats {
    /// Flows whose source IP was found in the IP-NAME store.
    pub ip_hits: u64,
    /// Flows whose source IP was not found.
    pub ip_misses: u64,
    /// Total CNAME chain hops followed.
    pub cname_hops: u64,
    /// Chains cut short by the loop limit.
    pub loop_limit_hits: u64,
    /// Multi-hop resolutions memoized back into the active map.
    pub memoized: u64,
    /// Flows dropped by the validity filter.
    pub filtered: u64,
    /// Flows whose source address was attributed to an origin AS.
    pub asn_stamped: u64,
}

impl LookUpStats {
    /// Total flows examined.
    pub fn total(&self) -> u64 {
        self.ip_hits + self.ip_misses + self.filtered
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &LookUpStats) {
        self.ip_hits += other.ip_hits;
        self.ip_misses += other.ip_misses;
        self.cname_hops += other.cname_hops;
        self.loop_limit_hits += other.loop_limit_hits;
        self.memoized += other.memoized;
        self.filtered += other.filtered;
        self.asn_stamped += other.asn_stamped;
    }
}

/// The lookup side of the correlator: wraps the store with the chain
/// following logic, the loop limit, and (optionally) the BGP origin-AS
/// attribution reader.
#[derive(Debug)]
pub struct Resolver<'a> {
    store: &'a DnsStore,
    loop_limit: usize,
    asn: Option<AsnReader>,
}

impl<'a> Resolver<'a> {
    /// A resolver over `store` using the loop limit from `config`, with
    /// no AS attribution.
    pub fn new(store: &'a DnsStore, config: &CorrelatorConfig) -> Self {
        Resolver {
            store,
            loop_limit: config.cname_loop_limit,
            asn: None,
        }
    }

    /// Attach an [`AsnReader`]: every processed flow gets `src_asn` and
    /// `dst_asn` stamped from the reader's current snapshot.
    pub fn with_asn_reader(mut self, reader: AsnReader) -> Self {
        self.asn = Some(reader);
        self
    }

    /// Does this resolver stamp origin-AS attribution?
    pub fn stamps_asns(&self) -> bool {
        self.asn.is_some()
    }

    /// The configured CNAME loop limit.
    pub fn loop_limit(&self) -> usize {
        self.loop_limit
    }

    /// Origin-AS attribution for both flow endpoints (`(None, None)`
    /// when no routing table is attached).
    fn stamp_asns(
        &mut self,
        flow: &FlowRecord,
        stats: &mut LookUpStats,
    ) -> (Option<u32>, Option<u32>) {
        match &mut self.asn {
            Some(reader) => {
                let src = reader.origin_as(flow.key.src_ip);
                let dst = reader.origin_as(flow.key.dst_ip);
                if src.is_some() {
                    stats.asn_stamped += 1;
                }
                (src, dst)
            }
            None => (None, None),
        }
    }

    /// Process one flow record (the body of the LookUp worker loop).
    ///
    /// Invalid flow records are counted and returned with a `NotFound`
    /// outcome so the Write stage still accounts their bytes as
    /// uncorrelated traffic. `&mut self` because the attribution reader
    /// caches the routing-table snapshot it serves from.
    pub fn process_flow(&mut self, flow: FlowRecord, stats: &mut LookUpStats) -> CorrelatedRecord {
        let (src_asn, dst_asn) = self.stamp_asns(&flow, stats);
        if !flow.is_valid() {
            stats.filtered += 1;
            return CorrelatedRecord::new(flow, CorrelationOutcome::NotFound)
                .with_asns(src_asn, dst_asn);
        }
        // Flow timestamps also advance the clear-up clock, so long DNS-quiet
        // periods cannot stall rotation.
        self.store.observe_time(flow.ts);
        let outcome = self.resolve(flow.key.src_ip, flow.ts, stats);
        CorrelatedRecord::new(flow, outcome).with_asns(src_asn, dst_asn)
    }

    /// Resolve a source IP to a name chain (Algorithm 2 without the flow
    /// wrapper). Public so analyses can resolve arbitrary IPs.
    pub fn resolve(
        &self,
        src_ip: IpAddr,
        now: flowdns_types::SimTime,
        stats: &mut LookUpStats,
    ) -> CorrelationOutcome {
        let Some((first_name, _)) = self.store.lookup_ip(src_ip, now) else {
            stats.ip_misses += 1;
            return CorrelationOutcome::NotFound;
        };
        follow_chain(
            first_name,
            self.loop_limit,
            |name| self.store.lookup_cname(name, now).map(|(next, _)| next),
            |first, last| self.store.memoize_cname(first, last),
            stats,
        )
    }
}

/// The CNAME-chain half of Algorithm 2, shared between the classic
/// [`Resolver`] and the sharded correlator's per-partition resolve: walk
/// from the name an IP mapped to back towards the customer-facing name,
/// bounded by the loop limit, memoizing multi-hop shortcuts. The caller
/// has already looked the IP up (and counted the hit/miss); `lookup` and
/// `memoize` close over whichever NAME-CNAME store the caller uses.
pub(crate) fn follow_chain(
    first_name: NameRef,
    loop_limit: usize,
    lookup: impl Fn(&NameRef) -> Option<NameRef>,
    memoize: impl FnOnce(&NameRef, &NameRef),
    stats: &mut LookUpStats,
) -> CorrelationOutcome {
    stats.ip_hits += 1;

    let mut chain: Vec<NameRef> = Vec::with_capacity(2);
    chain.push(first_name.clone());
    let mut current = first_name;

    let mut hops = 0usize;
    loop {
        if hops >= loop_limit {
            stats.loop_limit_hits += 1;
            break;
        }
        match lookup(&current) {
            Some(next) => {
                hops += 1;
                stats.cname_hops += 1;
                // A self-referencing CNAME would loop forever; treat it
                // as the end of the chain. Handles from one interner
                // compare by pointer first, so this scan is cheap.
                if next == current || chain.contains(&next) {
                    break;
                }
                chain.push(next.clone());
                current = next;
            }
            None => break,
        }
    }

    if chain.len() > 2 {
        // Multi-hop resolution: memoize the shortcut from the first
        // name straight to the final alias for later flows.
        if let (Some(first), Some(last)) = (chain.first(), chain.last()) {
            memoize(first, last);
            stats.memoized += 1;
        }
    }

    if chain.len() == 1 {
        // len == 1 makes pop() infallible, but stay panic-free.
        let Some(only) = chain.pop() else {
            return CorrelationOutcome::NotFound;
        };
        CorrelationOutcome::Name(only.into())
    } else {
        // Each conversion rewraps the shared allocation; the store
        // only ever hands out handles to normalized names.
        CorrelationOutcome::Chain(chain.into_iter().map(DomainName::from).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CorrelatorConfig, Variant};
    use crate::fillup::{process_dns_record, FillUpStats};
    use crate::store::DnsStore;
    use flowdns_types::{DnsRecord, SimTime};
    use std::net::Ipv4Addr;

    fn populated_store() -> (DnsStore, CorrelatorConfig) {
        let config = CorrelatorConfig::default();
        let store = DnsStore::new(&config);
        let mut stats = FillUpStats::default();
        let ts = SimTime::from_secs(10);
        // A chain: www.shop.example -> shop.cdn.example.net -> edge7.cdn.example.net -> 198.51.100.7
        let records = vec![
            DnsRecord::cname(
                ts,
                DomainName::literal("www.shop.example"),
                DomainName::literal("shop.cdn.example.net"),
                600,
            ),
            DnsRecord::cname(
                ts,
                DomainName::literal("shop.cdn.example.net"),
                DomainName::literal("edge7.cdn.example.net"),
                600,
            ),
            DnsRecord::address(
                ts,
                DomainName::literal("edge7.cdn.example.net"),
                Ipv4Addr::new(198, 51, 100, 7).into(),
                60,
            ),
            // A direct A record with no CNAME involvement.
            DnsRecord::address(
                ts,
                DomainName::literal("direct.example.org"),
                Ipv4Addr::new(203, 0, 113, 50).into(),
                300,
            ),
        ];
        for r in &records {
            process_dns_record(&store, r, &mut stats);
        }
        (store, config)
    }

    fn flow(src: [u8; 4]) -> FlowRecord {
        FlowRecord::inbound(
            SimTime::from_secs(20),
            Ipv4Addr::from(src).into(),
            Ipv4Addr::new(10, 0, 0, 1).into(),
            10_000,
        )
    }

    #[test]
    fn direct_a_record_resolves_to_single_name() {
        let (store, config) = populated_store();
        let mut resolver = Resolver::new(&store, &config);
        let mut stats = LookUpStats::default();
        let rec = resolver.process_flow(flow([203, 0, 113, 50]), &mut stats);
        assert_eq!(
            rec.outcome,
            CorrelationOutcome::Name(DomainName::literal("direct.example.org"))
        );
        assert_eq!(stats.ip_hits, 1);
        assert_eq!(stats.cname_hops, 0);
    }

    #[test]
    fn cname_chain_is_followed_to_customer_facing_name() {
        let (store, config) = populated_store();
        let mut resolver = Resolver::new(&store, &config);
        let mut stats = LookUpStats::default();
        let rec = resolver.process_flow(flow([198, 51, 100, 7]), &mut stats);
        let names: Vec<&str> = rec.outcome.names().iter().map(|n| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "edge7.cdn.example.net",
                "shop.cdn.example.net",
                "www.shop.example"
            ]
        );
        assert_eq!(
            rec.outcome.final_name().unwrap().as_str(),
            "www.shop.example"
        );
        assert_eq!(stats.cname_hops, 2);
        assert_eq!(stats.memoized, 1);
        // The memoized shortcut now answers in a single hop.
        let mut stats2 = LookUpStats::default();
        let rec2 = resolver.process_flow(flow([198, 51, 100, 7]), &mut stats2);
        assert_eq!(
            rec2.outcome.final_name().unwrap().as_str(),
            "www.shop.example"
        );
        assert_eq!(stats2.cname_hops, 1);
    }

    #[test]
    fn unknown_ip_is_not_found() {
        let (store, config) = populated_store();
        let mut resolver = Resolver::new(&store, &config);
        let mut stats = LookUpStats::default();
        let rec = resolver.process_flow(flow([192, 0, 2, 99]), &mut stats);
        assert_eq!(rec.outcome, CorrelationOutcome::NotFound);
        assert!(!rec.is_correlated());
        assert_eq!(stats.ip_misses, 1);
    }

    #[test]
    fn invalid_flow_is_filtered_but_reported() {
        let (store, config) = populated_store();
        let mut resolver = Resolver::new(&store, &config);
        let mut stats = LookUpStats::default();
        let mut f = flow([198, 51, 100, 7]);
        f.bytes = 0;
        let rec = resolver.process_flow(f, &mut stats);
        assert_eq!(rec.outcome, CorrelationOutcome::NotFound);
        assert_eq!(stats.filtered, 1);
        assert_eq!(stats.ip_hits, 0);
    }

    #[test]
    fn loop_limit_cuts_long_chains() {
        let config = CorrelatorConfig::default();
        let store = DnsStore::new(&config);
        let mut fstats = FillUpStats::default();
        let ts = SimTime::from_secs(1);
        // Build a 10-hop chain: n0 <- n1 <- ... <- n10 and an A record for n0.
        for i in 0..10 {
            process_dns_record(
                &store,
                &DnsRecord::cname(
                    ts,
                    DomainName::literal(&format!("n{}.example", i + 1)),
                    DomainName::literal(&format!("n{i}.example")),
                    600,
                ),
                &mut fstats,
            );
        }
        process_dns_record(
            &store,
            &DnsRecord::address(
                ts,
                DomainName::literal("n0.example"),
                Ipv4Addr::new(198, 51, 100, 77).into(),
                60,
            ),
            &mut fstats,
        );
        let mut resolver = Resolver::new(&store, &config);
        let mut stats = LookUpStats::default();
        let rec = resolver.process_flow(flow([198, 51, 100, 77]), &mut stats);
        // 1 name from the A record + at most loop_limit CNAME hops.
        assert_eq!(rec.outcome.names().len(), 1 + config.cname_loop_limit);
        assert_eq!(stats.loop_limit_hits, 1);
        assert_eq!(resolver.loop_limit(), 6);
    }

    #[test]
    fn self_referential_cname_terminates() {
        let config = CorrelatorConfig::default();
        let store = DnsStore::new(&config);
        let mut fstats = FillUpStats::default();
        let ts = SimTime::from_secs(1);
        process_dns_record(
            &store,
            &DnsRecord::cname(
                ts,
                DomainName::literal("loop.example"),
                DomainName::literal("loop.example"),
                600,
            ),
            &mut fstats,
        );
        process_dns_record(
            &store,
            &DnsRecord::address(
                ts,
                DomainName::literal("loop.example"),
                Ipv4Addr::new(198, 51, 100, 80).into(),
                60,
            ),
            &mut fstats,
        );
        let mut resolver = Resolver::new(&store, &config);
        let mut stats = LookUpStats::default();
        let rec = resolver.process_flow(flow([198, 51, 100, 80]), &mut stats);
        assert!(rec.is_correlated());
        assert!(rec.outcome.names().len() <= 2);
    }

    #[test]
    fn resolver_stamps_both_endpoints_from_the_frozen_table() {
        use flowdns_bgp::{Announcement, AsnView, RoutingTable};
        let (store, config) = populated_store();
        let mut table = RoutingTable::new();
        for (p, asn) in [("203.0.113.0/24", 64500u32), ("10.0.0.0/8", 64501)] {
            table.announce(Announcement {
                prefix: p.parse().unwrap(),
                origin_as: asn,
            });
        }
        let view = AsnView::new(table.freeze());
        let mut resolver = Resolver::new(&store, &config).with_asn_reader(view.reader());
        assert!(resolver.stamps_asns());
        let mut stats = LookUpStats::default();
        // src 203.0.113.50 → AS64500; dst 10.0.0.1 → AS64501.
        let rec = resolver.process_flow(flow([203, 0, 113, 50]), &mut stats);
        assert_eq!(rec.src_asn, Some(64500));
        assert_eq!(rec.dst_asn, Some(64501));
        assert!(rec.is_correlated());
        // Unannounced source: no src stamp, dst still covered.
        let rec = resolver.process_flow(flow([198, 51, 100, 7]), &mut stats);
        assert_eq!(rec.src_asn, None);
        assert_eq!(rec.dst_asn, Some(64501));
        assert_eq!(stats.asn_stamped, 1);
        // Invalid flows are stamped too (they are still written).
        let mut bad = flow([203, 0, 113, 50]);
        bad.bytes = 0;
        let rec = resolver.process_flow(bad, &mut stats);
        assert_eq!(rec.src_asn, Some(64500));
        assert_eq!(stats.asn_stamped, 2);
        // Without a reader nothing is stamped.
        let mut plain = Resolver::new(&store, &config);
        assert!(!plain.stamps_asns());
        let rec = plain.process_flow(flow([203, 0, 113, 50]), &mut stats);
        assert_eq!(rec.src_asn, None);
        assert_eq!(rec.dst_asn, None);
    }

    #[test]
    fn overwrite_accuracy_caveat_is_observable() {
        // Two services sharing one IP: the second DNS record overwrites the
        // first, so all traffic from that IP is attributed to the second
        // domain (the 50%-accuracy scenario of Section 4).
        let config = CorrelatorConfig::for_variant(Variant::Main);
        let store = DnsStore::new(&config);
        let mut fstats = FillUpStats::default();
        for (name, ts) in [("site-a.example", 1), ("site-b.example", 2)] {
            process_dns_record(
                &store,
                &DnsRecord::address(
                    SimTime::from_secs(ts),
                    DomainName::literal(name),
                    Ipv4Addr::new(203, 0, 113, 200).into(),
                    300,
                ),
                &mut fstats,
            );
        }
        let mut resolver = Resolver::new(&store, &config);
        let mut stats = LookUpStats::default();
        let rec = resolver.process_flow(flow([203, 0, 113, 200]), &mut stats);
        assert_eq!(rec.outcome.final_name().unwrap().as_str(), "site-b.example");
    }
}
