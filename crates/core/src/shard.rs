//! Shared-nothing correlator shards: key-routed partitions of the DNS
//! store, each owned exclusively by one worker thread.
//!
//! The classic pipeline (`correlator_shards = 0`) funnels every record
//! through two shared MPMC queues into a lock-striped [`DnsStore`]. The
//! sharded pipeline instead routes records **at the ingest boundary**:
//! listeners compute [`shard_of_dns`]/[`shard_of_flow`] at decode time
//! and push into per-shard SPSC rings, and shard worker `i` is the only
//! thread that ever touches partition `i` — so the partition's IP-NAME
//! maps are plain single-owner [`LocalSplitStore`]s with **no lock and
//! no atomic on the per-record path**.
//!
//! Two things stay shared, by design:
//!
//! * the [`NameInterner`] — handles must compare equal across shards so
//!   the Write stage can aggregate names globally; interning is already
//!   concurrent and touch-once-per-distinct-name,
//! * the NAME-CNAME [`RotatingStore`] — CNAME chains routinely cross
//!   shard boundaries (the A record's answer IP hashes to one shard, the
//!   chain's aliases to others), so chain following needs a global view.
//!   It is read-mostly on the hot path (one insert per CNAME record vs.
//!   a lookup per chain hop) and keeps its internal lock striping.
//!
//! Routing invariants:
//!
//! * A/AAAA records route by **answer IP** ([`shard_of_key`]), the same
//!   key flows are looked up by, so a flow's shard always owns the
//!   mapping its source IP could have produced. Multi-answer DNS
//!   responses arrive here already split into one record per answer, so
//!   the answers of one response fan out to their respective shards.
//! * Flows route by **source IP** — the key Algorithm 2 looks up.
//! * CNAME records route by hash of the **query name**. Their target
//!   store is shared, so placement only matters for load balance.
//!
//! Clock semantics: each partition advances its own clear-up clocks from
//! the records it processes (exactly like the classic store), and the
//! shared CNAME clock is advanced by CNAME inserts plus a once-per-
//! simulated-second tick from flow processing ([`ShardPartition::
//! process_flow`]) — rotation granularity is hours, so a 1 s tick
//! resolution is far below observable, and it keeps the shared store's
//! clock mutex off the per-record path.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::net::IpAddr;

use flowdns_bgp::AsnReader;
use flowdns_snapshot::{DnsStoreImage, StoreImage};
use flowdns_storage::{
    GenerationsImage, LocalSplitStore, MemoryEstimate, RotatingStore, RotationPolicy,
};
use flowdns_types::{
    CorrelatedRecord, CorrelationOutcome, DnsAnswer, DnsRecord, DomainName, FlowDnsError,
    FlowRecord, IpKey, NameInterner, NameRef, RecordType, SimDuration, SimTime,
};

use crate::config::{CorrelatorConfig, Variant};
use crate::fillup::FillUpStats;
use crate::lookup::{follow_chain, LookUpStats};
use crate::store::{
    decode_ip_entries, decode_name_entries, encode_ip_entries, encode_name_entries, NameTable,
};

/// How often flow processing ticks the shared CNAME clear-up clock.
const CNAME_TICK_RESOLUTION: SimDuration = SimDuration::from_secs(1);

/// Shard index for a compact IP key: hash modulo shard count, with the
/// same hasher the store splits use so the distribution properties are
/// shared. `shards = 1` always returns 0.
pub fn shard_of_key(key: &IpKey, shards: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() % shards as u64) as usize
}

/// Shard index for a source/answer IP address.
pub fn shard_of_ip(ip: IpAddr, shards: usize) -> usize {
    shard_of_key(&IpKey::from_ip(ip), shards)
}

/// Shard index for a DNS record: A/AAAA route by answer IP (the key the
/// owning shard will store them under), everything else by a hash of the
/// query name (its store is shared, so only balance matters).
pub fn shard_of_dns(record: &DnsRecord, shards: usize) -> usize {
    match &record.answer {
        DnsAnswer::Ip(ip) if matches!(record.rtype, RecordType::A | RecordType::Aaaa) => {
            shard_of_ip(*ip, shards)
        }
        _ => {
            let mut hasher = DefaultHasher::new();
            record.query.as_str().hash(&mut hasher);
            (hasher.finish() % shards as u64) as usize
        }
    }
}

/// Shard index for a flow record: by source IP, the key Algorithm 2
/// looks up.
pub fn shard_of_flow(flow: &FlowRecord, shards: usize) -> usize {
    shard_of_key(&IpKey::from_ip(flow.key.src_ip), shards)
}

/// One shard's exclusive slice of the DNS store: a single-owner IP-NAME
/// split store plus the shard's CNAME-clock throttle state. Owned by
/// exactly one worker at a time (the pipeline wraps partitions in a
/// mutex locked once per wake-up, not per record).
#[derive(Debug)]
pub struct ShardPartition {
    ip_name: LocalSplitStore<IpKey, NameRef>,
    last_cname_tick: Option<SimTime>,
}

impl ShardPartition {
    fn new(policy: RotationPolicy, num_split: usize) -> Self {
        ShardPartition {
            ip_name: LocalSplitStore::new(policy, num_split),
            last_cname_tick: None,
        }
    }

    /// Process one DNS record against this partition (the body of the
    /// shard worker's FillUp half). The caller has already routed the
    /// record here via [`shard_of_dns`]. Returns `true` if stored.
    pub fn process_dns(
        &mut self,
        shared: &ShardedStore,
        record: &DnsRecord,
        stats: &mut FillUpStats,
    ) -> bool {
        if !record.is_correlatable() {
            stats.filtered += 1;
            return false;
        }
        match (&record.rtype, &record.answer) {
            (RecordType::A | RecordType::Aaaa, DnsAnswer::Ip(ip)) => {
                let value = shared.names.intern_domain(&record.query);
                self.ip_name
                    .insert(IpKey::from_ip(*ip), value, record.ttl, record.ts);
                stats.addresses_stored += 1;
                true
            }
            (RecordType::Cname, DnsAnswer::Name(target)) => {
                let key = shared.names.intern_domain(target);
                let value = shared.names.intern_domain(&record.query);
                shared.name_cname.insert(key, value, record.ttl, record.ts);
                stats.cnames_stored += 1;
                true
            }
            _ => {
                stats.filtered += 1;
                false
            }
        }
    }

    /// Process one flow record (the shard worker's LookUp half). The
    /// caller routed the flow here via [`shard_of_flow`], so this
    /// partition owns any IP-NAME mapping its source IP could have.
    /// `asn` is the worker's own attribution reader (it caches the
    /// routing-table snapshot, hence `&mut`).
    pub fn process_flow(
        &mut self,
        shared: &ShardedStore,
        asn: &mut Option<AsnReader>,
        flow: FlowRecord,
        stats: &mut LookUpStats,
    ) -> CorrelatedRecord {
        let (src_asn, dst_asn) = match asn {
            Some(reader) => {
                let src = reader.origin_as(flow.key.src_ip);
                let dst = reader.origin_as(flow.key.dst_ip);
                if src.is_some() {
                    stats.asn_stamped += 1;
                }
                (src, dst)
            }
            None => (None, None),
        };
        if !flow.is_valid() {
            stats.filtered += 1;
            return CorrelatedRecord::new(flow, CorrelationOutcome::NotFound)
                .with_asns(src_asn, dst_asn);
        }
        // Flow timestamps advance this partition's clear-up clocks so
        // DNS-quiet periods still rotate (classic-store parity)…
        self.ip_name.observe_time(flow.ts);
        // …and the shared CNAME clock at 1 s resolution, so we touch its
        // clock mutex at most once per simulated second instead of per
        // record.
        let tick_due = self.last_cname_tick.map_or(true, |last| {
            flow.ts.saturating_since(last) >= CNAME_TICK_RESOLUTION
        });
        if tick_due {
            self.last_cname_tick = Some(flow.ts);
            shared.name_cname.observe_time(flow.ts);
        }
        let outcome = self.resolve(shared, flow.key.src_ip, stats);
        CorrelatedRecord::new(flow, outcome).with_asns(src_asn, dst_asn)
    }

    /// Resolve a source IP against this partition's IP-NAME maps, then
    /// follow the CNAME chain through the shared NAME-CNAME store
    /// (Algorithm 2, partitioned front half).
    pub fn resolve(
        &mut self,
        shared: &ShardedStore,
        src_ip: IpAddr,
        stats: &mut LookUpStats,
    ) -> CorrelationOutcome {
        let key = IpKey::from_ip(src_ip);
        let Some((first_name, _)) = self.ip_name.lookup(&key) else {
            stats.ip_misses += 1;
            return CorrelationOutcome::NotFound;
        };
        follow_chain(
            first_name,
            shared.loop_limit,
            |name| shared.name_cname.lookup(name).map(|(next, _)| next),
            |first, last| shared.name_cname.memoize(first.clone(), last.clone()),
            stats,
        )
    }

    /// Advance this partition's clear-up clocks without processing a
    /// record (used by the offline simulator's broadcast clock and by
    /// drain paths at shutdown).
    pub fn observe_time(&mut self, ts: SimTime) {
        self.ip_name.observe_time(ts);
    }

    /// Entries currently stored in this partition.
    pub fn total_entries(&self) -> usize {
        self.ip_name.total_entries()
    }

    /// Clear-up rounds this partition has performed.
    pub fn clear_ups(&self) -> u64 {
        self.ip_name.stats().clear_ups
    }

    /// Entries this partition has rotated into Inactive maps.
    pub fn rotated_entries(&self) -> u64 {
        self.ip_name.stats().rotated_entries
    }

    /// Memory estimate for this partition's maps.
    pub fn memory_estimate(&self) -> MemoryEstimate {
        self.ip_name.memory_estimate()
    }
}

/// The sharded correlator's storage: `shards` exclusive
/// [`ShardPartition`]s plus the shared name interner and NAME-CNAME
/// store. The partition mutexes exist so non-worker threads (snapshot
/// export, metrics, shutdown drain) can reach in; shard workers lock
/// their own partition once per wake-up and process whole batches under
/// that one acquisition — never per record.
#[derive(Debug)]
pub struct ShardedStore {
    config: CorrelatorConfig,
    loop_limit: usize,
    names: NameInterner,
    partitions: Vec<parking_lot::Mutex<ShardPartition>>,
    name_cname: RotatingStore<NameRef, NameRef>,
}

impl ShardedStore {
    /// Build sharded storage for `config`. `config.correlator_shards`
    /// must be positive and the variant must not be the exact-TTL
    /// strawman (its stores have no partitionable generations);
    /// [`CorrelatorConfig::validate`] enforces both for configs that
    /// come in through the front door.
    pub fn new(config: &CorrelatorConfig) -> Self {
        assert!(
            config.correlator_shards > 0,
            "ShardedStore requires correlator_shards > 0"
        );
        assert!(
            !matches!(config.variant, Variant::ExactTtl),
            "ShardedStore does not support the ExactTtl variant"
        );
        let ip_policy = RotationPolicy {
            clear_up_interval: config.a_clear_up_interval,
            clear_up: config.clears_up(),
            rotation: config.rotates(),
            long_maps: config.uses_long_maps(),
        };
        let cname_policy = RotationPolicy {
            clear_up_interval: config.c_clear_up_interval,
            clear_up: config.clears_up(),
            rotation: config.rotates(),
            long_maps: config.uses_long_maps(),
        };
        let num_split = config.effective_num_split();
        ShardedStore {
            config: config.clone(),
            loop_limit: config.cname_loop_limit,
            names: NameInterner::new(),
            partitions: (0..config.correlator_shards)
                .map(|_| parking_lot::Mutex::new(ShardPartition::new(ip_policy, num_split)))
                .collect(),
            name_cname: RotatingStore::new(cname_policy, config.map_shards),
        }
    }

    /// The configuration this store was built for.
    pub fn config(&self) -> &CorrelatorConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.partitions.len()
    }

    /// Access a partition's mutex. Shard worker `i` is the only
    /// long-lived lock holder of partition `i`; anyone else takes the
    /// lock briefly and off the hot path.
    pub fn partition(&self, shard: usize) -> &parking_lot::Mutex<ShardPartition> {
        &self.partitions[shard]
    }

    /// Intern a domain name in the shared pool.
    pub fn intern(&self, name: &DomainName) -> NameRef {
        self.names.intern_domain(name)
    }

    /// Number of distinct names pooled in the shared interner.
    pub fn interned_names(&self) -> usize {
        self.names.len()
    }

    /// Advance every partition clock and the shared CNAME clock to
    /// `ts`. The offline simulator calls this before every event so all
    /// partitions observe the identical timestamp sequence — making
    /// rotation boundaries (and therefore correlated output)
    /// independent of the shard count.
    pub fn observe_time_all(&self, ts: SimTime) {
        for partition in &self.partitions {
            partition.lock().observe_time(ts);
        }
        self.name_cname.observe_time(ts);
    }

    /// Total stored entries across every partition and the shared CNAME
    /// store.
    pub fn total_entries(&self) -> usize {
        let partitioned: usize = self
            .partitions
            .iter()
            .map(|p| p.lock().total_entries())
            .sum();
        partitioned + self.name_cname.total_entries()
    }

    /// Clear-up rounds across all partitions and the CNAME store.
    pub fn clear_ups(&self) -> u64 {
        let partitioned: u64 = self.partitions.iter().map(|p| p.lock().clear_ups()).sum();
        partitioned + self.name_cname.stats().clear_ups
    }

    /// Entries rotated into Inactive maps across all partitions and the
    /// CNAME store.
    pub fn rotated_entries(&self) -> u64 {
        let partitioned: u64 = self
            .partitions
            .iter()
            .map(|p| p.lock().rotated_entries())
            .sum();
        partitioned + self.name_cname.stats().rotated_entries
    }

    /// Memory estimate across every partition and the shared stores.
    pub fn memory_estimate(&self) -> MemoryEstimate {
        let mut est = MemoryEstimate::new();
        for partition in &self.partitions {
            est.merge(partition.lock().memory_estimate());
        }
        est.merge(self.name_cname.memory_estimate());
        est
    }

    /// Export the sharded store as a snapshot image: `shards ×
    /// num_split` IP-NAME sections in shard-major order (shard 0's
    /// splits first), the shared NAME-CNAME triple, and the clocks.
    /// Each partition is locked briefly in turn; like the classic
    /// export this runs from a background thread while workers keep
    /// processing.
    pub fn export_image(&self) -> DnsStoreImage {
        let mut table = NameTable::default();
        let mut as_of = SimTime::ZERO;
        let mut observe = |seen: Option<SimTime>| {
            if let Some(seen) = seen {
                as_of = as_of.max(seen);
            }
        };
        let num_split = self.config.effective_num_split();
        let mut ip_name = Vec::with_capacity(self.partitions.len() * num_split);
        for partition in &self.partitions {
            for split in partition.lock().ip_name.export_images() {
                observe(split.last_seen_ts);
                ip_name.push(StoreImage {
                    last_clear_ts: split.last_clear_ts,
                    last_seen_ts: split.last_seen_ts,
                    active: encode_ip_entries(split.active, &mut table),
                    inactive: encode_ip_entries(split.inactive, &mut table),
                    long: encode_ip_entries(split.long, &mut table),
                });
            }
        }
        let cname = self.name_cname.export_image();
        observe(cname.last_seen_ts);
        let name_cname = StoreImage {
            last_clear_ts: cname.last_clear_ts,
            last_seen_ts: cname.last_seen_ts,
            active: encode_name_entries(cname.active, &mut table),
            inactive: encode_name_entries(cname.inactive, &mut table),
            long: encode_name_entries(cname.long, &mut table),
        };
        DnsStoreImage {
            as_of,
            num_split: num_split as u32,
            shards: self.partitions.len() as u32,
            a_interval_secs: self.config.a_clear_up_interval.as_secs(),
            c_interval_secs: self.config.c_clear_up_interval.as_secs(),
            names: table.names,
            ip_name,
            name_cname,
        }
    }

    /// Warm-start the sharded store from a snapshot image, aging every
    /// generation to `now` with the same rules as
    /// [`DnsStore::import_image`](crate::store::DnsStore::import_image).
    ///
    /// Errors if the image was written by the classic shared layout or
    /// by a different shard count — shard membership is a function of
    /// the shard count, so entries cannot be re-homed without rehashing
    /// the whole image (delete the snapshot to change
    /// `correlator_shards`). Split counts and clear-up intervals must
    /// match for the same reason as the classic store.
    pub fn import_image(
        &self,
        image: &DnsStoreImage,
        now: Option<SimTime>,
    ) -> Result<usize, FlowDnsError> {
        if image.shards == 0 {
            return Err(FlowDnsError::Snapshot(format!(
                "snapshot was written by the classic shared correlator, \
                 this correlator runs {} shards \
                 (set correlator_shards = 0 to read it, or delete the snapshot)",
                self.partitions.len()
            )));
        }
        if image.shards as usize != self.partitions.len() {
            return Err(FlowDnsError::Snapshot(format!(
                "snapshot has {} shards, this correlator is configured for {} \
                 (correlator_shards changed between runs? delete the snapshot to change it)",
                image.shards,
                self.partitions.len()
            )));
        }
        let num_split = self.config.effective_num_split();
        if image.num_split as usize != num_split {
            return Err(FlowDnsError::Snapshot(format!(
                "snapshot has {} splits, this store is configured for {} \
                 (num_split changed between runs?)",
                image.num_split, num_split
            )));
        }
        for (key, image_secs, config_secs) in [
            (
                "a_clear_up_interval",
                image.a_interval_secs,
                self.config.a_clear_up_interval.as_secs(),
            ),
            (
                "c_clear_up_interval",
                image.c_interval_secs,
                self.config.c_clear_up_interval.as_secs(),
            ),
        ] {
            if image_secs != config_secs {
                return Err(FlowDnsError::Snapshot(format!(
                    "snapshot was written with {key} = {image_secs} s, \
                     this store is configured for {config_secs} s \
                     (delete the snapshot to change intervals)"
                )));
            }
        }
        let now = now.unwrap_or(image.as_of);
        let handles = self.names.import_names(&image.names);
        let before = self.total_entries();
        for (shard, sections) in image.ip_name.chunks(num_split).enumerate() {
            let mut splits = Vec::with_capacity(sections.len());
            for split in sections {
                splits.push(GenerationsImage {
                    last_clear_ts: split.last_clear_ts,
                    last_seen_ts: split.last_seen_ts,
                    active: decode_ip_entries(&split.active, &handles)?,
                    inactive: decode_ip_entries(&split.inactive, &handles)?,
                    long: decode_ip_entries(&split.long, &handles)?,
                });
            }
            self.partitions[shard]
                .lock()
                .ip_name
                .import_images(splits, now)?;
        }
        let cname = &image.name_cname;
        self.name_cname.import_image(
            GenerationsImage {
                last_clear_ts: cname.last_clear_ts,
                last_seen_ts: cname.last_seen_ts,
                active: decode_name_entries(&cname.active, &handles)?,
                inactive: decode_name_entries(&cname.inactive, &handles)?,
                long: decode_name_entries(&cname.long, &handles)?,
            },
            now,
        );
        Ok(self.total_entries().saturating_sub(before))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fillup::process_dns_record;
    use crate::lookup::Resolver;
    use crate::store::DnsStore;
    use std::net::Ipv4Addr;

    fn sharded_config(shards: usize) -> CorrelatorConfig {
        let config = CorrelatorConfig {
            correlator_shards: shards,
            ..CorrelatorConfig::default()
        };
        config.validate().unwrap();
        config
    }

    fn dns_chain(ts: SimTime) -> Vec<DnsRecord> {
        vec![
            DnsRecord::cname(
                ts,
                DomainName::literal("www.shop.example"),
                DomainName::literal("shop.cdn.example.net"),
                600,
            ),
            DnsRecord::cname(
                ts,
                DomainName::literal("shop.cdn.example.net"),
                DomainName::literal("edge7.cdn.example.net"),
                600,
            ),
            DnsRecord::address(
                ts,
                DomainName::literal("edge7.cdn.example.net"),
                Ipv4Addr::new(198, 51, 100, 7).into(),
                60,
            ),
            DnsRecord::address(
                ts,
                DomainName::literal("direct.example.org"),
                Ipv4Addr::new(203, 0, 113, 50).into(),
                300,
            ),
        ]
    }

    fn flow(src: [u8; 4]) -> FlowRecord {
        FlowRecord::inbound(
            SimTime::from_secs(20),
            Ipv4Addr::from(src).into(),
            Ipv4Addr::new(10, 0, 0, 1).into(),
            10_000,
        )
    }

    /// Route a record set through partitions and process each in its
    /// own shard, as the pipeline's workers would.
    fn fill(store: &ShardedStore, records: &[DnsRecord]) -> FillUpStats {
        let mut stats = FillUpStats::default();
        for record in records {
            let shard = shard_of_dns(record, store.shards());
            store
                .partition(shard)
                .lock()
                .process_dns(store, record, &mut stats);
        }
        stats
    }

    fn lookup(store: &ShardedStore, flow: FlowRecord) -> CorrelatedRecord {
        let mut stats = LookUpStats::default();
        let shard = shard_of_flow(&flow, store.shards());
        store
            .partition(shard)
            .lock()
            .process_flow(store, &mut None, flow, &mut stats)
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let ts = SimTime::from_secs(1);
        for shards in [1usize, 2, 4, 7] {
            for i in 0..200u32 {
                let ip: IpAddr = Ipv4Addr::from(0xC633_6400 + i).into();
                let s1 = shard_of_ip(ip, shards);
                assert_eq!(s1, shard_of_ip(ip, shards));
                assert!(s1 < shards);
                // A flow from that IP and the A record answering with it
                // land on the same shard.
                let record = DnsRecord::address(ts, DomainName::literal("x.example"), ip, 60);
                assert_eq!(shard_of_dns(&record, shards), s1);
                let f = FlowRecord::inbound(ts, ip, Ipv4Addr::new(10, 0, 0, 1).into(), 1);
                assert_eq!(shard_of_flow(&f, shards), s1);
            }
        }
    }

    #[test]
    fn cross_shard_cname_chain_resolves_like_the_classic_store() {
        let config = sharded_config(4);
        let store = ShardedStore::new(&config);
        let ts = SimTime::from_secs(10);
        let fstats = fill(&store, &dns_chain(ts));
        assert_eq!(fstats.addresses_stored, 2);
        assert_eq!(fstats.cnames_stored, 2);

        let rec = lookup(&store, flow([198, 51, 100, 7]));
        let names: Vec<&str> = rec.outcome.names().iter().map(|n| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "edge7.cdn.example.net",
                "shop.cdn.example.net",
                "www.shop.example"
            ]
        );
        let rec = lookup(&store, flow([203, 0, 113, 50]));
        assert_eq!(
            rec.outcome,
            CorrelationOutcome::Name(DomainName::literal("direct.example.org"))
        );
        let rec = lookup(&store, flow([192, 0, 2, 99]));
        assert_eq!(rec.outcome, CorrelationOutcome::NotFound);
    }

    #[test]
    fn sharded_outcomes_match_the_classic_resolver() {
        let classic_config = CorrelatorConfig::default();
        let classic = DnsStore::new(&classic_config);
        let sharded = ShardedStore::new(&sharded_config(3));
        let ts = SimTime::from_secs(10);
        let mut fstats = FillUpStats::default();
        for record in dns_chain(ts) {
            process_dns_record(&classic, &record, &mut fstats);
        }
        fill(&sharded, &dns_chain(ts));

        let mut resolver = Resolver::new(&classic, &classic_config);
        for src in [[198, 51, 100, 7], [203, 0, 113, 50], [192, 0, 2, 99]] {
            let mut stats = LookUpStats::default();
            let classic_rec = resolver.process_flow(flow(src), &mut stats);
            let sharded_rec = lookup(&sharded, flow(src));
            assert_eq!(classic_rec.outcome, sharded_rec.outcome, "src {src:?}");
        }
    }

    #[test]
    fn export_import_round_trips_with_shards() {
        let config = sharded_config(4);
        let store = ShardedStore::new(&config);
        fill(&store, &dns_chain(SimTime::from_secs(10)));
        let image = store.export_image();
        assert_eq!(image.shards, 4);
        assert_eq!(
            image.ip_name.len(),
            4 * config.effective_num_split(),
            "shard-major sections"
        );
        // Round-tripping through the codec exercises its section-count
        // validation against the shard-major layout.
        let bytes = flowdns_snapshot::encode_snapshot(&image);
        assert_eq!(flowdns_snapshot::decode_snapshot(&bytes).unwrap(), image);

        let restored = ShardedStore::new(&config);
        let gained = restored.import_image(&image, None).unwrap();
        assert_eq!(gained, store.total_entries());
        let rec = lookup(&restored, flow([198, 51, 100, 7]));
        assert_eq!(
            rec.outcome.final_name().unwrap().as_str(),
            "www.shop.example"
        );
    }

    #[test]
    fn shard_count_change_is_rejected_on_import() {
        let store = ShardedStore::new(&sharded_config(4));
        fill(&store, &dns_chain(SimTime::from_secs(10)));
        let image = store.export_image();

        let other = ShardedStore::new(&sharded_config(2));
        match other.import_image(&image, None) {
            Err(FlowDnsError::Snapshot(msg)) => {
                assert!(msg.contains("4 shards"), "{msg}");
                assert!(msg.contains("correlator_shards"), "{msg}");
            }
            other => panic!("expected shard-count rejection, got {other:?}"),
        }
    }

    #[test]
    fn classic_and_sharded_images_do_not_cross_load() {
        // A classic image into a sharded store…
        let classic = DnsStore::new(&CorrelatorConfig::default());
        let mut fstats = FillUpStats::default();
        for record in dns_chain(SimTime::from_secs(10)) {
            process_dns_record(&classic, &record, &mut fstats);
        }
        let classic_image = classic.export_image().unwrap();
        let sharded = ShardedStore::new(&sharded_config(2));
        match sharded.import_image(&classic_image, None) {
            Err(FlowDnsError::Snapshot(msg)) => {
                assert!(msg.contains("classic shared correlator"), "{msg}")
            }
            other => panic!("expected layout rejection, got {other:?}"),
        }
        // …and a sharded image into a classic store.
        let sharded_image = sharded.export_image();
        match classic.import_image(&sharded_image, None) {
            Err(FlowDnsError::Snapshot(msg)) => {
                assert!(msg.contains("sharded correlator"), "{msg}")
            }
            other => panic!("expected layout rejection, got {other:?}"),
        }
    }

    #[test]
    fn flow_ticks_advance_partition_and_cname_clocks() {
        let mut config = sharded_config(2);
        config.correlator_shards = 2;
        let store = ShardedStore::new(&config);
        fill(&store, &dns_chain(SimTime::from_secs(10)));
        let before = store.clear_ups();
        // A flow far in the future rotates its own shard's splits and
        // (via the 1 s-throttled tick) the shared CNAME store.
        let mut f = flow([198, 51, 100, 7]);
        f.ts = SimTime::from_secs(900_000);
        lookup(&store, f);
        assert!(store.clear_ups() > before);
    }

    #[test]
    fn observe_time_all_reaches_every_partition() {
        let store = ShardedStore::new(&sharded_config(4));
        fill(&store, &dns_chain(SimTime::from_secs(10)));
        // First broadcast arms every clock (splits that saw no insert
        // have unarmed clocks until their first observed timestamp)…
        store.observe_time_all(SimTime::from_secs(10));
        // …the second, a rotation interval later, rotates all of them.
        store.observe_time_all(SimTime::from_secs(900_000));
        // Every partition's splits plus the CNAME store rotated.
        let num_split = store.config().effective_num_split() as u64;
        assert_eq!(store.clear_ups(), 4 * num_split + 1);
    }
}
