//! Correlator configuration: the Table 1 parameters plus worker and queue
//! sizing, and the ablation variants of Section 4.
//!
//! The paper states the system "can be adapted to use other data formats
//! ... in a configuration file"; [`CorrelatorConfig::from_config_text`]
//! parses the small `key = value` format used for that purpose, so
//! deployments can be described in a file rather than code.

use std::time::Duration;

use flowdns_types::{FlowDnsError, SimDuration};

/// The ablation variants evaluated in Section 4 (Figure 3, Figure 7) plus
/// the Appendix A.8 exact-TTL strawman.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Variant {
    /// The fully featured system.
    #[default]
    Main,
    /// Hashmaps are not divided into splits (`NUM_SPLIT = 1`).
    NoSplit,
    /// Hashmaps are never cleared.
    NoClearUp,
    /// Hashmaps are cleared but nothing is copied to an Inactive map.
    NoRotation,
    /// Long-TTL records go to the Active maps instead of Long maps.
    NoLongHashmaps,
    /// Records are expired by their exact TTL with a periodic purge
    /// (Appendix A.8).
    ExactTtl,
}

impl Variant {
    /// All variants in the order the paper discusses them.
    pub fn all() -> [Variant; 6] {
        [
            Variant::Main,
            Variant::NoSplit,
            Variant::NoClearUp,
            Variant::NoRotation,
            Variant::NoLongHashmaps,
            Variant::ExactTtl,
        ]
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Main => "Main",
            Variant::NoSplit => "NoSplit",
            Variant::NoClearUp => "NoClearUp",
            Variant::NoRotation => "NoRotation",
            Variant::NoLongHashmaps => "NoLong",
            Variant::ExactTtl => "ExactTTL",
        }
    }

    /// Parse a variant label (case-insensitive).
    pub fn parse(s: &str) -> Result<Variant, FlowDnsError> {
        match s.to_ascii_lowercase().as_str() {
            "main" => Ok(Variant::Main),
            "nosplit" | "no-split" => Ok(Variant::NoSplit),
            "noclearup" | "no-clear-up" | "no-clearup" => Ok(Variant::NoClearUp),
            "norotation" | "no-rotation" => Ok(Variant::NoRotation),
            "nolong" | "no-long" | "nolonghashmaps" => Ok(Variant::NoLongHashmaps),
            "exactttl" | "exact-ttl" => Ok(Variant::ExactTtl),
            other => Err(FlowDnsError::Config(format!("unknown variant '{other}'"))),
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full configuration of a correlator instance.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatorConfig {
    /// `AClearUpInterval`: seconds after which the IP-NAME Active maps are
    /// rotated and cleared (paper value: 3600).
    pub a_clear_up_interval: SimDuration,
    /// `CClearUpInterval`: seconds after which the NAME-CNAME Active map is
    /// rotated and cleared (paper value: 7200).
    pub c_clear_up_interval: SimDuration,
    /// `NUM_SPLIT`: number of splits of the IP-NAME maps (paper value: 10).
    pub num_split: usize,
    /// Maximum number of CNAME chain look-ups (paper value: 6).
    pub cname_loop_limit: usize,
    /// Number of shards inside each concurrent hashmap.
    pub map_shards: usize,
    /// Number of FillUp worker threads (live pipeline only).
    pub fillup_workers: usize,
    /// Number of LookUp worker threads (live pipeline only).
    pub lookup_workers: usize,
    /// Number of Write worker threads (live pipeline only).
    pub write_workers: usize,
    /// Capacity of the FillUp queue (records).
    pub fillup_queue_capacity: usize,
    /// Capacity of the LookUp queue (records).
    pub lookup_queue_capacity: usize,
    /// Capacity of the Write queue (records).
    pub write_queue_capacity: usize,
    /// Purge interval of the exact-TTL strawman (Appendix A.8).
    pub exact_ttl_purge_interval: SimDuration,
    /// Which ablation variant to run.
    pub variant: Variant,
    /// Path to a BGP announcement file (`prefix origin_as` lines, see
    /// `flowdns_bgp::RoutingTable::from_announcements_text`). When set,
    /// the pipeline compiles it into a frozen table and the LookUp
    /// workers stamp `src_asn`/`dst_asn` on every record.
    pub routing_table: Option<String>,
    /// Path of the DNS-store snapshot file. When set, the pipeline
    /// warm-starts from the file at boot (if it exists and passes its
    /// checksum), writes it periodically from a background thread (see
    /// [`CorrelatorConfig::snapshot_interval`]) and once more at
    /// shutdown, always via `.part` + atomic rename. `None` (the
    /// default) disables persistence entirely.
    pub snapshot_path: Option<String>,
    /// Wall-clock interval between background snapshot writes.
    /// `Duration::ZERO` keeps only the shutdown snapshot. Ignored unless
    /// [`CorrelatorConfig::snapshot_path`] is set.
    pub snapshot_interval: Duration,
    /// Number of shared-nothing correlator shards. `0` (the default)
    /// keeps the classic shared-queue pipeline with
    /// [`CorrelatorConfig::fillup_workers`] /
    /// [`CorrelatorConfig::lookup_workers`]; any positive value switches
    /// to key-routed SPSC ingress where each shard owns an exclusive
    /// partition of the IP-NAME store and performs both FillUp and
    /// LookUp for its key range (`fillup_workers`/`lookup_workers` are
    /// then ignored — see MIGRATION.md).
    pub correlator_shards: usize,
    /// Capacity of each per-(producer, shard) DNS ingress ring, in
    /// records (sharded mode only; rounded up to a power of two).
    pub shard_dns_ring_capacity: usize,
    /// Capacity of each per-(producer, shard) flow ingress ring, in
    /// records (sharded mode only; rounded up to a power of two).
    pub shard_flow_ring_capacity: usize,
    /// Flight-recorder sampling interval: every n-th decoded flow gets a
    /// trace token and emits one JSONL span at egress. `0` (the default)
    /// disables tracing entirely — no recorder is constructed and the
    /// hot path pays nothing.
    pub trace_sample_every: u64,
    /// Path of the flight-recorder JSONL ring file. Required when
    /// [`CorrelatorConfig::trace_sample_every`] is nonzero.
    pub trace_path: Option<String>,
}

impl Default for CorrelatorConfig {
    fn default() -> Self {
        CorrelatorConfig {
            a_clear_up_interval: SimDuration::from_secs(3600),
            c_clear_up_interval: SimDuration::from_secs(7200),
            num_split: 10,
            cname_loop_limit: 6,
            map_shards: 32,
            fillup_workers: 2,
            lookup_workers: 4,
            write_workers: 1,
            fillup_queue_capacity: 65_536,
            lookup_queue_capacity: 262_144,
            write_queue_capacity: 262_144,
            exact_ttl_purge_interval: SimDuration::from_secs(300),
            variant: Variant::Main,
            routing_table: None,
            snapshot_path: None,
            snapshot_interval: Duration::from_secs(300),
            correlator_shards: 0,
            shard_dns_ring_capacity: 65_536,
            shard_flow_ring_capacity: 262_144,
            trace_sample_every: 0,
            trace_path: None,
        }
    }
}

impl CorrelatorConfig {
    /// The default configuration with a different variant.
    pub fn for_variant(variant: Variant) -> Self {
        CorrelatorConfig {
            variant,
            ..CorrelatorConfig::default()
        }
    }

    /// The effective number of IP-NAME splits after applying the variant
    /// (the *No Split* variant forces 1).
    pub fn effective_num_split(&self) -> usize {
        match self.variant {
            Variant::NoSplit => 1,
            _ => self.num_split.max(1),
        }
    }

    /// Does this configuration clear its hashmaps at all?
    pub fn clears_up(&self) -> bool {
        !matches!(self.variant, Variant::NoClearUp)
    }

    /// Does this configuration keep Inactive copies (buffer rotation)?
    pub fn rotates(&self) -> bool {
        !matches!(self.variant, Variant::NoRotation | Variant::NoClearUp)
    }

    /// Does this configuration use Long hashmaps?
    pub fn uses_long_maps(&self) -> bool {
        !matches!(self.variant, Variant::NoLongHashmaps)
    }

    /// Validate the configuration, returning a descriptive error for the
    /// first problem found.
    pub fn validate(&self) -> Result<(), FlowDnsError> {
        if self.a_clear_up_interval == SimDuration::ZERO && self.clears_up() {
            return Err(FlowDnsError::Config(
                "a_clear_up_interval must be positive".into(),
            ));
        }
        if self.c_clear_up_interval == SimDuration::ZERO && self.clears_up() {
            return Err(FlowDnsError::Config(
                "c_clear_up_interval must be positive".into(),
            ));
        }
        if self.num_split == 0 {
            return Err(FlowDnsError::Config("num_split must be at least 1".into()));
        }
        if self.cname_loop_limit == 0 {
            return Err(FlowDnsError::Config(
                "cname_loop_limit must be at least 1".into(),
            ));
        }
        if self.map_shards == 0 {
            return Err(FlowDnsError::Config("map_shards must be at least 1".into()));
        }
        for (name, value) in [
            ("fillup_workers", self.fillup_workers),
            ("lookup_workers", self.lookup_workers),
            ("write_workers", self.write_workers),
            ("fillup_queue_capacity", self.fillup_queue_capacity),
            ("lookup_queue_capacity", self.lookup_queue_capacity),
            ("write_queue_capacity", self.write_queue_capacity),
        ] {
            if value == 0 {
                return Err(FlowDnsError::Config(format!("{name} must be at least 1")));
            }
        }
        if self.correlator_shards > 0 {
            if self.shard_dns_ring_capacity == 0 {
                return Err(FlowDnsError::Config(
                    "shard_dns_ring_capacity must be at least 1".into(),
                ));
            }
            if self.shard_flow_ring_capacity == 0 {
                return Err(FlowDnsError::Config(
                    "shard_flow_ring_capacity must be at least 1".into(),
                ));
            }
            if matches!(self.variant, Variant::ExactTtl) {
                // The exact-TTL strawman keeps its own purge wheel with
                // interior locking; partitioning it is out of scope.
                return Err(FlowDnsError::Config(
                    "correlator_shards is not supported with the ExactTtl variant".into(),
                ));
            }
        }
        if self.trace_sample_every > 0 && self.trace_path.is_none() {
            return Err(FlowDnsError::Config(
                "trace_sample_every requires trace_path".into(),
            ));
        }
        Ok(())
    }

    /// Parse a configuration from `key = value` text. Unknown keys are an
    /// error (they are usually typos); missing keys keep their defaults.
    /// Lines starting with `#` and blank lines are ignored.
    ///
    /// Every key is documented in `docs/CONFIG.md`; the `flowdnsd`
    /// config file feeds its non-ingest lines through this parser.
    ///
    /// # Examples
    ///
    /// ```
    /// use flowdns_core::CorrelatorConfig;
    ///
    /// let cfg = CorrelatorConfig::from_config_text(
    ///     "# deployment overrides\n\
    ///      num_split = 4\n\
    ///      lookup_workers = 8\n\
    ///      snapshot_path = /var/lib/flowdns/store.fdns\n",
    /// )
    /// .unwrap();
    /// assert_eq!(cfg.num_split, 4);
    /// assert_eq!(cfg.lookup_workers, 8);
    /// assert_eq!(cfg.a_clear_up_interval.as_secs(), 3600); // default kept
    /// assert!(CorrelatorConfig::from_config_text("num_splits = 4").is_err());
    /// ```
    pub fn from_config_text(text: &str) -> Result<Self, FlowDnsError> {
        let mut cfg = CorrelatorConfig::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                FlowDnsError::Config(format!("line {}: expected 'key = value'", lineno + 1))
            })?;
            let key = key.trim();
            let value = value.trim();
            let parse_u64 = |v: &str| {
                v.parse::<u64>().map_err(|_| {
                    FlowDnsError::Config(format!("line {}: '{v}' is not a number", lineno + 1))
                })
            };
            match key {
                "a_clear_up_interval" => {
                    cfg.a_clear_up_interval = SimDuration::from_secs(parse_u64(value)?)
                }
                "c_clear_up_interval" => {
                    cfg.c_clear_up_interval = SimDuration::from_secs(parse_u64(value)?)
                }
                "num_split" => cfg.num_split = parse_u64(value)? as usize,
                "cname_loop_limit" => cfg.cname_loop_limit = parse_u64(value)? as usize,
                "map_shards" => cfg.map_shards = parse_u64(value)? as usize,
                "fillup_workers" => cfg.fillup_workers = parse_u64(value)? as usize,
                "lookup_workers" => cfg.lookup_workers = parse_u64(value)? as usize,
                "write_workers" => cfg.write_workers = parse_u64(value)? as usize,
                "fillup_queue_capacity" => cfg.fillup_queue_capacity = parse_u64(value)? as usize,
                "lookup_queue_capacity" => cfg.lookup_queue_capacity = parse_u64(value)? as usize,
                "write_queue_capacity" => cfg.write_queue_capacity = parse_u64(value)? as usize,
                "exact_ttl_purge_interval" => {
                    cfg.exact_ttl_purge_interval = SimDuration::from_secs(parse_u64(value)?)
                }
                "variant" => cfg.variant = Variant::parse(value)?,
                "routing_table" => cfg.routing_table = Some(value.to_string()),
                "snapshot_path" => cfg.snapshot_path = Some(value.to_string()),
                "snapshot_interval" => {
                    cfg.snapshot_interval = Duration::from_secs(parse_u64(value)?)
                }
                "correlator_shards" => cfg.correlator_shards = parse_u64(value)? as usize,
                "shard_dns_ring_capacity" => {
                    cfg.shard_dns_ring_capacity = parse_u64(value)? as usize
                }
                "shard_flow_ring_capacity" => {
                    cfg.shard_flow_ring_capacity = parse_u64(value)? as usize
                }
                "trace_sample_every" => cfg.trace_sample_every = parse_u64(value)?,
                "trace_path" => cfg.trace_path = Some(value.to_string()),
                other => {
                    return Err(FlowDnsError::Config(format!(
                        "line {}: unknown key '{other}'",
                        lineno + 1
                    )))
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let cfg = CorrelatorConfig::default();
        assert_eq!(cfg.a_clear_up_interval.as_secs(), 3600);
        assert_eq!(cfg.c_clear_up_interval.as_secs(), 7200);
        assert_eq!(cfg.num_split, 10);
        assert_eq!(cfg.cname_loop_limit, 6);
        assert_eq!(cfg.variant, Variant::Main);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn variant_switches_drive_effective_settings() {
        assert_eq!(
            CorrelatorConfig::for_variant(Variant::NoSplit).effective_num_split(),
            1
        );
        assert_eq!(
            CorrelatorConfig::for_variant(Variant::Main).effective_num_split(),
            10
        );
        assert!(!CorrelatorConfig::for_variant(Variant::NoClearUp).clears_up());
        assert!(!CorrelatorConfig::for_variant(Variant::NoRotation).rotates());
        assert!(!CorrelatorConfig::for_variant(Variant::NoLongHashmaps).uses_long_maps());
        assert!(CorrelatorConfig::for_variant(Variant::Main).rotates());
    }

    #[test]
    fn variant_labels_round_trip() {
        for v in Variant::all() {
            assert_eq!(Variant::parse(v.label()).unwrap(), v);
        }
        assert!(Variant::parse("bogus").is_err());
    }

    #[test]
    fn config_text_parses_and_overrides() {
        let text = "
# FlowDNS deployment at the small ISP
a_clear_up_interval = 1800
num_split = 4
variant = NoRotation
lookup_workers = 8
";
        let cfg = CorrelatorConfig::from_config_text(text).unwrap();
        assert_eq!(cfg.a_clear_up_interval.as_secs(), 1800);
        assert_eq!(cfg.num_split, 4);
        assert_eq!(cfg.variant, Variant::NoRotation);
        assert_eq!(cfg.lookup_workers, 8);
        // untouched keys keep defaults
        assert_eq!(cfg.c_clear_up_interval.as_secs(), 7200);
        assert_eq!(cfg.routing_table, None);
    }

    #[test]
    fn snapshot_keys_are_parsed_with_defaults() {
        let cfg = CorrelatorConfig::default();
        assert_eq!(cfg.snapshot_path, None);
        assert_eq!(cfg.snapshot_interval, Duration::from_secs(300));
        let cfg = CorrelatorConfig::from_config_text(
            "snapshot_path = /var/lib/flowdns/store.fdns\nsnapshot_interval = 60",
        )
        .unwrap();
        assert_eq!(
            cfg.snapshot_path.as_deref(),
            Some("/var/lib/flowdns/store.fdns")
        );
        assert_eq!(cfg.snapshot_interval, Duration::from_secs(60));
        // 0 keeps only the shutdown snapshot.
        let cfg = CorrelatorConfig::from_config_text("snapshot_interval = 0").unwrap();
        assert_eq!(cfg.snapshot_interval, Duration::ZERO);
        assert!(CorrelatorConfig::from_config_text("snapshot_interval = soon").is_err());
    }

    #[test]
    fn trace_keys_are_parsed_and_validated() {
        let cfg = CorrelatorConfig::default();
        assert_eq!(cfg.trace_sample_every, 0);
        assert_eq!(cfg.trace_path, None);
        let cfg = CorrelatorConfig::from_config_text(
            "trace_sample_every = 1024\ntrace_path = /var/lib/flowdns/trace.jsonl",
        )
        .unwrap();
        assert_eq!(cfg.trace_sample_every, 1024);
        assert_eq!(
            cfg.trace_path.as_deref(),
            Some("/var/lib/flowdns/trace.jsonl")
        );
        // Sampling without a file to write to is a config error.
        assert!(CorrelatorConfig::from_config_text("trace_sample_every = 64").is_err());
        // A path alone (sampling off) is fine.
        assert!(CorrelatorConfig::from_config_text("trace_path = /tmp/t.jsonl").is_ok());
    }

    #[test]
    fn shard_keys_are_parsed_and_validated() {
        let cfg = CorrelatorConfig::default();
        assert_eq!(cfg.correlator_shards, 0); // shared-queue pipeline
        assert_eq!(cfg.shard_dns_ring_capacity, 65_536);
        assert_eq!(cfg.shard_flow_ring_capacity, 262_144);
        let cfg = CorrelatorConfig::from_config_text(
            "correlator_shards = 4\n\
             shard_dns_ring_capacity = 1024\n\
             shard_flow_ring_capacity = 4096",
        )
        .unwrap();
        assert_eq!(cfg.correlator_shards, 4);
        assert_eq!(cfg.shard_dns_ring_capacity, 1024);
        assert_eq!(cfg.shard_flow_ring_capacity, 4096);
        // Zero ring capacities only matter when sharding is on.
        assert!(CorrelatorConfig::from_config_text(
            "correlator_shards = 2\nshard_dns_ring_capacity = 0"
        )
        .is_err());
        assert!(CorrelatorConfig::from_config_text("shard_dns_ring_capacity = 0").is_ok());
        // The exact-TTL strawman has no partitioned implementation.
        assert!(
            CorrelatorConfig::from_config_text("correlator_shards = 2\nvariant = ExactTTL")
                .is_err()
        );
        assert!(CorrelatorConfig::from_config_text("variant = ExactTTL").is_ok());
    }

    #[test]
    fn routing_table_key_is_parsed() {
        let cfg =
            CorrelatorConfig::from_config_text("routing_table = /var/lib/flowdns/rib.txt").unwrap();
        assert_eq!(
            cfg.routing_table.as_deref(),
            Some("/var/lib/flowdns/rib.txt")
        );
    }

    #[test]
    fn config_text_rejects_unknown_keys_and_bad_values() {
        assert!(CorrelatorConfig::from_config_text("numsplit = 3").is_err());
        assert!(CorrelatorConfig::from_config_text("num_split = many").is_err());
        assert!(CorrelatorConfig::from_config_text("just a line").is_err());
        assert!(CorrelatorConfig::from_config_text("variant = turbo").is_err());
        assert!(CorrelatorConfig::from_config_text("num_split = 0").is_err());
    }

    #[test]
    fn validation_catches_zero_values() {
        let cfg = CorrelatorConfig {
            cname_loop_limit: 0,
            ..CorrelatorConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = CorrelatorConfig {
            lookup_queue_capacity: 0,
            ..CorrelatorConfig::default()
        };
        assert!(cfg.validate().is_err());
        let mut cfg = CorrelatorConfig {
            a_clear_up_interval: SimDuration::ZERO,
            ..CorrelatorConfig::default()
        };
        assert!(cfg.validate().is_err());
        // ... unless the variant never clears up anyway.
        cfg.variant = Variant::NoClearUp;
        cfg.c_clear_up_interval = SimDuration::ZERO;
        assert!(cfg.validate().is_ok());
    }
}
