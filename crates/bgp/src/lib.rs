//! # flowdns-bgp
//!
//! BGP substrate: longest-prefix-match AS attribution.
//!
//! The paper's Network Provisioning use case (Figure 4) correlates
//! FlowDNS output with BGP data to learn which source AS originates each
//! service's traffic. The real deployment has live BGP sessions; this
//! crate provides the piece the analysis actually needs: a routing table
//! with longest-prefix-match lookup from IP address to origin AS, plus a
//! builder for synthetic announcements that the workload generator aligns
//! with its CDN universe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prefix;
pub mod table;

pub use prefix::Prefix;
pub use table::{Announcement, RoutingTable};
