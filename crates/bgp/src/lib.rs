//! # flowdns-bgp
//!
//! BGP substrate: longest-prefix-match AS attribution.
//!
//! The paper's Network Provisioning use case (Figure 4) correlates
//! FlowDNS output with BGP data to learn which source AS originates each
//! service's traffic. The real deployment has live BGP sessions; this
//! crate provides the pieces the analysis and the live pipeline need: a
//! trie [`RoutingTable`] with longest-prefix-match lookup from IP address
//! to origin AS, a [`FrozenTable`] compiling that trie into flat sorted
//! arrays for the lock-free in-pipeline hot path, an [`AsnView`] handle
//! supporting atomic snapshot swap for live table reloads, and an
//! announcement-file format aligning all of it with the workload
//! generator's CDN universe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frozen;
pub mod prefix;
pub mod table;

pub use frozen::{AsnReader, AsnView, FrozenTable};
pub use prefix::Prefix;
pub use table::{Announcement, RoutingTable};
