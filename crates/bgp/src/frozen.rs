//! The frozen routing table: the trie compiled into flat sorted arrays.
//!
//! The live pipeline cannot afford pointer-chasing a [`RoutingTable`]
//! trie per flow record (two lookups per record once both endpoints are
//! attributed). [`FrozenTable`] compiles the trie into per-prefix-length
//! groups of parallel sorted arrays: a longest-prefix-match becomes at
//! most one binary search per *distinct announced prefix length* over
//! contiguous memory — no allocation, no locks, no pointers.
//!
//! [`AsnView`] wraps a frozen table for the LookUp workers: reads are a
//! single relaxed atomic epoch check against a worker-cached `Arc`
//! snapshot (lock-free on the per-record path), while
//! [`AsnView::swap`] installs a freshly compiled table for live BGP
//! feed reloads without stopping the pipeline.

use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::table::{Announcement, RoutingTable};

/// Address bits usable as a frozen-table key: `u32` for IPv4, `u128`
/// for IPv6.
trait AddrBits: Copy + Ord {
    /// The network mask for a prefix of `len` bits.
    fn prefix_mask(len: u8) -> Self;
    /// Bitwise AND.
    fn masked(self, mask: Self) -> Self;
}

impl AddrBits for u32 {
    fn prefix_mask(len: u8) -> Self {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }
    fn masked(self, mask: Self) -> Self {
        self & mask
    }
}

impl AddrBits for u128 {
    fn prefix_mask(len: u8) -> Self {
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - len as u32)
        }
    }
    fn masked(self, mask: Self) -> Self {
        self & mask
    }
}

/// All announcements of one prefix length: `networks` sorted ascending,
/// `asns[i]` the origin of `networks[i]`.
#[derive(Debug, Clone)]
struct LenGroup<B> {
    len: u8,
    mask: B,
    networks: Vec<B>,
    asns: Vec<u32>,
}

impl<B: AddrBits> LenGroup<B> {
    fn lookup(&self, addr: B) -> Option<u32> {
        let masked = addr.masked(self.mask);
        self.networks
            .binary_search(&masked)
            .ok()
            .map(|i| self.asns[i])
    }
}

/// One address family of the frozen table: length groups ordered longest
/// prefix first, so the first hit *is* the longest match.
#[derive(Debug, Clone, Default)]
struct FamilyTable<B> {
    groups: Vec<LenGroup<B>>,
}

impl<B: AddrBits> FamilyTable<B> {
    fn insert(&mut self, network: B, len: u8, asn: u32) {
        // Build-time path (not the lookup hot path): the extra scan for
        // a panic-free push-then-find is irrelevant here.
        if !self.groups.iter().any(|g| g.len == len) {
            self.groups.push(LenGroup {
                len,
                mask: B::prefix_mask(len),
                networks: Vec::new(),
                asns: Vec::new(),
            });
        }
        let Some(group) = self.groups.iter_mut().find(|g| g.len == len) else {
            return;
        };
        // Mask host bits here too: lookups compare masked probes, and a
        // `Prefix` built through its public fields may carry host bits
        // that `Prefix::new` would have zeroed. The trie masks
        // implicitly via `prefix.bits()`; this keeps the answers equal.
        let masked = network.masked(group.mask);
        group.networks.push(masked);
        group.asns.push(asn);
    }

    fn finish(&mut self) {
        // Longest length first; within a group sort the parallel arrays
        // by network, keeping the *last* announcement of a duplicate
        // prefix (trie semantics: later announcements overwrite).
        self.groups.sort_by_key(|g| std::cmp::Reverse(g.len));
        for group in &mut self.groups {
            let mut paired: Vec<(B, u32)> = group
                .networks
                .iter()
                .copied()
                .zip(group.asns.iter().copied())
                .collect();
            // Stable sort preserves announcement order among equal
            // networks; dedup keeps the last occurrence.
            paired.sort_by_key(|&(network, _)| network);
            let mut deduped: Vec<(B, u32)> = Vec::with_capacity(paired.len());
            for (network, asn) in paired {
                match deduped.last_mut() {
                    Some(last) if last.0 == network => last.1 = asn,
                    _ => deduped.push((network, asn)),
                }
            }
            group.networks = deduped.iter().map(|&(n, _)| n).collect();
            group.asns = deduped.iter().map(|&(_, a)| a).collect();
        }
    }

    fn lookup(&self, addr: B) -> Option<(u32, u8)> {
        self.groups
            .iter()
            .find_map(|g| g.lookup(addr).map(|asn| (asn, g.len)))
    }

    fn len(&self) -> usize {
        self.groups.iter().map(|g| g.networks.len()).sum()
    }
}

/// An immutable longest-prefix-match table compiled into flat sorted
/// arrays — the cache-friendly, lock-free form the live pipeline reads.
///
/// Build one with [`RoutingTable::freeze`] or
/// [`FrozenTable::from_announcements`]; answers are identical to the
/// trie's (the property tests assert exactly that).
#[derive(Debug, Clone, Default)]
pub struct FrozenTable {
    v4: FamilyTable<u32>,
    v6: FamilyTable<u128>,
}

impl FrozenTable {
    /// An empty table that matches nothing.
    pub fn new() -> Self {
        FrozenTable::default()
    }

    /// Compile a table from a list of announcements. Duplicate prefixes
    /// keep the last announcement, like repeated [`RoutingTable::announce`]
    /// calls.
    pub fn from_announcements<I>(announcements: I) -> Self
    where
        I: IntoIterator<Item = Announcement>,
    {
        let mut table = FrozenTable::default();
        for a in announcements {
            match a.prefix.network {
                IpAddr::V4(v4) => table.v4.insert(u32::from(v4), a.prefix.len, a.origin_as),
                IpAddr::V6(v6) => table.v6.insert(u128::from(v6), a.prefix.len, a.origin_as),
            }
        }
        table.v4.finish();
        table.v6.finish();
        table
    }

    /// Number of distinct announced prefixes.
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Longest-prefix-match lookup: the origin AS and matched prefix
    /// length for `addr`, if any announcement covers it.
    pub fn lookup(&self, addr: IpAddr) -> Option<(u32, u8)> {
        match addr {
            IpAddr::V4(v4) => self.v4.lookup(u32::from(v4)),
            IpAddr::V6(v6) => self.v6.lookup(u128::from(v6)),
        }
    }

    /// The origin AS for `addr`, if known.
    pub fn origin_as(&self, addr: IpAddr) -> Option<u32> {
        self.lookup(addr).map(|(asn, _)| asn)
    }
}

impl From<&RoutingTable> for FrozenTable {
    fn from(table: &RoutingTable) -> Self {
        FrozenTable::from_announcements(table.announcements())
    }
}

/// Shared state behind an [`AsnView`]: the current snapshot plus an
/// epoch counter readers poll without taking the lock.
#[derive(Debug)]
struct ViewSlot {
    epoch: AtomicU64,
    table: RwLock<Arc<FrozenTable>>,
}

/// A handle to an atomically swappable [`FrozenTable`] snapshot.
///
/// The owner (pipeline, daemon) keeps the `AsnView` and calls
/// [`swap`](AsnView::swap) when a new routing table arrives; each LookUp
/// worker calls [`reader`](AsnView::reader) once and does per-record
/// lookups through its [`AsnReader`], which costs one relaxed atomic
/// load per record while the table is stable.
#[derive(Debug, Clone)]
pub struct AsnView {
    slot: Arc<ViewSlot>,
}

impl AsnView {
    /// A view initially serving `table`.
    pub fn new(table: FrozenTable) -> Self {
        AsnView {
            slot: Arc::new(ViewSlot {
                epoch: AtomicU64::new(0),
                table: RwLock::new(Arc::new(table)),
            }),
        }
    }

    /// Install a new snapshot. Readers pick it up on their next lookup.
    pub fn swap(&self, table: FrozenTable) {
        *self.slot.table.write() = Arc::new(table);
        self.slot.epoch.fetch_add(1, Ordering::Release);
    }

    /// The current snapshot (for analyses that want the whole table).
    pub fn snapshot(&self) -> Arc<FrozenTable> {
        Arc::clone(&self.slot.table.read())
    }

    /// Number of swaps performed so far.
    pub fn epoch(&self) -> u64 {
        self.slot.epoch.load(Ordering::Acquire)
    }

    /// A per-worker reader caching the current snapshot.
    pub fn reader(&self) -> AsnReader {
        // Epoch BEFORE snapshot, mirroring `refresh_if_swapped` (swap
        // publishes the table before bumping the epoch): a swap landing
        // between the two reads leaves the reader holding the *new*
        // table under the old epoch, and the first lookup harmlessly
        // re-refreshes. The inverted order could tag the old table with
        // the new epoch and serve it until the next swap.
        let seen_epoch = self.epoch();
        AsnReader {
            cached: self.snapshot(),
            seen_epoch,
            slot: Arc::clone(&self.slot),
        }
    }
}

/// A worker-local reader over an [`AsnView`].
///
/// `origin_as` is lock-free while the view is stable: one relaxed epoch
/// load, then a lookup in the cached snapshot. Only when the owner has
/// swapped the table does the reader briefly take the view's read lock
/// to refresh its cache.
#[derive(Debug)]
pub struct AsnReader {
    cached: Arc<FrozenTable>,
    seen_epoch: u64,
    slot: Arc<ViewSlot>,
}

impl AsnReader {
    fn refresh_if_swapped(&mut self) {
        let epoch = self.slot.epoch.load(Ordering::Acquire);
        if epoch != self.seen_epoch {
            self.cached = Arc::clone(&self.slot.table.read());
            self.seen_epoch = epoch;
        }
    }

    /// The origin AS for `addr` in the latest snapshot, if known.
    pub fn origin_as(&mut self, addr: IpAddr) -> Option<u32> {
        self.refresh_if_swapped();
        self.cached.origin_as(addr)
    }

    /// Longest-prefix-match in the latest snapshot.
    pub fn lookup(&mut self, addr: IpAddr) -> Option<(u32, u8)> {
        self.refresh_if_swapped();
        self.cached.lookup(addr)
    }

    /// The snapshot this reader currently serves from.
    pub fn table(&self) -> &FrozenTable {
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frozen(prefixes: &[(&str, u32)]) -> FrozenTable {
        FrozenTable::from_announcements(prefixes.iter().map(|&(p, asn)| Announcement {
            prefix: p.parse().unwrap(),
            origin_as: asn,
        }))
    }

    #[test]
    fn longest_prefix_wins_in_flat_form() {
        let t = frozen(&[
            ("100.64.0.0/10", 64500),
            ("100.64.8.0/24", 64501),
            ("100.64.8.128/25", 64502),
            ("2001:db8::/32", 64600),
            ("2001:db8:cd::/48", 64601),
        ]);
        assert_eq!(t.len(), 5);
        assert_eq!(t.origin_as("100.64.200.1".parse().unwrap()), Some(64500));
        assert_eq!(t.lookup("100.64.8.5".parse().unwrap()), Some((64501, 24)));
        assert_eq!(t.lookup("100.64.8.200".parse().unwrap()), Some((64502, 25)));
        assert_eq!(t.origin_as("198.51.100.1".parse().unwrap()), None);
        assert_eq!(t.origin_as("2001:db8:cd::9".parse().unwrap()), Some(64601));
        assert_eq!(t.origin_as("2001:db8:1::1".parse().unwrap()), Some(64600));
        assert_eq!(t.origin_as("2a00::1".parse().unwrap()), None);
    }

    #[test]
    fn host_bits_are_masked_even_when_bypassing_prefix_new() {
        use crate::prefix::Prefix;
        // A prefix built through the public fields, host bits set — the
        // frozen table must still answer like the trie.
        let rogue = Announcement {
            prefix: Prefix {
                network: "10.0.0.7".parse().unwrap(),
                len: 8,
            },
            origin_as: 42,
        };
        let mut trie = RoutingTable::new();
        trie.announce(rogue);
        let frozen = FrozenTable::from_announcements([rogue]);
        let probe: IpAddr = "10.99.1.2".parse().unwrap();
        assert_eq!(frozen.lookup(probe), trie.lookup(probe));
        assert_eq!(frozen.origin_as(probe), Some(42));
    }

    #[test]
    fn duplicate_prefix_keeps_the_last_announcement() {
        let t = frozen(&[("203.0.113.0/24", 64510), ("203.0.113.0/24", 65000)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.origin_as("203.0.113.1".parse().unwrap()), Some(65000));
    }

    #[test]
    fn default_route_and_empty_table() {
        let t = frozen(&[("0.0.0.0/0", 1)]);
        assert_eq!(t.lookup("8.8.8.8".parse().unwrap()), Some((1, 0)));
        assert_eq!(t.origin_as("::1".parse().unwrap()), None);
        let empty = FrozenTable::new();
        assert!(empty.is_empty());
        assert_eq!(empty.lookup("1.2.3.4".parse().unwrap()), None);
    }

    #[test]
    fn freeze_matches_trie_on_fixture() {
        let mut trie = RoutingTable::new();
        for (p, asn) in [
            ("10.0.0.0/8", 1u32),
            ("10.1.0.0/16", 2),
            ("10.1.2.0/24", 3),
            ("10.1.2.128/25", 4),
            ("0.0.0.0/0", 5),
            ("2001:db8::/32", 6),
        ] {
            trie.announce(Announcement {
                prefix: p.parse().unwrap(),
                origin_as: asn,
            });
        }
        let frozen = trie.freeze();
        assert_eq!(frozen.len(), trie.len());
        for addr in [
            "10.1.2.200",
            "10.1.2.1",
            "10.1.9.9",
            "10.200.0.1",
            "192.0.2.1",
            "2001:db8::77",
            "2a00::1",
        ] {
            let addr: IpAddr = addr.parse().unwrap();
            assert_eq!(frozen.lookup(addr), trie.lookup(addr), "addr {addr}");
        }
    }

    #[test]
    fn view_swap_is_visible_through_existing_readers() {
        let view = AsnView::new(frozen(&[("198.51.100.0/24", 100)]));
        let mut reader = view.reader();
        let probe: IpAddr = "198.51.100.7".parse().unwrap();
        assert_eq!(reader.origin_as(probe), Some(100));
        assert_eq!(view.epoch(), 0);
        view.swap(frozen(&[("198.51.100.0/24", 200)]));
        assert_eq!(view.epoch(), 1);
        assert_eq!(reader.origin_as(probe), Some(200));
        // A brand-new reader starts from the latest snapshot.
        assert_eq!(view.reader().origin_as(probe), Some(200));
        assert_eq!(view.snapshot().origin_as(probe), Some(200));
    }

    #[test]
    fn readers_are_independent_across_threads() {
        let view = AsnView::new(frozen(&[("203.0.113.0/24", 7)]));
        let probe: IpAddr = "203.0.113.9".parse().unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let view = view.clone();
                scope.spawn(move || {
                    let mut reader = view.reader();
                    for _ in 0..1000 {
                        assert!(reader.origin_as(probe).is_some());
                    }
                });
            }
            for asn in 8..32u32 {
                view.swap(frozen(&[("203.0.113.0/24", asn)]));
            }
        });
        assert_eq!(view.snapshot().origin_as(probe), Some(31));
    }
}
