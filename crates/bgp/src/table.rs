//! The routing table: longest-prefix-match from IP to origin AS.
//!
//! Implemented as a binary trie over address bits, one trie per address
//! family, which is the textbook structure real BGP software uses for its
//! RIB. Lookups walk the trie bit by bit and remember the last announced
//! node passed — that is the longest matching prefix.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::path::Path;

use flowdns_types::FlowDnsError;

use crate::frozen::FrozenTable;
use crate::prefix::{addr_bits, Prefix};

/// One announcement: a prefix originated by an AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Announcement {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The origin AS number.
    pub origin_as: u32,
}

#[derive(Debug, Default)]
struct TrieNode {
    children: [Option<Box<TrieNode>>; 2],
    /// Set when a prefix terminates at this node.
    origin_as: Option<u32>,
    prefix_len: u8,
}

/// A longest-prefix-match routing table for IPv4 and IPv6.
#[derive(Debug, Default)]
pub struct RoutingTable {
    v4: TrieNode,
    v6: TrieNode,
    announcements: usize,
}

impl RoutingTable {
    /// An empty table.
    pub fn new() -> Self {
        RoutingTable::default()
    }

    /// Number of announcements inserted (duplicates overwrite and are not
    /// double-counted).
    pub fn len(&self) -> usize {
        self.announcements
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.announcements == 0
    }

    /// Insert (or refresh) an announcement.
    pub fn announce(&mut self, announcement: Announcement) {
        let root = match announcement.prefix.network {
            IpAddr::V4(_) => &mut self.v4,
            IpAddr::V6(_) => &mut self.v6,
        };
        let mut node = root;
        for bit in announcement.prefix.bits() {
            let idx = usize::from(bit);
            node = node.children[idx].get_or_insert_with(Box::default);
        }
        if node.origin_as.is_none() {
            self.announcements += 1;
        }
        node.origin_as = Some(announcement.origin_as);
        node.prefix_len = announcement.prefix.len;
    }

    /// Longest-prefix-match lookup: the origin AS and matched prefix
    /// length for `addr`, if any announcement covers it.
    pub fn lookup(&self, addr: IpAddr) -> Option<(u32, u8)> {
        let root = match addr {
            IpAddr::V4(_) => &self.v4,
            IpAddr::V6(_) => &self.v6,
        };
        let mut best = root.origin_as.map(|asn| (asn, root.prefix_len));
        let mut node = root;
        for bit in addr_bits(addr) {
            match &node.children[usize::from(bit)] {
                Some(child) => {
                    if let Some(asn) = child.origin_as {
                        best = Some((asn, child.prefix_len));
                    }
                    node = child;
                }
                None => break,
            }
        }
        best
    }

    /// The origin AS for `addr`, if known.
    pub fn origin_as(&self, addr: IpAddr) -> Option<u32> {
        self.lookup(addr).map(|(asn, _)| asn)
    }

    /// Enumerate every announcement currently in the table, in no
    /// particular order. This is what [`RoutingTable::freeze`] compiles
    /// and what serialization walks.
    pub fn announcements(&self) -> Vec<Announcement> {
        let mut out = Vec::with_capacity(self.announcements);
        collect(&self.v4, 0u128, 0, false, &mut out);
        collect(&self.v6, 0u128, 0, true, &mut out);
        out
    }

    /// Compile the trie into a [`FrozenTable`] — the flat, lock-free form
    /// the live pipeline reads. The frozen snapshot answers every lookup
    /// identically but no longer accepts announcements.
    pub fn freeze(&self) -> FrozenTable {
        FrozenTable::from_announcements(self.announcements())
    }

    /// Parse a routing table from announcement text: one
    /// `prefix origin_as` pair per line (whitespace-separated), `#`
    /// comments and blank lines ignored. This is the format
    /// `flowdns-gen` emits and the `routing_table` config key loads.
    pub fn from_announcements_text(text: &str) -> Result<Self, FlowDnsError> {
        let mut table = RoutingTable::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(prefix), Some(asn), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(FlowDnsError::Config(format!(
                    "line {}: expected 'prefix origin_as'",
                    lineno + 1
                )));
            };
            let prefix: Prefix = prefix
                .parse()
                .map_err(|e| FlowDnsError::Config(format!("line {}: {e}", lineno + 1)))?;
            let origin_as: u32 = asn.parse().map_err(|_| {
                FlowDnsError::Config(format!("line {}: '{asn}' is not an AS number", lineno + 1))
            })?;
            table.announce(Announcement { prefix, origin_as });
        }
        Ok(table)
    }

    /// Read and parse an announcement file (see
    /// [`RoutingTable::from_announcements_text`] for the format).
    pub fn load_announcements<P: AsRef<Path>>(path: P) -> Result<Self, FlowDnsError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            FlowDnsError::Config(format!(
                "cannot read routing table '{}': {e}",
                path.display()
            ))
        })?;
        RoutingTable::from_announcements_text(&text)
    }

    /// Render the table as announcement text that
    /// [`RoutingTable::from_announcements_text`] parses back.
    pub fn to_announcements_text(&self) -> String {
        let mut lines: Vec<String> = self
            .announcements()
            .iter()
            .map(|a| format!("{} {}", a.prefix, a.origin_as))
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Announce a whole set of `/prefix_len` blocks covering `ips` for one
    /// AS: a convenience used by the experiment harness to align the
    /// routing table with the generated CDN universe.
    pub fn announce_ips(
        &mut self,
        ips: &[IpAddr],
        prefix_len_v4: u8,
        prefix_len_v6: u8,
        origin_as: u32,
    ) {
        for ip in ips {
            let len = match ip {
                IpAddr::V4(_) => prefix_len_v4,
                IpAddr::V6(_) => prefix_len_v6,
            };
            let prefix = Prefix::new(*ip, len).expect("valid prefix length");
            self.announce(Announcement { prefix, origin_as });
        }
    }
}

/// DFS over one family's trie, reconstructing each announced prefix from
/// the path bits. `bits` accumulates most-significant-first into the low
/// `depth` positions below the family width.
fn collect(node: &TrieNode, bits: u128, depth: u8, is_v6: bool, out: &mut Vec<Announcement>) {
    let width: u8 = if is_v6 { 128 } else { 32 };
    if let Some(origin_as) = node.origin_as {
        let network = if is_v6 {
            IpAddr::V6(Ipv6Addr::from(bits))
        } else {
            IpAddr::V4(Ipv4Addr::from(bits as u32))
        };
        let prefix = Prefix::new(network, depth).expect("depth bounded by family width");
        out.push(Announcement { prefix, origin_as });
    }
    if depth == width {
        return;
    }
    for (idx, child) in node.children.iter().enumerate() {
        if let Some(child) = child {
            let bit = (idx as u128) << (width - 1 - depth);
            collect(child, bits | bit, depth + 1, is_v6, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RoutingTable {
        let mut t = RoutingTable::new();
        for (p, asn) in [
            ("100.64.0.0/10", 64500u32),
            ("100.64.8.0/24", 64501),
            ("100.64.8.128/25", 64502),
            ("203.0.113.0/24", 64510),
            ("2001:db8::/32", 64600),
            ("2001:db8:cd::/48", 64601),
        ] {
            t.announce(Announcement {
                prefix: p.parse().unwrap(),
                origin_as: asn,
            });
        }
        t
    }

    #[test]
    fn longest_prefix_wins() {
        let t = table();
        assert_eq!(t.origin_as("100.64.200.1".parse().unwrap()), Some(64500));
        assert_eq!(t.origin_as("100.64.8.5".parse().unwrap()), Some(64501));
        assert_eq!(t.origin_as("100.64.8.200".parse().unwrap()), Some(64502));
        assert_eq!(t.lookup("100.64.8.200".parse().unwrap()), Some((64502, 25)));
        assert_eq!(t.origin_as("203.0.113.77".parse().unwrap()), Some(64510));
        assert_eq!(t.origin_as("198.51.100.1".parse().unwrap()), None);
    }

    #[test]
    fn ipv6_lookups_are_independent_of_ipv4() {
        let t = table();
        assert_eq!(t.origin_as("2001:db8:1::1".parse().unwrap()), Some(64600));
        assert_eq!(t.origin_as("2001:db8:cd::9".parse().unwrap()), Some(64601));
        assert_eq!(t.origin_as("2a00::1".parse().unwrap()), None);
    }

    #[test]
    fn duplicate_announcements_overwrite() {
        let mut t = table();
        let before = t.len();
        t.announce(Announcement {
            prefix: "203.0.113.0/24".parse().unwrap(),
            origin_as: 65000,
        });
        assert_eq!(t.len(), before);
        assert_eq!(t.origin_as("203.0.113.1".parse().unwrap()), Some(65000));
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = RoutingTable::new();
        t.announce(Announcement {
            prefix: "0.0.0.0/0".parse().unwrap(),
            origin_as: 1,
        });
        assert_eq!(t.origin_as("8.8.8.8".parse().unwrap()), Some(1));
        assert_eq!(t.origin_as("::1".parse().unwrap()), None);
    }

    #[test]
    fn announce_ips_covers_the_given_addresses() {
        let mut t = RoutingTable::new();
        let ips: Vec<IpAddr> = vec![
            "100.70.1.5".parse().unwrap(),
            "100.70.2.9".parse().unwrap(),
            "2001:db8:cd::77".parse().unwrap(),
        ];
        t.announce_ips(&ips, 24, 48, 64999);
        for ip in &ips {
            assert_eq!(t.origin_as(*ip), Some(64999));
        }
        // A sibling address in the same /24 is also covered.
        assert_eq!(t.origin_as("100.70.1.200".parse().unwrap()), Some(64999));
        assert!(!t.is_empty());
    }

    #[test]
    fn announcements_enumerate_the_whole_table() {
        let t = table();
        let mut listed: Vec<String> = t
            .announcements()
            .iter()
            .map(|a| format!("{} {}", a.prefix, a.origin_as))
            .collect();
        listed.sort();
        assert_eq!(
            listed,
            vec![
                "100.64.0.0/10 64500",
                "100.64.8.0/24 64501",
                "100.64.8.128/25 64502",
                "2001:db8::/32 64600",
                "2001:db8:cd::/48 64601",
                "203.0.113.0/24 64510",
            ]
        );
        assert_eq!(t.announcements().len(), t.len());
    }

    #[test]
    fn announcement_text_round_trips() {
        let t = table();
        let text = t.to_announcements_text();
        let parsed = RoutingTable::from_announcements_text(&text).unwrap();
        assert_eq!(parsed.len(), t.len());
        for probe in ["100.64.8.200", "203.0.113.77", "2001:db8:cd::9", "8.8.8.8"] {
            let addr: IpAddr = probe.parse().unwrap();
            assert_eq!(parsed.lookup(addr), t.lookup(addr), "addr {addr}");
        }
        // Comments and blank lines are tolerated; junk is not.
        let ok = RoutingTable::from_announcements_text("# rib dump\n\n10.0.0.0/8 64496\n");
        assert_eq!(
            ok.unwrap().origin_as("10.1.2.3".parse().unwrap()),
            Some(64496)
        );
        assert!(RoutingTable::from_announcements_text("10.0.0.0/8").is_err());
        assert!(RoutingTable::from_announcements_text("10.0.0.0/8 AS1").is_err());
        assert!(RoutingTable::from_announcements_text("10.0.0.0/8 1 extra").is_err());
        assert!(RoutingTable::from_announcements_text("10.0.0.0/99 1").is_err());
    }

    #[test]
    fn load_announcements_reads_a_file() {
        let dir = std::env::temp_dir().join("flowdns-bgp-table-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rib.txt");
        std::fs::write(&path, table().to_announcements_text()).unwrap();
        let loaded = RoutingTable::load_announcements(&path).unwrap();
        assert_eq!(loaded.len(), table().len());
        assert!(RoutingTable::load_announcements("/nonexistent/rib.txt").is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_table_matches_nothing() {
        let t = RoutingTable::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup("1.2.3.4".parse().unwrap()), None);
    }
}
