//! IP prefixes.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

use flowdns_types::FlowDnsError;

/// An IPv4 or IPv6 prefix (address + mask length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    /// Network address (host bits are zeroed on construction).
    pub network: IpAddr,
    /// Prefix length in bits.
    pub len: u8,
}

impl Prefix {
    /// Build a prefix, zeroing host bits. Returns an error if `len`
    /// exceeds the address family's bit width.
    pub fn new(addr: IpAddr, len: u8) -> Result<Self, FlowDnsError> {
        let max = match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        if len > max {
            return Err(FlowDnsError::Config(format!(
                "prefix length {len} exceeds {max}"
            )));
        }
        Ok(Prefix {
            network: mask_addr(addr, len),
            len,
        })
    }

    /// The number of bits in this prefix's address family.
    pub fn family_bits(&self) -> u8 {
        match self.network {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        }
    }

    /// Does the prefix contain `addr`? Different address families never
    /// contain one another.
    pub fn contains(&self, addr: IpAddr) -> bool {
        match (self.network, addr) {
            (IpAddr::V4(_), IpAddr::V4(_)) | (IpAddr::V6(_), IpAddr::V6(_)) => {
                mask_addr(addr, self.len) == self.network
            }
            _ => false,
        }
    }

    /// The first `self.len` bits of the network address, as an iterator of
    /// booleans (most significant first). Used by the trie.
    pub fn bits(&self) -> impl Iterator<Item = bool> + '_ {
        addr_bits(self.network).take(self.len as usize)
    }
}

/// The bits of an address, most significant first.
pub(crate) fn addr_bits(addr: IpAddr) -> impl Iterator<Item = bool> {
    let bytes: Vec<u8> = match addr {
        IpAddr::V4(v4) => v4.octets().to_vec(),
        IpAddr::V6(v6) => v6.octets().to_vec(),
    };
    bytes
        .into_iter()
        .flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
}

fn mask_addr(addr: IpAddr, len: u8) -> IpAddr {
    match addr {
        IpAddr::V4(v4) => {
            let raw = u32::from(v4);
            let mask = if len == 0 {
                0
            } else {
                u32::MAX << (32 - len as u32)
            };
            IpAddr::V4(Ipv4Addr::from(raw & mask))
        }
        IpAddr::V6(v6) => {
            let raw = u128::from(v6);
            let mask = if len == 0 {
                0
            } else {
                u128::MAX << (128 - len as u32)
            };
            IpAddr::V6(Ipv6Addr::from(raw & mask))
        }
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network, self.len)
    }
}

impl FromStr for Prefix {
    type Err = FlowDnsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| FlowDnsError::Config(format!("'{s}' is not an address/len prefix")))?;
        let addr: IpAddr = addr
            .parse()
            .map_err(|_| FlowDnsError::Config(format!("'{addr}' is not an IP address")))?;
        let len: u8 = len
            .parse()
            .map_err(|_| FlowDnsError::Config(format!("'{len}' is not a prefix length")))?;
        Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_masks_host_bits() {
        let p: Prefix = "192.0.2.77/24".parse().unwrap();
        assert_eq!(p.network, "192.0.2.0".parse::<IpAddr>().unwrap());
        assert_eq!(p.to_string(), "192.0.2.0/24");
        let p6: Prefix = "2001:db8::ffff/32".parse().unwrap();
        assert_eq!(p6.network, "2001:db8::".parse::<IpAddr>().unwrap());
    }

    #[test]
    fn containment() {
        let p: Prefix = "100.64.0.0/10".parse().unwrap();
        assert!(p.contains("100.64.1.2".parse().unwrap()));
        assert!(p.contains("100.127.255.255".parse().unwrap()));
        assert!(!p.contains("100.128.0.0".parse().unwrap()));
        assert!(!p.contains("2001:db8::1".parse().unwrap()));
        let v6: Prefix = "2001:db8:cd::/48".parse().unwrap();
        assert!(v6.contains("2001:db8:cd::42".parse().unwrap()));
        assert!(!v6.contains("2001:db8:ce::42".parse().unwrap()));
    }

    #[test]
    fn zero_length_prefix_contains_everything_in_family() {
        let p = Prefix::new("0.0.0.0".parse().unwrap(), 0).unwrap();
        assert!(p.contains("255.255.255.255".parse().unwrap()));
        assert!(!p.contains("::1".parse().unwrap()));
    }

    #[test]
    fn invalid_prefixes_are_rejected() {
        assert!("192.0.2.0/33".parse::<Prefix>().is_err());
        assert!("2001:db8::/129".parse::<Prefix>().is_err());
        assert!("not-an-ip/24".parse::<Prefix>().is_err());
        assert!("192.0.2.0".parse::<Prefix>().is_err());
        assert!("192.0.2.0/abc".parse::<Prefix>().is_err());
    }

    #[test]
    fn bits_iteration_matches_prefix_length() {
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        let bits: Vec<bool> = p.bits().collect();
        assert_eq!(bits.len(), 24);
        // 192 = 11000000
        assert_eq!(
            &bits[..8],
            &[true, true, false, false, false, false, false, false]
        );
    }
}
