//! Property tests: the flat [`FrozenTable`] must agree with the trie
//! [`RoutingTable`] on every lookup, for random announcement sets that
//! deliberately include overlapping (nested) prefixes, across both
//! address families, and across the announcement-text round trip.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use flowdns_bgp::{Announcement, Prefix, RoutingTable};
use proptest::prelude::*;

/// Derive a v4 announcement pair from one seed: the prefix itself plus a
/// shorter nested ancestor, so overlap is guaranteed in every case.
fn v4_announcements(seed: u64) -> Vec<Announcement> {
    let bits = (seed >> 16) as u32;
    let len = (seed % 33) as u8;
    let ancestor_len = len / 2;
    let asn = ((seed >> 48) as u32 & 0xffff) + 1;
    let mk = |len: u8, asn: u32| Announcement {
        prefix: Prefix::new(IpAddr::V4(Ipv4Addr::from(bits)), len).expect("len <= 32"),
        origin_as: asn,
    };
    vec![mk(len, asn), mk(ancestor_len, asn + 1)]
}

/// Same construction over 128-bit addresses.
fn v6_announcements(hi: u64, lo: u64) -> Vec<Announcement> {
    let bits = (hi as u128) << 64 | lo as u128;
    let len = (lo % 129) as u8;
    let ancestor_len = len / 3;
    let asn = ((hi >> 32) as u32 & 0xffff) + 1;
    let mk = |len: u8, asn: u32| Announcement {
        prefix: Prefix::new(IpAddr::V6(Ipv6Addr::from(bits)), len).expect("len <= 128"),
        origin_as: asn,
    };
    vec![mk(len, asn), mk(ancestor_len, asn + 1)]
}

fn assert_tables_agree(trie: &RoutingTable, probes: impl IntoIterator<Item = IpAddr>) {
    let frozen = trie.freeze();
    assert_eq!(frozen.len(), trie.len());
    for addr in probes {
        assert_eq!(frozen.lookup(addr), trie.lookup(addr), "addr {addr}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn frozen_matches_trie_for_v4(
        seeds in proptest::collection::vec(any::<u64>(), 1..24),
        probes in proptest::collection::vec(any::<u32>(), 1..48),
    ) {
        let mut trie = RoutingTable::new();
        let mut targeted: Vec<IpAddr> = Vec::new();
        for seed in seeds {
            for a in v4_announcements(seed) {
                // Probe inside every announced prefix (the network address
                // and its max-host sibling) so hits are guaranteed, then
                // announce — order mirrors a live feed.
                let IpAddr::V4(net) = a.prefix.network else { unreachable!() };
                let span = if a.prefix.len == 32 { 0 } else { u32::MAX >> a.prefix.len };
                targeted.push(IpAddr::V4(net));
                targeted.push(IpAddr::V4(Ipv4Addr::from(u32::from(net) | span)));
                trie.announce(a);
            }
        }
        let random = probes.into_iter().map(|p| IpAddr::V4(Ipv4Addr::from(p)));
        assert_tables_agree(&trie, targeted.into_iter().chain(random));
    }

    #[test]
    fn frozen_matches_trie_for_v6(
        his in proptest::collection::vec(any::<u64>(), 1..16),
        los in proptest::collection::vec(any::<u64>(), 1..16),
        probe_hi in any::<u64>(),
    ) {
        let mut trie = RoutingTable::new();
        let mut targeted: Vec<IpAddr> = Vec::new();
        for (&hi, &lo) in his.iter().zip(los.iter()) {
            for a in v6_announcements(hi, lo) {
                let IpAddr::V6(net) = a.prefix.network else { unreachable!() };
                let span = if a.prefix.len == 128 { 0 } else { u128::MAX >> a.prefix.len };
                targeted.push(IpAddr::V6(net));
                targeted.push(IpAddr::V6(Ipv6Addr::from(u128::from(net) | span)));
                trie.announce(a);
            }
        }
        let random = los
            .iter()
            .map(|&lo| IpAddr::V6(Ipv6Addr::from((probe_hi as u128) << 64 | lo as u128)));
        assert_tables_agree(&trie, targeted.into_iter().chain(random));
    }

    #[test]
    fn families_do_not_leak_into_each_other(seed in any::<u64>(), probe in any::<u32>()) {
        let mut trie = RoutingTable::new();
        for a in v4_announcements(seed) {
            trie.announce(a);
        }
        let frozen = trie.freeze();
        // A v4-only table must never answer a v6 probe (including the
        // v4-mapped form of an announced address) — same as the trie.
        let mapped = IpAddr::V6(Ipv4Addr::from(probe).to_ipv6_mapped());
        prop_assert_eq!(frozen.lookup(mapped), None);
        prop_assert_eq!(trie.lookup(mapped), None);
    }

    #[test]
    fn text_round_trip_preserves_every_lookup(
        seeds in proptest::collection::vec(any::<u64>(), 1..16),
        probes in proptest::collection::vec(any::<u32>(), 1..32),
    ) {
        let mut trie = RoutingTable::new();
        for seed in seeds {
            for a in v4_announcements(seed) {
                trie.announce(a);
            }
        }
        let reparsed = RoutingTable::from_announcements_text(&trie.to_announcements_text())
            .expect("emitted text parses");
        prop_assert_eq!(reparsed.len(), trie.len());
        let frozen = reparsed.freeze();
        for p in probes {
            let addr = IpAddr::V4(Ipv4Addr::from(p));
            prop_assert_eq!(frozen.lookup(addr), trie.lookup(addr));
        }
    }
}
