//! Metric primitives: counters, gauges, and sharded log-bucketed
//! histograms.
//!
//! The bucketing scheme is shared with `flowdns_stream::latency`: four
//! sub-buckets per power of two across forty octaves, so any quantile
//! estimate errs high by at most one sub-bucket (≤ 12.5%). Values are
//! unitless `u64`s — microseconds for latency histograms, bytes for
//! size histograms; the unit lives in the metric name (`_us`, `_bytes`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-buckets per power of two (quantile error ≤ 1/8).
const SUB_BUCKETS: usize = 4;
/// Octaves covered: 2^40 spans 13 days of microseconds or a terabyte of
/// bytes — beyond any value the pipeline records.
const OCTAVES: usize = 40;
/// Total bucket count of every [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// Map a value to its bucket index.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        // The first octave holds 0..SUB_BUCKETS directly.
        return value as usize;
    }
    let octave = 63 - value.leading_zeros() as usize;
    // Top two mantissa bits after the leading one select the sub-bucket.
    let sub = ((value >> (octave - 2)) & 0b11) as usize;
    (SUB_BUCKETS + (octave - 2) * SUB_BUCKETS + sub).min(HISTOGRAM_BUCKETS - 1)
}

/// Upper bound of a bucket — what quantile estimation and the
/// Prometheus `le` labels report, so estimates are conservative.
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let log_index = index - SUB_BUCKETS;
    let octave = log_index / SUB_BUCKETS + 2;
    let sub = (log_index % SUB_BUCKETS) as u64;
    // Buckets in this octave span [2^octave, 2^(octave+1)) in 4 steps.
    (1u64 << octave) + (sub + 1) * (1u64 << (octave - 2)) - 1
}

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic, so the pipeline can hold a handle while the registry renders
/// the same value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        // ordering: monotonic stats counter read only by scrapes; no
        // other data is published through it, so no edge is needed.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down, stored as `f64` bits in an
/// atomic. Cloning shares the underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, value: f64) {
        // ordering: the gauge is an independent published value — the
        // f64 bits travel in the atomic itself, and readers never infer
        // other memory state from it.
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// One shard of a histogram: a private cache-line neighborhood for one
/// recording thread.
#[derive(Debug)]
struct HistogramShard {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl HistogramShard {
    fn new() -> Self {
        HistogramShard {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        // ordering: a snapshot derives its count from the bucket totals
        // themselves (there is no separate count field that could race
        // ahead of the buckets), so relaxed increments cannot produce an
        // incoherent snapshot — at worst a scrape misses in-flight
        // records, which Prometheus-style sampling tolerates.
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // ordering: same stats-only argument as the bucket add above.
        self.sum.fetch_add(value, Ordering::Relaxed);
    }
}

/// A log-bucketed histogram with sharded recording and merge-on-read.
///
/// Create one shard per recording thread and hand each thread its own
/// pre-allocated [`HistogramRecorder`]: recording is then two relaxed
/// `fetch_add`s to memory no other thread writes. [`Histogram::snapshot`]
/// merges all shards into one [`HistogramSnapshot`].
#[derive(Debug, Clone)]
pub struct Histogram {
    shards: Arc<Vec<HistogramShard>>,
}

impl Histogram {
    /// A histogram with `shards` recording shards (at least one).
    pub fn new(shards: usize) -> Self {
        Histogram {
            shards: Arc::new((0..shards.max(1)).map(|_| HistogramShard::new()).collect()),
        }
    }

    /// The recorder for shard `worker % shards` — pre-allocate one per
    /// worker thread before spawning it.
    pub fn recorder(&self, worker: usize) -> HistogramRecorder {
        HistogramRecorder {
            shards: Arc::clone(&self.shards),
            index: worker % self.shards.len(),
        }
    }

    /// Record into shard 0 (convenience for single-threaded callers).
    pub fn record(&self, value: u64) {
        // `new` guarantees at least one shard; `first()` keeps this
        // panic-free even if that invariant ever changes.
        if let Some(shard) = self.shards.first() {
            shard.record(value);
        }
    }

    /// Merge all shards into an owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        let mut sum = 0u64;
        for shard in self.shards.iter() {
            for (merged, bucket) in buckets.iter_mut().zip(&shard.buckets) {
                *merged += bucket.load(Ordering::Relaxed);
            }
            sum += shard.sum.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets, sum }
    }
}

/// A per-worker handle recording into one histogram shard.
#[derive(Debug, Clone)]
pub struct HistogramRecorder {
    shards: Arc<Vec<HistogramShard>>,
    index: usize,
}

impl HistogramRecorder {
    /// Record one value.
    pub fn record(&self, value: u64) {
        self.shards[self.index].record(value);
    }
}

/// An owned, merged copy of a histogram's counters with quantile
/// estimation. `Default` is the empty distribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (empty for the `Default` snapshot).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total values recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Estimate the `q`-quantile (0.0–1.0): the upper bound of the
    /// bucket holding the q·count-th value, erring high by at most one
    /// sub-bucket (≤ 12.5%). Returns 0 for an empty distribution.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return bucket_upper_bound(index);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_are_monotone_and_cover_the_range() {
        let mut last = 0;
        for v in [0u64, 1, 3, 4, 7, 8, 100, 1_000, 65_536, 10_000_000] {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index regressed at {v}");
            assert!(bucket_upper_bound(idx) >= v, "upper bound below value");
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Upper bounds are strictly increasing — the le="..." ladder of
        // the Prometheus exposition depends on it.
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1));
        }
    }

    #[test]
    fn quantiles_estimate_within_a_sub_bucket() {
        let hist = Histogram::new(2);
        let rec = hist.recorder(1);
        for v in 1..=1000u64 {
            rec.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 1000);
        assert!((450..=650).contains(&snap.p50()), "p50 {}", snap.p50());
        assert!((900..=1150).contains(&snap.p99()), "p99 {}", snap.p99());
        assert!(snap.p999() >= snap.p99());
        assert!((snap.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let snap = HistogramSnapshot::default();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(Histogram::new(1).snapshot().p50(), 0);
    }

    #[test]
    fn counter_and_gauge_share_state_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        let g2 = g.clone();
        g.set(2.5);
        assert_eq!(g2.get(), 2.5);
        g2.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    proptest! {
        /// Concurrent sharded recording never loses counts: the merged
        /// snapshot's total equals the number of records issued and the
        /// merged sum equals the sum of all recorded values.
        #[test]
        fn concurrent_recording_is_lossless(
            values in proptest::collection::vec(0u64..1_000_000, 1..400),
            threads in 1usize..5,
        ) {
            let hist = Histogram::new(threads);
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let rec = hist.recorder(t);
                    let values = values.clone();
                    std::thread::spawn(move || {
                        for v in values {
                            rec.record(v);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let snap = hist.snapshot();
            prop_assert_eq!(snap.count(), (values.len() * threads) as u64);
            let expected_sum: u64 = values.iter().sum::<u64>() * threads as u64;
            prop_assert_eq!(snap.sum, expected_sum);
        }
    }
}
