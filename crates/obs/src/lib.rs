//! FlowDNS observability: the telemetry plane of the daemon.
//!
//! The paper pitches FlowDNS as an always-on ISP-scale service; an
//! operator of such a service needs to answer "what is p99 correlation
//! latency right now" and "which stage is dropping" without restarting
//! the daemon under a bench harness. This crate is that layer, built
//! from the standard library only (the build environment is offline):
//!
//! * [`MetricsRegistry`] — named counters, gauges and log-bucketed
//!   histograms, registered once and scraped many times. Counters and
//!   gauges can wrap either a registry-owned atomic or a closure over
//!   an atomic the pipeline already maintains, which makes the registry
//!   the *single read path*: the stderr stats lines and `/metrics` are
//!   formatted from the same samples and can never disagree.
//! * [`Histogram`] — HDR-style power-of-two sub-bucketed values with
//!   sharded per-thread recording ([`HistogramRecorder`]) and
//!   merge-on-read snapshots; recording is two relaxed atomic adds on
//!   an uncontended cache line.
//! * [`MetricsServer`] — a tiny hand-rolled blocking HTTP/1.1 listener
//!   serving `/metrics` (Prometheus text exposition), `/healthz`
//!   (queue-saturation and egress-error aware) and `/stats.json`.
//! * [`FlightRecorder`] — a sampled flow tracer: 1-in-N flows carry a
//!   trace token through decode → queue → lookup → ASN-stamp → egress
//!   and emit one JSONL span record to a size-bounded ring file.
//!
//! See `docs/OBSERVABILITY.md` for every exported metric and the span
//! schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod registry;
pub mod server;
pub mod trace;

pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramRecorder,
    HistogramSnapshot, HISTOGRAM_BUCKETS,
};
pub use registry::{MetricsRegistry, RegistrySnapshot, SampleValue, SampledSeries};
pub use server::{HealthCheck, HealthStatus, MetricsServer};
pub use trace::FlightRecorder;
