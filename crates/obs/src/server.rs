//! The embedded scrape endpoint: a tiny hand-rolled blocking HTTP/1.1
//! listener on `std::net::TcpListener` (this build links no HTTP crate).
//!
//! Routes:
//!
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4).
//! * `GET /healthz` — `200 ok` or `503` with a reason, from the health
//!   closure (queue saturation, egress errors).
//! * `GET /stats.json` — the JSON rendering of the registry.
//!
//! Scrapes are rare (seconds apart) and tiny, so connections are
//! handled inline on the accept thread with short socket timeouts; a
//! stalled scraper can delay the next scrape but never the pipeline.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::registry::MetricsRegistry;

/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// Per-connection socket read/write timeout.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(2);
/// Upper bound on the request head we will read.
const MAX_REQUEST_BYTES: usize = 4096;

/// What `/healthz` reports.
#[derive(Debug, Clone)]
pub struct HealthStatus {
    /// `true` → `200`, `false` → `503`.
    pub healthy: bool,
    /// Human-readable detail included in the body.
    pub detail: String,
}

impl HealthStatus {
    /// A healthy status with detail text.
    pub fn ok(detail: impl Into<String>) -> Self {
        HealthStatus {
            healthy: true,
            detail: detail.into(),
        }
    }

    /// An unhealthy status with a reason.
    pub fn unhealthy(reason: impl Into<String>) -> Self {
        HealthStatus {
            healthy: false,
            detail: reason.into(),
        }
    }
}

/// The health probe the server calls on every `/healthz` request.
pub type HealthCheck = Arc<dyn Fn() -> HealthStatus + Send + Sync>;

/// The embedded metrics endpoint. Dropping (or [`shutdown`]) stops the
/// accept loop and joins its thread.
///
/// [`shutdown`]: MetricsServer::shutdown
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (port 0 picks an ephemeral port) and start serving.
    pub fn start(
        addr: SocketAddr,
        registry: Arc<MetricsRegistry>,
        health: HealthCheck,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("flowdns-metrics".into())
            .spawn(move || accept_loop(listener, registry, health, thread_stop))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<MetricsRegistry>,
    health: HealthCheck,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Errors on one scrape connection must not take the
                // endpoint down.
                let _ = serve_connection(stream, &registry, &health);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    registry: &MetricsRegistry,
    health: &HealthCheck,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;

    // Read until the end of the request head (or the size cap).
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() >= MAX_REQUEST_BYTES {
            return respond(&mut stream, 400, "text/plain", "request too large\n");
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) => return Err(e),
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    // Ignore any query string: scrapers may append one.
    match path.split('?').next().unwrap_or("") {
        "/metrics" => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &registry.render_prometheus(),
        ),
        "/healthz" => {
            let status = health();
            let code = if status.healthy { 200 } else { 503 };
            let body = format!(
                "{}\n{}\n",
                if status.healthy { "ok" } else { "unhealthy" },
                status.detail
            );
            respond(&mut stream, code, "text/plain; charset=utf-8", &body)
        }
        "/stats.json" => respond(
            &mut stream,
            200,
            "application/json; charset=utf-8",
            &registry.render_json(),
        ),
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        write!(conn, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        let code: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .expect("status code");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (code, body)
    }

    #[test]
    fn serves_metrics_health_and_stats() {
        let registry = Arc::new(MetricsRegistry::new());
        let c = registry.counter("up_total", "Liveness counter.", &[]);
        c.add(3);
        let health: HealthCheck = Arc::new(|| HealthStatus::ok("all queues idle"));
        let server = MetricsServer::start(
            "127.0.0.1:0".parse().unwrap(),
            Arc::clone(&registry),
            health,
        )
        .expect("bind metrics server");
        let addr = server.local_addr();

        let (code, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("# TYPE up_total counter"));
        assert!(body.contains("up_total 3"));

        let (code, body) = get(addr, "/healthz");
        assert_eq!(code, 200);
        assert!(body.starts_with("ok\n"));
        assert!(body.contains("all queues idle"));

        let (code, body) = get(addr, "/stats.json");
        assert_eq!(code, 200);
        assert!(body.trim_start().starts_with('{'));
        assert!(body.contains("\"up_total\""));

        let (code, _) = get(addr, "/nope");
        assert_eq!(code, 404);

        server.shutdown();
        // The port is released: a fresh bind on the same address works.
        let relisten = TcpListener::bind(addr);
        assert!(relisten.is_ok(), "server thread did not release the port");
    }

    #[test]
    fn unhealthy_probe_returns_503() {
        let registry = Arc::new(MetricsRegistry::new());
        let health: HealthCheck = Arc::new(|| HealthStatus::unhealthy("egress error: disk full"));
        let server =
            MetricsServer::start("127.0.0.1:0".parse().unwrap(), registry, health).unwrap();
        let (code, body) = get(server.local_addr(), "/healthz");
        assert_eq!(code, 503);
        assert!(body.contains("disk full"));
    }

    #[test]
    fn non_get_is_rejected() {
        let registry = Arc::new(MetricsRegistry::new());
        let health: HealthCheck = Arc::new(|| HealthStatus::ok(""));
        let server =
            MetricsServer::start("127.0.0.1:0".parse().unwrap(), registry, health).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        write!(conn, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
    }
}
