//! The flight recorder: sampled end-to-end flow traces.
//!
//! 1-in-N decoded flows are assigned a trace token
//! ([`FlightRecorder::maybe_start`]); the pipeline stamps the token at
//! each stage boundary and [`FlightRecorder::finish`] emits one JSONL
//! span record describing where that flow spent its time:
//!
//! ```json
//! {"trace_id":7,"decode_us":1201,"enqueue_us":3,"queue_wait_us":142,
//!  "lookup_us":11,"egress_us":89,"total_us":245,"asn_stamped":true,"shard":2}
//! ```
//!
//! `decode_us` is the absolute time since the recorder was created (a
//! timestamp); the remaining `*_us` fields are stage durations. The
//! output file is a bounded ring: when it exceeds the byte cap it is
//! renamed to `<path>.1` (replacing any previous one) and restarted, so
//! a week-long soak keeps the most recent spans without growing
//! unboundedly.
//!
//! Cost: sampling *off* is represented by not constructing a recorder
//! at all — flows carry `trace: None` and no code beyond a branch on an
//! `Option` runs. With sampling on, non-sampled flows cost one relaxed
//! `fetch_add`; sampled flows (1-in-N) take a short mutex to track the
//! span.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Most spans tracked at once; beyond this new samples are dropped (and
/// counted) rather than growing the map — a span leak (a flow dropped
/// at a bounded queue never reaches egress) must not become a memory
/// leak.
const MAX_ACTIVE_SPANS: usize = 4096;

/// Default byte cap of the ring file before rotation.
pub const DEFAULT_TRACE_MAX_BYTES: u64 = 8 * 1024 * 1024;

#[derive(Debug, Clone, Copy, Default)]
struct Span {
    decode_us: u64,
    enqueue_us: Option<u64>,
    dequeue_us: Option<u64>,
    lookup_us: Option<u64>,
    asn_stamped: bool,
}

#[derive(Debug)]
struct Inner {
    active: HashMap<u64, Span>,
    writer: BufWriter<File>,
    written_bytes: u64,
}

/// The sampled flow tracer. See the module docs for the span schema.
#[derive(Debug)]
pub struct FlightRecorder {
    sample_every: u64,
    seen: AtomicU64,
    next_id: AtomicU64,
    emitted: AtomicU64,
    dropped: AtomicU64,
    origin: Instant,
    path: PathBuf,
    max_bytes: u64,
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// Create (truncate) the trace file and a recorder sampling 1-in-
    /// `sample_every` flows. `sample_every` must be ≥ 1; "off" is
    /// represented by not creating a recorder.
    pub fn create(
        path: impl Into<PathBuf>,
        sample_every: u64,
        max_bytes: u64,
    ) -> std::io::Result<Self> {
        let path = path.into();
        let writer = BufWriter::new(File::create(&path)?);
        Ok(FlightRecorder {
            sample_every: sample_every.max(1),
            seen: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            emitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            origin: Instant::now(),
            path,
            max_bytes: max_bytes.max(4096),
            inner: Mutex::new(Inner {
                active: HashMap::new(),
                writer,
                written_bytes: 0,
            }),
        })
    }

    /// The configured sampling interval.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// The trace file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Count one decoded flow; every `sample_every`-th call starts a
    /// span (stamped "decode" at the current time) and returns its
    /// trace token. Non-sampled flows cost one relaxed `fetch_add`.
    pub fn maybe_start(&self) -> Option<u64> {
        // ordering: pure sampling counter — only its own value matters,
        // no other memory is published through it.
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        if n % self.sample_every != 0 {
            return None;
        }
        let now = self.now_us();
        // ordering: unique-id ticket; uniqueness comes from the RMW
        // itself, and the span data travels under the mutex below.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Tracing must never take the pipeline down: recover a poisoned
        // lock (spans are diagnostics, the map stays usable).
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.active.len() >= MAX_ACTIVE_SPANS {
            // ordering: stats-only drop counter read by scrapes.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        inner.active.insert(
            id,
            Span {
                decode_us: now,
                ..Span::default()
            },
        );
        Some(id)
    }

    /// Stamp the listener→pipeline queue hand-off.
    pub fn stamp_enqueue(&self, id: u64) {
        let now = self.now_us();
        if let Some(span) = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .active
            .get_mut(&id)
        {
            span.enqueue_us = Some(now);
        }
    }

    /// Stamp the LookUp worker picking the flow off the queue.
    pub fn stamp_dequeue(&self, id: u64) {
        let now = self.now_us();
        if let Some(span) = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .active
            .get_mut(&id)
        {
            span.dequeue_us = Some(now);
        }
    }

    /// Stamp the end of correlation + BGP origin-AS stamping.
    pub fn stamp_lookup_done(&self, id: u64, asn_stamped: bool) {
        let now = self.now_us();
        if let Some(span) = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .active
            .get_mut(&id)
        {
            span.lookup_us = Some(now);
            span.asn_stamped = asn_stamped;
        }
    }

    /// Finish the span at egress: emit one JSONL record and forget the
    /// token. `shard` is the Write worker that persisted the record.
    pub fn finish(&self, id: u64, shard: usize) {
        let now = self.now_us();
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(span) = inner.active.remove(&id) else {
            return;
        };
        let enqueue = span.enqueue_us.unwrap_or(span.decode_us);
        let dequeue = span.dequeue_us.unwrap_or(enqueue);
        let lookup = span.lookup_us.unwrap_or(dequeue);
        let line = format!(
            "{{\"trace_id\":{id},\"decode_us\":{},\"enqueue_us\":{},\"queue_wait_us\":{},\
             \"lookup_us\":{},\"egress_us\":{},\"total_us\":{},\"asn_stamped\":{},\"shard\":{shard}}}\n",
            span.decode_us,
            enqueue - span.decode_us,
            dequeue - enqueue,
            lookup - dequeue,
            now - lookup,
            now - span.decode_us,
            span.asn_stamped,
        );
        if inner.writer.write_all(line.as_bytes()).is_ok() {
            inner.written_bytes += line.len() as u64;
            // Spans are rare; flushing each one keeps the file readable
            // while an operator tails it.
            let _ = inner.writer.flush();
            // ordering: stats-only counter read by scrapes; the span
            // bytes are published by the write + flush above.
            self.emitted.fetch_add(1, Ordering::Relaxed);
            if inner.written_bytes >= self.max_bytes {
                self.rotate(&mut inner);
            }
        }
    }

    /// Flush buffered spans (shutdown path).
    pub fn flush(&self) {
        let _ = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .writer
            .flush();
    }

    /// Spans written to the trace file so far.
    pub fn spans_emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Samples dropped because too many spans were in flight.
    pub fn spans_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Flows counted by [`maybe_start`](FlightRecorder::maybe_start).
    pub fn flows_seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Ring rotation: current file becomes `<path>.1` (replacing any
    /// previous generation), a fresh file takes its place. On rotation
    /// failure, keep writing to the (recreated) file rather than dying.
    fn rotate(&self, inner: &mut Inner) {
        let _ = inner.writer.flush();
        let mut rotated = self.path.clone().into_os_string();
        rotated.push(".1");
        let _ = std::fs::rename(&self.path, PathBuf::from(rotated));
        if let Ok(file) = File::create(&self.path) {
            inner.writer = BufWriter::new(file);
            inner.written_bytes = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("flowdns-obs-{}-{name}", std::process::id()))
    }

    #[test]
    fn samples_one_in_n_and_emits_complete_spans() {
        let path = temp_path("spans.jsonl");
        let recorder = FlightRecorder::create(&path, 4, DEFAULT_TRACE_MAX_BYTES).unwrap();
        let mut ids = Vec::new();
        for _ in 0..16 {
            if let Some(id) = recorder.maybe_start() {
                ids.push(id);
            }
        }
        assert_eq!(ids.len(), 4, "1-in-4 sampling of 16 flows");
        assert_eq!(recorder.flows_seen(), 16);
        for &id in &ids {
            recorder.stamp_enqueue(id);
            recorder.stamp_dequeue(id);
            recorder.stamp_lookup_done(id, true);
            recorder.finish(id, 2);
        }
        assert_eq!(recorder.spans_emitted(), 4);
        assert_eq!(recorder.spans_dropped(), 0);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            for key in [
                "\"trace_id\":",
                "\"decode_us\":",
                "\"queue_wait_us\":",
                "\"lookup_us\":",
                "\"egress_us\":",
                "\"total_us\":",
                "\"asn_stamped\":true",
                "\"shard\":2",
            ] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn finish_without_span_is_ignored_and_ring_rotates() {
        let path = temp_path("ring.jsonl");
        // A tiny cap (clamped to 4096) forces rotation quickly.
        let recorder = FlightRecorder::create(&path, 1, 0).unwrap();
        recorder.finish(999, 0); // unknown id: no-op
        assert_eq!(recorder.spans_emitted(), 0);
        for _ in 0..100 {
            let id = recorder.maybe_start().unwrap();
            recorder.finish(id, 0);
        }
        assert_eq!(recorder.spans_emitted(), 100);
        let mut rotated = path.clone().into_os_string();
        rotated.push(".1");
        let rotated = PathBuf::from(rotated);
        assert!(rotated.exists(), "ring never rotated");
        // Both generations together stay near the cap, not unbounded.
        let live = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let old = std::fs::metadata(&rotated).map(|m| m.len()).unwrap_or(0);
        assert!(live + old < 3 * 4096 + 1024, "ring grew unboundedly");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
    }

    #[test]
    fn active_span_cap_drops_not_grows() {
        let path = temp_path("cap.jsonl");
        let recorder = FlightRecorder::create(&path, 1, DEFAULT_TRACE_MAX_BYTES).unwrap();
        let mut started = 0u64;
        for _ in 0..(MAX_ACTIVE_SPANS as u64 + 100) {
            if recorder.maybe_start().is_some() {
                started += 1;
            }
        }
        assert_eq!(started, MAX_ACTIVE_SPANS as u64);
        assert_eq!(recorder.spans_dropped(), 100);
        let _ = std::fs::remove_file(&path);
    }
}
