//! The metrics registry: named series, registration, and rendering.
//!
//! Every series is either *owned* (a [`Counter`], [`Gauge`] or
//! [`Histogram`] handed back to the caller) or a *closure* over state
//! the pipeline already maintains (`counter_fn` / `gauge_fn` /
//! `histogram_fn`). The closure form is what makes the registry the
//! single source of truth: `flowdnsd`'s stderr lines and the
//! `/metrics` exposition both read through [`MetricsRegistry::snapshot`],
//! so they cannot disagree.

use std::collections::BTreeMap;
use std::fmt::Write as FmtWrite;
use std::sync::Mutex;

use crate::metrics::{bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot};

type CounterFn = Box<dyn Fn() -> u64 + Send + Sync>;
type GaugeFn = Box<dyn Fn() -> f64 + Send + Sync>;
type HistogramFn = Box<dyn Fn() -> HistogramSnapshot + Send + Sync>;

enum Source {
    Counter(Counter),
    CounterFn(CounterFn),
    Gauge(Gauge),
    GaugeFn(GaugeFn),
    Histogram(Histogram),
    HistogramFn(HistogramFn),
}

impl Source {
    fn kind(&self) -> &'static str {
        match self {
            Source::Counter(_) | Source::CounterFn(_) => "counter",
            Source::Gauge(_) | Source::GaugeFn(_) => "gauge",
            Source::Histogram(_) | Source::HistogramFn(_) => "histogram",
        }
    }
}

struct Series {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    source: Source,
}

/// A registry of named metric series. Registration happens once at
/// startup; scraping and stats reporting read through [`snapshot`],
/// [`render_prometheus`] or [`render_json`].
///
/// [`snapshot`]: MetricsRegistry::snapshot
/// [`render_prometheus`]: MetricsRegistry::render_prometheus
/// [`render_json`]: MetricsRegistry::render_json
#[derive(Default)]
pub struct MetricsRegistry {
    series: Mutex<Vec<Series>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // A panic under the registry lock (a user-supplied gauge closure
        // can run there) must not cascade into every later scrape:
        // recover the guard and keep serving.
        let series = self
            .series
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f.debug_struct("MetricsRegistry")
            .field("series", &series.len())
            .finish()
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
        && name.as_bytes().first().is_some_and(|b| !b.is_ascii_digit())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], source: Source) {
        assert!(valid_name(name), "invalid metric name '{name}'");
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| {
                assert!(valid_name(k), "invalid label name '{k}' on '{name}'");
                (k.to_string(), v.to_string())
            })
            .collect();
        // See Debug::fmt: recover rather than cascade a poisoned lock.
        let mut series = self
            .series
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for existing in series.iter() {
            if existing.name == name {
                assert_eq!(
                    existing.source.kind(),
                    source.kind(),
                    "metric '{name}' registered with two kinds"
                );
                assert_ne!(
                    existing.labels, labels,
                    "metric '{name}' registered twice with identical labels"
                );
            }
        }
        series.push(Series {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            source,
        });
    }

    /// Register an owned counter and return its handle.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let counter = Counter::new();
        self.register(name, help, labels, Source::Counter(counter.clone()));
        counter
    }

    /// Register a counter read from a closure (typically over an atomic
    /// the pipeline already maintains).
    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register(name, help, labels, Source::CounterFn(Box::new(f)));
    }

    /// Register an owned gauge and return its handle.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let gauge = Gauge::new();
        self.register(name, help, labels, Source::Gauge(gauge.clone()));
        gauge
    }

    /// Register a gauge read from a closure.
    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.register(name, help, labels, Source::GaugeFn(Box::new(f)));
    }

    /// Register an owned sharded histogram and return its handle.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        shards: usize,
    ) -> Histogram {
        let histogram = Histogram::new(shards);
        self.register(name, help, labels, Source::Histogram(histogram.clone()));
        histogram
    }

    /// Register a histogram whose merged snapshot comes from a closure
    /// (bridges external histograms that use the same bucket scheme).
    pub fn histogram_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> HistogramSnapshot + Send + Sync + 'static,
    ) {
        self.register(name, help, labels, Source::HistogramFn(Box::new(f)));
    }

    /// Sample every series once, consistently enough for reporting.
    pub fn snapshot(&self) -> RegistrySnapshot {
        // See Debug::fmt: recover rather than cascade a poisoned lock.
        let series = self
            .series
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        RegistrySnapshot {
            series: series
                .iter()
                .map(|s| SampledSeries {
                    name: s.name.clone(),
                    help: s.help.clone(),
                    labels: s.labels.clone(),
                    value: match &s.source {
                        Source::Counter(c) => SampleValue::Counter(c.get()),
                        Source::CounterFn(f) => SampleValue::Counter(f()),
                        Source::Gauge(g) => SampleValue::Gauge(g.get()),
                        Source::GaugeFn(f) => SampleValue::Gauge(f()),
                        Source::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                        Source::HistogramFn(f) => SampleValue::Histogram(f()),
                    },
                })
                .collect(),
        }
    }

    /// Render the Prometheus text exposition (format version 0.0.4).
    pub fn render_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }

    /// Render the `/stats.json` document.
    pub fn render_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// One sampled value.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A monotonic counter.
    Counter(u64),
    /// A point-in-time gauge.
    Gauge(f64),
    /// A merged histogram.
    Histogram(HistogramSnapshot),
}

/// One sampled series: identity plus value.
#[derive(Debug, Clone)]
pub struct SampledSeries {
    /// Metric family name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Label key/value pairs.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

impl SampledSeries {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A point-in-time sample of every registered series, with lookup
/// helpers for reporters (the `flowdnsd` stats lines read these).
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Every series, in registration order.
    pub series: Vec<SampledSeries>,
}

impl RegistrySnapshot {
    /// Sum of all counter series with this name (across label sets).
    pub fn counter(&self, name: &str) -> u64 {
        self.series
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// Sum of counter series with this name carrying `key = value`.
    pub fn counter_with(&self, name: &str, key: &str, value: &str) -> u64 {
        self.series
            .iter()
            .filter(|s| s.name == name && s.label(key) == Some(value))
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// First gauge with this name, if any.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.name == name)
            .and_then(|s| match s.value {
                SampleValue::Gauge(v) => Some(v),
                _ => None,
            })
    }

    /// Sum of gauge series with this name (e.g. total queue depth over
    /// per-shard gauges).
    pub fn gauge_sum(&self, name: &str) -> f64 {
        self.series
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match s.value {
                SampleValue::Gauge(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// Gauge with this name carrying `key = value`, if any.
    pub fn gauge_with(&self, name: &str, key: &str, value: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.name == name && s.label(key) == Some(value))
            .and_then(|s| match s.value {
                SampleValue::Gauge(v) => Some(v),
                _ => None,
            })
    }

    /// First histogram with this name, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.series
            .iter()
            .find(|s| s.name == name)
            .and_then(|s| match &s.value {
                SampleValue::Histogram(h) => Some(h),
                _ => None,
            })
    }

    /// Histogram with this name carrying `key = value`, if any.
    pub fn histogram_with(&self, name: &str, key: &str, value: &str) -> Option<&HistogramSnapshot> {
        self.series
            .iter()
            .find(|s| s.name == name && s.label(key) == Some(value))
            .and_then(|s| match &s.value {
                SampleValue::Histogram(h) => Some(h),
                _ => None,
            })
    }

    /// Render as Prometheus text exposition: `# HELP`/`# TYPE` once per
    /// family, label values escaped, histogram buckets cumulative.
    pub fn to_prometheus(&self) -> String {
        // Group by family name, preserving registration order.
        let mut families: Vec<(&str, Vec<&SampledSeries>)> = Vec::new();
        let mut index: BTreeMap<&str, usize> = BTreeMap::new();
        for s in &self.series {
            match index.get(s.name.as_str()) {
                Some(&i) => families[i].1.push(s),
                None => {
                    index.insert(&s.name, families.len());
                    families.push((&s.name, vec![s]));
                }
            }
        }
        let mut out = String::new();
        for (name, members) in families {
            // Every family is created with one member; `else` is for the
            // linter and for robustness if the grouping above changes.
            let Some(&first) = members.first() else {
                continue;
            };
            let kind = match first.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&first.help));
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for s in members {
                match &s.value {
                    SampleValue::Counter(v) => {
                        let _ = writeln!(out, "{name}{} {v}", label_block(&s.labels, None));
                    }
                    SampleValue::Gauge(v) => {
                        let _ =
                            writeln!(out, "{name}{} {}", label_block(&s.labels, None), fnum(*v));
                    }
                    SampleValue::Histogram(h) => {
                        // Cumulative counts at each *occupied* bucket
                        // bound plus +Inf: any subset of bounds is a
                        // valid exposition because bucket values are
                        // cumulative, and skipping the empty tail keeps
                        // the page compact.
                        let mut cumulative = 0u64;
                        for (i, &bucket) in h.buckets.iter().enumerate() {
                            if bucket == 0 {
                                continue;
                            }
                            cumulative += bucket;
                            let le = bucket_upper_bound(i).to_string();
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                label_block(&s.labels, Some(&le))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            label_block(&s.labels, Some("+Inf"))
                        );
                        let _ =
                            writeln!(out, "{name}_sum{} {}", label_block(&s.labels, None), h.sum);
                        let _ = writeln!(
                            out,
                            "{name}_count{} {cumulative}",
                            label_block(&s.labels, None)
                        );
                    }
                }
            }
        }
        out
    }

    /// Render as the `/stats.json` document: one entry per series, with
    /// histograms summarized to count/sum/p50/p99/p999.
    pub fn to_json(&self) -> String {
        let mut entries = Vec::with_capacity(self.series.len());
        for s in &self.series {
            let mut labels = String::new();
            for (i, (k, v)) in s.labels.iter().enumerate() {
                if i > 0 {
                    labels.push_str(", ");
                }
                let _ = write!(labels, "\"{}\": \"{}\"", escape_json(k), escape_json(v));
            }
            let body = match &s.value {
                SampleValue::Counter(v) => format!("\"type\": \"counter\", \"value\": {v}"),
                SampleValue::Gauge(v) => format!("\"type\": \"gauge\", \"value\": {}", fnum(*v)),
                SampleValue::Histogram(h) => format!(
                    "\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \
                     \"p50\": {}, \"p99\": {}, \"p999\": {}",
                    h.count(),
                    h.sum,
                    h.p50(),
                    h.p99(),
                    h.p999()
                ),
            };
            entries.push(format!(
                "    {{\"name\": \"{}\", \"labels\": {{{labels}}}, {body}}}",
                escape_json(&s.name)
            ));
        }
        format!("{{\n  \"metrics\": [\n{}\n  ]\n}}\n", entries.join(",\n"))
    }
}

/// Render a float the exposition can carry: integers without a
/// fractional part, non-finite values as Prometheus spells them.
fn fnum(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x.is_infinite() {
        if x > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.0}")
    } else {
        format!("{x}")
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_json(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\t', "\\t")
}

/// Format `{k="v",...}` (with the optional `le` bound appended), or an
/// empty string when there are no labels.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The golden exposition test: exact expected output for a small
    /// registry covering all three kinds, escaping, and label sets.
    #[test]
    fn golden_prometheus_exposition() {
        let registry = MetricsRegistry::new();
        let c = registry.counter(
            "flowdns_test_flows_total",
            "Flows seen.\nSecond line with a back\\slash.",
            &[("listener", "0")],
        );
        c.add(41);
        c.inc();
        registry.counter_fn(
            "flowdns_test_flows_total",
            "Flows seen.",
            &[("listener", "quo\"te")],
            || 7,
        );
        let g = registry.gauge("flowdns_test_depth", "Queue depth.", &[]);
        g.set(3.0);
        let h = registry.histogram("flowdns_test_wait_us", "Queue wait.", &[], 1);
        h.record(0);
        h.record(5);
        h.record(5);
        h.record(1_000);

        let text = registry.render_prometheus();
        let expected = "\
# HELP flowdns_test_flows_total Flows seen.\\nSecond line with a back\\\\slash.
# TYPE flowdns_test_flows_total counter
flowdns_test_flows_total{listener=\"0\"} 42
flowdns_test_flows_total{listener=\"quo\\\"te\"} 7
# HELP flowdns_test_depth Queue depth.
# TYPE flowdns_test_depth gauge
flowdns_test_depth 3
# HELP flowdns_test_wait_us Queue wait.
# TYPE flowdns_test_wait_us histogram
flowdns_test_wait_us_bucket{le=\"0\"} 1
flowdns_test_wait_us_bucket{le=\"5\"} 3
flowdns_test_wait_us_bucket{le=\"1023\"} 4
flowdns_test_wait_us_bucket{le=\"+Inf\"} 4
flowdns_test_wait_us_sum 1010
flowdns_test_wait_us_count 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("h_us", "h", &[], 4);
        for worker in 0..4 {
            let rec = h.recorder(worker);
            for v in [1u64, 10, 100, 1_000, 10_000, 100_000] {
                rec.record(v);
            }
        }
        let text = registry.render_prometheus();
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines().filter(|l| l.starts_with("h_us_bucket")) {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= last, "bucket counts must be cumulative: {line}");
            last = value;
            bucket_lines += 1;
        }
        assert!(bucket_lines >= 6);
        assert_eq!(last, 24);
        assert!(text.contains("h_us_count 24"));
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let registry = MetricsRegistry::new();
        registry.counter_fn("c_total", "c", &[("shard", "0")], || 10);
        registry.counter_fn("c_total", "c", &[("shard", "1")], || 5);
        registry.gauge_fn("g", "g", &[("queue", "fillup")], || 2.0);
        registry.gauge_fn("g", "g", &[("queue", "lookup")], || 3.0);
        registry.histogram_fn("h_us", "h", &[], HistogramSnapshot::default);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c_total"), 15);
        assert_eq!(snap.counter_with("c_total", "shard", "1"), 5);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge_with("g", "queue", "lookup"), Some(3.0));
        assert_eq!(snap.gauge_sum("g"), 5.0);
        assert_eq!(snap.histogram("h_us").unwrap().count(), 0);
        assert!(snap.histogram("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "two kinds")]
    fn mixed_kind_registration_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("m", "m", &[]);
        let _ = registry.gauge("m", "m", &[]);
    }

    #[test]
    #[should_panic(expected = "identical labels")]
    fn duplicate_series_registration_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("m", "m", &[("a", "b")]);
        let _ = registry.counter("m", "m", &[("a", "b")]);
    }

    #[test]
    fn json_document_lists_every_series() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("c_total", "c", &[("k", "v")]);
        c.add(2);
        let g = registry.gauge("g", "g", &[]);
        g.set(1.5);
        let h = registry.histogram("h_us", "h", &[], 1);
        h.record(100);
        let json = registry.render_json();
        assert!(json.contains("\"name\": \"c_total\""));
        assert!(json.contains("\"value\": 2"));
        assert!(json.contains("\"k\": \"v\""));
        assert!(json.contains("\"value\": 1.5"));
        assert!(json.contains("\"type\": \"histogram\""));
        assert!(json.contains("\"count\": 1"));
    }
}
