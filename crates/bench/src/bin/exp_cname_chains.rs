//! Figure 6 / Appendix A.4: CNAME chain length distribution.
//!
//! Paper: more than 99% of DNS records can be resolved with a chain of at
//! most 6 look-ups, which is why FlowDNS caps the chain-following loop at
//! 6.
//!
//! The chain length of a correlated flow equals the number of CNAME hops
//! between the A-record owner and the customer-facing name; we measure it
//! two ways: (a) from the generator's universe (the ground-truth chain of
//! every service weighted by its traffic) and (b) from the chains FlowDNS
//! actually resolved during a Main-variant run (shorter on average because
//! multi-hop resolutions are memoized).
//!
//! Usage: `exp_cname_chains [hours]` (default: 4).

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns_analysis::{render_series, Ecdf};
use flowdns_bench::{experiment_workload, run_variant_with};
use flowdns_core::Variant;

fn main() {
    let hours = flowdns_bench::hours_arg(4);
    let workload = experiment_workload(hours, 45.0);
    println!("== Figure 6: CNAME chain length ECDF ({hours} simulated hours) ==");

    // (a) ground-truth chain length per correlated flow.
    let mut ground_truth: Vec<u64> = Vec::new();
    // (b) chain hops FlowDNS actually performed (memoization shortens them).
    let mut resolved: Vec<u64> = Vec::new();

    let universe = workload.universe().clone();
    let outcome = run_variant_with(Variant::Main, &workload, |record| {
        if !record.is_correlated() {
            return;
        }
        resolved.push(record.outcome.chain_length() as u64);
        if let Some(service) = universe
            .services
            .iter()
            .find(|s| flowdns_bench::outcome_matches_service(&record.outcome, s))
        {
            ground_truth.push(service.cname_chain.len() as u64);
        }
    });

    let points: Vec<f64> = (0..=12).map(|i| i as f64).collect();
    let truth_ecdf = Ecdf::from_counts(ground_truth.iter().copied());
    let resolved_ecdf = Ecdf::from_counts(resolved.iter().copied());
    println!("-- ground-truth chain lengths (per correlated flow) --");
    println!(
        "{}",
        render_series("chain_length", "ecdf", &truth_ecdf.series(&points))
    );
    println!("-- chains actually followed by FlowDNS (memoized) --");
    println!(
        "{}",
        render_series("chain_length", "ecdf", &resolved_ecdf.series(&points))
    );

    println!("paper    : >99% of records resolvable within 6 look-ups (loop limit = 6)");
    println!(
        "measured : {:.2}% of ground-truth chains <= 6 hops over {} correlated flows ({} records looked up)",
        truth_ecdf.fraction_at_or_below(6.0) * 100.0,
        ground_truth.len(),
        outcome.report.metrics.write.records_written
    );
}
