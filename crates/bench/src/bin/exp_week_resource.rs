//! Figure 2: CPU and memory usage of the Main benchmark over a week,
//! plotted against traffic volume (diurnal pattern).
//!
//! Paper: CPU around 2500% (≈25 cores), memory oscillating between 15 and
//! 30 GB, all three curves showing clear diurnal peaks in the evening.
//!
//! Usage: `exp_week_resource [hours]` (default: 72 simulated hours; pass
//! 168 for the full week).

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns_analysis::render_table;
use flowdns_bench::{experiment_workload, run_variant};
use flowdns_core::Variant;

fn main() {
    let hours = flowdns_bench::hours_arg(72);
    let workload = experiment_workload(hours, 45.0);
    println!("== Figure 2: Main-variant resource usage over {hours} simulated hours ==");
    let outcome = run_variant(Variant::Main, &workload);

    let max_bytes = outcome
        .hourly
        .iter()
        .map(|h| h.traffic_bytes)
        .max()
        .unwrap_or(1)
        .max(1);
    let rows: Vec<Vec<String>> = outcome
        .hourly
        .iter()
        .map(|h| {
            vec![
                format!("{}", h.hour),
                format!("{}", h.hour % 24),
                format!("{:.0}", h.cpu_pct),
                format!("{:.2}", h.memory_gb),
                format!("{:.1}", h.traffic_bytes as f64 / max_bytes as f64 * 70.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "hour",
                "hour-of-day",
                "cpu_pct",
                "memory_gb",
                "traffic (normalized 0-70)"
            ],
            &rows
        )
    );

    let peak_cpu = outcome.hourly.iter().map(|h| h.cpu_pct).fold(0.0, f64::max);
    let min_cpu = outcome
        .hourly
        .iter()
        .filter(|h| h.traffic_bytes > 0)
        .map(|h| h.cpu_pct)
        .fold(f64::MAX, f64::min);
    println!("paper    : CPU ~2200-2600%  memory 15-30 GB, diurnal shape");
    println!(
        "measured : CPU {:.0}-{:.0}%  memory peak {:.2} GB, {} hourly samples",
        min_cpu,
        peak_cpu,
        outcome.peak_memory_gb(),
        outcome.hourly.len()
    );
}
