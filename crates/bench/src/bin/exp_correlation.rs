//! §4 headline result: average correlation rate, loss and output volume.
//!
//! Paper: 81.7% of traffic bytes correlated on average, <0.01% stream
//! loss, results written with at most 45 s delay.
//!
//! Usage: `exp_correlation [hours] [variant]` (defaults: 6 hours, Main).

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns_bench::{experiment_workload, run_variant};
use flowdns_core::Variant;

fn main() {
    let hours = flowdns_bench::hours_arg(6);
    let variant = std::env::args()
        .nth(2)
        .map(|s| Variant::parse(&s).expect("valid variant name"))
        .unwrap_or(Variant::Main);
    let workload = experiment_workload(hours, 45.0);

    println!("== §4 headline correlation ({variant}, {hours} simulated hours) ==");
    println!(
        "workload: expected ideal correlation {:.1}% (DNS-related share x resolver coverage)",
        workload.expected_correlation_fraction() * 100.0
    );

    let outcome = run_variant(variant, &workload);
    let report = &outcome.report;
    println!();
    println!("{}", report.summary());
    println!();
    println!("paper (Main)   : correlation 81.7%   loss <= 0.01%");
    println!(
        "measured ({variant:<9}): correlation {:.1}%   dns loss {:.3}%   flow loss {:.3}%",
        report.correlation_rate_pct(),
        report.metrics.dns_loss_pct(),
        report.metrics.flow_loss_pct()
    );
    println!(
        "mean hourly correlation {:.1}%, mean CPU {:.0}%, peak memory {:.2} GB",
        outcome.mean_hourly_correlation_pct(),
        outcome.mean_cpu_pct(),
        outcome.peak_memory_gb()
    );
}
