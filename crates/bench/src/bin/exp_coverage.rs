//! §4 Coverage: share of DNS/DoT traffic going to public resolvers.
//!
//! Paper: analysing a 1-hour NetFlow sample filtered to ports 53/853 and
//! matching destinations against a public resolver list shows that 1 in
//! 20 DNS packets goes to a public resolver, so the ISP resolver feed has
//! 95% coverage.
//!
//! Usage: `exp_coverage [hours]` (default: 1).

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns_bench::experiment_workload;
use flowdns_gen::workload::StreamEvent;
use flowdns_gen::CoverageSample;

fn main() {
    let hours = flowdns_bench::hours_arg(1);
    let workload = experiment_workload(hours, 45.0);
    println!("== §4 Coverage: public-resolver share over a {hours}-hour flow sample ==");

    let mut dns_flows = Vec::new();
    for event in workload.events() {
        if let StreamEvent::Flow(flow) = event {
            if flow.is_dns_or_dot() {
                dns_flows.push(flow);
            }
        }
    }
    let sample = CoverageSample::analyze(dns_flows.iter(), workload.resolvers());
    println!(
        "DNS/DoT flows: {} total — {} to ISP resolvers, {} to public resolvers, {} to other",
        sample.total(),
        sample.to_isp_resolvers,
        sample.to_public_resolvers,
        sample.to_other
    );
    println!();
    println!("paper    : 1 in 20 DNS packets to public resolvers  =>  coverage 95%");
    println!(
        "measured : 1 in {:.1} DNS packets to public resolvers  =>  coverage {:.1}%",
        if sample.public_share() > 0.0 {
            1.0 / sample.public_share()
        } else {
            f64::INFINITY
        },
        sample.coverage() * 100.0
    );
}
