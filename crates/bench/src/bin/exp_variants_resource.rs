//! Figure 3: CPU and memory usage over a day for the ablation variants
//! (Main, NoClearUp, NoLong, NoRotation, NoSplit).
//!
//! Paper: NoClearUp's memory grows steadily and would hit the machine
//! limit; NoRotation uses the least memory (no Inactive copy); NoLong
//! saves neither memory nor CPU; NoSplit lowers CPU significantly while
//! leaving memory unchanged.
//!
//! Usage: `exp_variants_resource [hours]` (default: 8).

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns_analysis::render_table;
use flowdns_bench::{experiment_workload, run_variant};
use flowdns_core::Variant;

fn main() {
    let hours = flowdns_bench::hours_arg(8);
    let workload = experiment_workload(hours, 45.0);
    let variants = [
        Variant::Main,
        Variant::NoClearUp,
        Variant::NoLongHashmaps,
        Variant::NoRotation,
        Variant::NoSplit,
    ];

    println!("== Figure 3: per-variant CPU and memory over {hours} simulated hours ==");
    let mut hourly_rows: Vec<Vec<String>> = Vec::new();
    let mut summary_rows: Vec<Vec<String>> = Vec::new();
    for variant in variants {
        let outcome = run_variant(variant, &workload);
        for h in &outcome.hourly {
            hourly_rows.push(vec![
                variant.label().to_string(),
                format!("{}", h.hour),
                format!("{:.0}", h.cpu_pct),
                format!("{:.3}", h.memory_gb),
            ]);
        }
        let final_mem = outcome.hourly.last().map(|h| h.memory_gb).unwrap_or(0.0);
        summary_rows.push(vec![
            variant.label().to_string(),
            format!("{:.0}", outcome.mean_cpu_pct()),
            format!("{:.3}", outcome.peak_memory_gb()),
            format!("{:.3}", final_mem),
            format!("{:.1}", outcome.report.correlation_rate_pct()),
        ]);
    }

    println!(
        "{}",
        render_table(&["variant", "hour", "cpu_pct", "memory_gb"], &hourly_rows)
    );
    println!("-- per-variant summary --");
    println!(
        "{}",
        render_table(
            &[
                "variant",
                "mean_cpu_pct",
                "peak_mem_gb",
                "final_mem_gb",
                "correlation_pct"
            ],
            &summary_rows
        )
    );
    println!("paper shape: NoClearUp memory grows monotonically; NoRotation lowest memory;");
    println!("             NoSplit clearly lower CPU than Main; NoLong ~= Main on both axes.");
}
