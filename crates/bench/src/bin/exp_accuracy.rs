//! §4 Accuracy: the two-website ground-truth experiment.
//!
//! Paper: with two sites on different IPs every flow is attributed
//! correctly (100%); with two sites sharing one IP the second site's DNS
//! record overwrites the first and all flows are attributed to the second
//! site (50%). The overwrite matters for the 12% of IPs carrying more
//! than one name (Figure 9).

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns_bench::{golden_accuracy_workload, measured_correlation_fraction};
use flowdns_core::fillup::{process_dns_record, FillUpStats};
use flowdns_core::lookup::LookUpStats;
use flowdns_core::{CorrelatorConfig, DnsStore, Resolver};
use flowdns_gen::{AccuracyCapture, AccuracyScenario, SubscriberPopulation};

fn run_scenario(scenario: AccuracyScenario) -> (f64, usize) {
    let capture = AccuracyCapture::build(scenario, 20);
    let config = CorrelatorConfig::default();
    let store = DnsStore::new(&config);
    let mut fillup = FillUpStats::default();
    for record in &capture.dns {
        process_dns_record(&store, record, &mut fillup);
    }
    let mut resolver = Resolver::new(&store, &config);
    let mut lookup = LookUpStats::default();
    let attributions: Vec<_> = capture
        .flows
        .iter()
        .map(|(flow, _)| {
            resolver
                .process_flow(flow.clone(), &mut lookup)
                .outcome
                .final_name()
                .cloned()
        })
        .collect();
    (capture.accuracy(&attributions), capture.flows.len())
}

fn main() {
    println!("== §4 Accuracy: two-website ground-truth experiment ==");
    let (acc1, n1) = run_scenario(AccuracyScenario::DistinctIps);
    let (acc2, n2) = run_scenario(AccuracyScenario::SharedIp);
    println!(
        "scenario 1 (distinct IPs): paper 100%   measured {:.0}% over {n1} flows",
        acc1 * 100.0
    );
    println!(
        "scenario 2 (shared IP)   : paper  50%   measured {:.0}% over {n2} flows",
        acc2 * 100.0
    );
    println!();
    println!("The shared-IP flows are all attributed to the site whose DNS record arrived last,");
    println!("which is exactly the overwrite behaviour the paper describes.");

    println!();
    println!("== Population golden accuracy (count-based, tolerance ±1 point) ==");
    let mut worst = 0f64;
    for preset in ["residential", "business", "mixed"] {
        let population = SubscriberPopulation::preset(preset).expect("known preset");
        let workload = golden_accuracy_workload(population);
        let expected = workload.expected_correlation_fraction();
        let measured = measured_correlation_fraction(&workload);
        let delta = (measured - expected) * 100.0;
        worst = worst.max(delta.abs());
        println!(
            "{preset:12} expected {:6.2}%   measured {:6.2}%   delta {delta:+.2} points{}",
            expected * 100.0,
            measured * 100.0,
            if delta.abs() > 1.0 { "  OUT OF TOLERANCE" } else { "" },
        );
    }
    println!(
        "worst preset delta {worst:.2} points — the generator's announced-visible-IP model \
         and the pipeline agree."
    );
}
