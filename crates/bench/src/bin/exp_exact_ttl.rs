//! Appendix A.8: expiring DNS records by their exact TTL.
//!
//! Paper: applying exact TTLs (with a regular purge process) makes the
//! stream buffers overflow within minutes — loss above 90% on both
//! streams — while memory climbs to roughly double the Main variant's,
//! even though only ~10% of the data is actually processed.
//!
//! Usage: `exp_exact_ttl [hours]` (default: 2).

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns_bench::{experiment_workload, run_variant};
use flowdns_core::Variant;

fn main() {
    let hours = flowdns_bench::hours_arg(2);
    let workload = experiment_workload(hours, 45.0);
    println!("== Appendix A.8: exact-TTL expiry vs. FlowDNS rotation ({hours} simulated hours) ==");

    let main = run_variant(Variant::Main, &workload);
    let exact = run_variant(Variant::ExactTtl, &workload);

    println!(
        "Main     : flow loss {:.2}%  dns loss {:.2}%  mean CPU {:.0}%  peak memory {:.3} GB  correlation {:.1}%",
        main.report.metrics.flow_loss_pct(),
        main.report.metrics.dns_loss_pct(),
        main.mean_cpu_pct(),
        main.peak_memory_gb(),
        main.report.correlation_rate_pct()
    );
    println!(
        "ExactTTL : flow loss {:.2}%  dns loss {:.2}%  mean CPU {:.0}%  peak memory {:.3} GB  correlation {:.1}%",
        exact.report.metrics.flow_loss_pct(),
        exact.report.metrics.dns_loss_pct(),
        exact.mean_cpu_pct(),
        exact.peak_memory_gb(),
        exact.report.correlation_rate_pct()
    );
    println!();
    println!("paper    : exact-TTL loss > 90% on both streams; memory roughly 2x FlowDNS");
    let mem_ratio = if main.peak_memory_gb() > 0.0 {
        exact.peak_memory_gb() / main.peak_memory_gb()
    } else {
        0.0
    };
    println!(
        "measured : exact-TTL flow loss {:.1}% / dns loss {:.1}%; memory ratio {:.2}x",
        exact.report.metrics.flow_loss_pct(),
        exact.report.metrics.dns_loss_pct(),
        mem_ratio
    );
}
