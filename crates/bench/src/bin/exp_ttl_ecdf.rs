//! Figure 8 / Appendix A.6: TTL distribution of DNS records.
//!
//! Paper: ~70% of records have TTL below 300 s; 99% of A/AAAA records are
//! below 3600 s and 99% of CNAME records below 7200 s — which is how the
//! clear-up intervals were chosen.
//!
//! Usage: `exp_ttl_ecdf [hours]` (default: 4).

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns_analysis::{render_series, Ecdf};
use flowdns_bench::experiment_workload;
use flowdns_gen::workload::StreamEvent;
use flowdns_types::RecordType;

fn main() {
    let hours = flowdns_bench::hours_arg(4);
    let workload = experiment_workload(hours, 45.0);
    println!("== Figure 8: TTL ECDF per record type ({hours} simulated hours of DNS) ==");

    let mut a_ttls = Vec::new();
    let mut aaaa_ttls = Vec::new();
    let mut cname_ttls = Vec::new();
    for event in workload.events() {
        if let StreamEvent::Dns(record) = event {
            match record.rtype {
                RecordType::A => a_ttls.push(record.ttl as u64),
                RecordType::Aaaa => aaaa_ttls.push(record.ttl as u64),
                RecordType::Cname => cname_ttls.push(record.ttl as u64),
                _ => {}
            }
        }
    }
    let points = [60.0, 300.0, 600.0, 3_600.0, 7_200.0, 18_000.0];
    for (label, ttls) in [("A", &a_ttls), ("AAAA", &aaaa_ttls), ("CNAME", &cname_ttls)] {
        let ecdf = Ecdf::from_counts(ttls.iter().copied());
        println!("-- {label} records ({} samples) --", ecdf.len());
        println!(
            "{}",
            render_series("ttl_seconds", "ecdf", &ecdf.series(&points))
        );
    }

    let a_all = Ecdf::from_counts(a_ttls.iter().chain(&aaaa_ttls).copied());
    let c_all = Ecdf::from_counts(cname_ttls.iter().copied());
    println!("paper    : 99% of A/AAAA < 3600 s; 99% of CNAME < 7200 s; ~70% of records < 300 s");
    println!(
        "measured : {:.1}% of A/AAAA < 3600 s; {:.1}% of CNAME < 7200 s; {:.1}% of A/AAAA < 300 s",
        a_all.fraction_at_or_below(3_600.0) * 100.0,
        c_all.fraction_at_or_below(7_200.0) * 100.0,
        a_all.fraction_at_or_below(300.0) * 100.0
    );
    println!("=> AClearUpInterval = 3600, CClearUpInterval = 7200 (Table 1)");
}
