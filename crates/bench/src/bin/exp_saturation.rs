//! Ingest saturation harness: how fast can the live wire-to-queue path go?
//!
//! Drives a loopback [`flowdns_ingest::IngestRuntime`] with pre-encoded
//! NetFlow v5 datagrams at stepped offered loads until sustained drop,
//! once with the batched drain path and once with the per-datagram
//! baseline, and writes the machine-readable trajectory point
//! `BENCH_saturation.json`. See `docs/PERFORMANCE.md` for methodology
//! and the field-by-field schema.
//!
//! ```text
//! exp_saturation [--smoke] [--out <path>]   run and write the JSON
//! exp_saturation --check <path>             validate an existing JSON
//! ```

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use std::process::ExitCode;

use flowdns_bench::saturation::{self, SaturationConfig};

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out = String::from("BENCH_saturation.json");
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(path) => check = Some(path),
                None => return usage("--check needs a path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    if let Some(path) = check {
        return match std::fs::read_to_string(&path) {
            Ok(text) => match saturation::validate_json(&text) {
                Ok(()) => {
                    println!("{path}: valid flowdns-bench/saturation/v3 document");
                    ExitCode::SUCCESS
                }
                Err(reason) => {
                    eprintln!("{path}: INVALID — {reason}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{path}: cannot read — {e}");
                ExitCode::FAILURE
            }
        };
    }

    let config = if smoke {
        SaturationConfig::smoke()
    } else {
        SaturationConfig::full()
    };
    println!("== Ingest saturation harness ({} mode) ==", mode(&config));
    println!(
        "batched run: {} listeners, recv_batch {}; baseline: 1 listener, recv_batch 1",
        config.netflow_listeners, config.recv_batch
    );
    let report = match saturation::run(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("harness failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    for (name, run) in [("batched", &report.batched), ("baseline", &report.baseline)] {
        println!(
            "{name:8} ({} listener(s), recv_batch {}, avg drain {:.1} datagrams):",
            run.listeners, run.recv_batch, run.avg_drain
        );
        for step in &run.steps {
            println!(
                "  offered {:>9.0}/s  sent {:>9.0}/s  accepted {:>9.0}/s  drop {:>5.2}% (queue {:>5.2}%)  queue p99 {} us  p999 {} us",
                step.offered_per_sec,
                step.sent_per_sec,
                step.accepted_per_sec,
                step.drop_pct,
                step.queue_drop_pct,
                step.p99_queue_latency_us,
                step.p999_queue_latency_us,
            );
        }
        println!(
            "  peak accepted {:.0} records/s ({})",
            run.peak.accepted_per_sec,
            if run.saturated {
                "stopped at drop limit"
            } else {
                "sender-bound or step cap"
            }
        );
        match &run.slo_knee {
            Some(knee) => println!(
                "  SLO knee {:.0} records/s (lossless, p99 queue wait {} us <= {} us)",
                knee.accepted_per_sec,
                knee.p99_queue_latency_us,
                saturation::SLO_P99_LIMIT_US,
            ),
            None => println!(
                "  SLO knee: none — no lossless step kept p99 queue wait <= {} us",
                saturation::SLO_P99_LIMIT_US
            ),
        }
        println!(
            "  p99 queue wait at 80% of raw knee: {} us",
            run.p99_at_80pct_us
        );
    }
    println!(
        "speedup vs per-datagram baseline: {:.2}x",
        report.speedup_vs_baseline()
    );
    let variance = &report.variance;
    println!(
        "speedup confidence (paired A/B at {:.0}/s): effect {:+.2}%, trial spread {:.2}%",
        variance.probe_rate_per_sec,
        variance.effect_pct(),
        variance.spread_pct(),
    );
    if variance.inconclusive() {
        // Loud on purpose: a headline speedup smaller than the host's
        // own trial noise must not be quoted as a result.
        eprintln!("!!!");
        eprintln!(
            "!!! WARNING: trial variance ({:.2}%) is at least as large as the measured \
             batched-vs-baseline effect ({:+.2}%).",
            variance.spread_pct(),
            variance.effect_pct(),
        );
        eprintln!(
            "!!! speedup_vs_baseline = {:.3} is NOT distinguishable from noise on this host \
             (see docs/PERFORMANCE.md, \"Variance gate\").",
            report.speedup_vs_baseline()
        );
        eprintln!("!!!");
    }
    println!("shared-nothing scaling curve:");
    for point in &report.scaling {
        println!(
            "  {} shard(s): raw knee {:>9.0}/s  SLO knee {:>9}  p99 @ 80% of knee {} us",
            point.shards,
            point.raw_knee_per_sec,
            point
                .slo_knee_per_sec
                .map_or("none".to_string(), |r| format!("{r:.0}/s")),
            point.p99_at_80pct_us,
        );
    }
    let obs = &report.obs_overhead;
    println!(
        "observability overhead: peak {:.0}/s off vs {:.0}/s with telemetry live \
         ({:+.2}% regression, {} scrapes, {} trace spans)",
        obs.off_peak_per_sec, obs.on_peak_per_sec, obs.regression_pct, obs.scrapes, obs.trace_spans
    );

    let json = report.to_json();
    if let Err(reason) = saturation::validate_json(&json) {
        eprintln!("BUG: emitted JSON fails its own schema check: {reason}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

fn mode(config: &SaturationConfig) -> &'static str {
    if config.smoke {
        "smoke"
    } else {
        "full"
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!("usage: exp_saturation [--smoke] [--out <path>] | --check <path>");
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
