//! Figure 5 + §5: traffic from suspicious and malformed domain names.
//!
//! Paper (1-day capture, hourly 1M-name samples): 612 suspicious domains
//! (512 spam, 41 botnet C&C, 34 abused redirectors, 11 malware,
//! 3 phishing); 666k domains violating RFC 1035, 87% of them via the
//! underscore character; suspicious plus malformed domains account for
//! about 0.5% of daily traffic volume; a handful of domains per category
//! carry most of that category's bytes (Figure 5); 2.7% of clients
//! receiving traffic from malformed domains send traffic back to 23.6% of
//! those domains (1.9% of packets).
//!
//! Usage: `exp_malicious [hours]` (default: 6).

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns_analysis::{render_table, TrafficCategory};
use flowdns_bench::{experiment_workload, run_category_analysis};
use flowdns_dbl::BlocklistCategory;

fn main() {
    let hours = flowdns_bench::hours_arg(6);
    let workload = experiment_workload(hours, 45.0);
    println!(
        "== Figure 5 / §5: suspicious and malformed domain traffic ({hours} simulated hours) =="
    );
    let (outcome, analysis) = run_category_analysis(&workload);

    println!(
        "correlated {:.1}% of {} flows",
        outcome.report.correlation_rate_pct(),
        outcome.report.metrics.write.records_written
    );
    println!();

    // Suspicious domain counts per category (the paper's 612-domain table).
    let mut rows: Vec<Vec<String>> = Vec::new();
    let paper_counts = [
        (BlocklistCategory::Spam, 512),
        (BlocklistCategory::BotnetCc, 41),
        (BlocklistCategory::AbusedRedirector, 34),
        (BlocklistCategory::Malware, 11),
        (BlocklistCategory::Phishing, 3),
    ];
    for ((category, measured), (_, paper)) in analysis
        .suspicious_domain_counts()
        .into_iter()
        .zip(paper_counts)
    {
        rows.push(vec![
            category.label().to_string(),
            paper.to_string(),
            measured.to_string(),
        ]);
    }
    println!("-- suspicious domains observed in traffic (counts are scaled-down synthetics) --");
    println!(
        "{}",
        render_table(&["category", "paper_count", "measured_count"], &rows)
    );

    // Figure 5: cumulative traffic per number of domains, per category.
    println!("-- Figure 5: cumulative traffic volume vs number of domain names --");
    let mut categories: Vec<TrafficCategory> = BlocklistCategory::all()
        .into_iter()
        .map(TrafficCategory::Listed)
        .collect();
    categories.push(TrafficCategory::Malformed);
    for category in categories {
        if let Some(traffic) = analysis.traffic(category) {
            let series = traffic.cumulative_series();
            let head: Vec<String> = series
                .iter()
                .take(10)
                .enumerate()
                .map(|(i, cum)| format!("{}:{}", i + 1, cum))
                .collect();
            println!(
                "{:<18} {:>3} domains, total {:>12} B, cumulative(top-k): {}",
                category.label(),
                traffic.key_count(),
                traffic.total_bytes(),
                head.join("  ")
            );
        }
    }
    println!();

    let validity = analysis.validity();
    let (client_share, domain_share, packet_share) = analysis.malformed_bidirectional_stats();
    println!("paper    : suspicious+malformed traffic = 0.5% of daily bytes");
    println!(
        "measured : suspicious+malformed traffic = {:.2}% of bytes",
        analysis.suspicious_and_malformed_share() * 100.0
    );
    println!("paper    : 87% of malformed domains contain '_'; most common violation = disallowed character");
    println!(
        "measured : {:.0}% of malformed names contain '_'; most common violation = {}",
        validity.underscore_share() * 100.0,
        validity.most_common_kind().unwrap_or("n/a")
    );
    println!("paper    : 2.7% of clients reply to 23.6% of malformed domains (1.9% of packets)");
    println!(
        "measured : {:.1}% of clients reply to {:.1}% of malformed domains ({:.2}% of packets)",
        client_share * 100.0,
        domain_share * 100.0,
        packet_share * 100.0
    );
}
