//! Figure 4: cumulative traffic volume per source AS for two streaming
//! services (Network Provisioning and Planning use case).
//!
//! Paper: streaming service S1's traffic originates almost entirely from
//! one AS; S2's traffic originates mainly from two ASes; both show a
//! diurnal pattern. Since the in-pipeline BGP enrichment the join happens
//! in the LookUp stage: records arrive with `src_asn` already stamped
//! from the frozen routing table, and the analysis only buckets them.
//!
//! Usage: `exp_streaming_as [hours]` (default: 12).

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns_analysis::{render_table, PerAsTraffic};
use flowdns_bench::{
    asn_view_for, experiment_workload, outcome_matches_service, run_variant_with_asn,
};
use flowdns_core::Variant;

fn main() {
    let hours = flowdns_bench::hours_arg(12);
    let workload = experiment_workload(hours, 45.0);
    let universe = workload.universe().clone();
    let view = asn_view_for(&universe);
    let s1 = universe.services[universe.streaming_s1].clone();
    let s2 = universe.services[universe.streaming_s2].clone();

    println!("== Figure 4: per-source-AS traffic for streaming services S1 and S2 ==");
    let mut per_as_s1 = PerAsTraffic::new();
    let mut per_as_s2 = PerAsTraffic::new();
    run_variant_with_asn(Variant::Main, &workload, &view, |record| {
        if !record.is_correlated() {
            return;
        }
        if outcome_matches_service(&record.outcome, &s1) {
            per_as_s1.observe(record);
        } else if outcome_matches_service(&record.outcome, &s2) {
            per_as_s2.observe(record);
        }
    });

    for (label, per_as, expected) in [
        ("S1", &per_as_s1, "one dominant AS"),
        ("S2", &per_as_s2, "two dominant ASes"),
    ] {
        println!("-- streaming service {label} ({expected} expected) --");
        let ranked = per_as.ases_by_traffic();
        let total = per_as.total_bytes().max(1);
        let rows: Vec<Vec<String>> = ranked
            .iter()
            .map(|(asn, bytes)| {
                vec![
                    format!("AS{asn}"),
                    format!("{:.1}", *bytes as f64 / total as f64 * 100.0),
                    format!("{}", bytes),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["origin_as", "share_pct", "bytes"], &rows)
        );
        if let Some((top_asn, _)) = ranked.first() {
            let series = per_as.cumulative_series(*top_asn);
            let head: Vec<String> = series
                .iter()
                .take(8)
                .map(|(h, b)| format!("h{h}:{b}"))
                .collect();
            println!(
                "cumulative volume of AS{top_asn} (first hours): {}",
                head.join("  ")
            );
        }
        println!();
    }

    println!("paper    : S1 ~single-AS origin; S2 split across two ASes; diurnal volume curves");
    println!(
        "measured : S1 top-1 AS share {:.1}% ({} ASes); S2 top-2 AS share {:.1}% ({} ASes)",
        per_as_s1.top_as_share(1) * 100.0,
        per_as_s1.ases_by_traffic().len(),
        per_as_s2.top_as_share(2) * 100.0,
        per_as_s2.ases_by_traffic().len()
    );
}
