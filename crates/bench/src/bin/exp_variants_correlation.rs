//! Figure 7 + §4 text: correlation rate per hour for the ablation
//! variants, and the mean correlation rates.
//!
//! Paper means: Main 81.7%, NoClearUp 82.8%, NoRotation 79.5%,
//! NoLong 81.1%, NoSplit 81.7% (identical to Main).
//!
//! Usage: `exp_variants_correlation [hours]` (default: 8).

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns_analysis::render_table;
use flowdns_bench::{experiment_workload, run_variant};
use flowdns_core::Variant;

fn main() {
    let hours = flowdns_bench::hours_arg(8);
    let workload = experiment_workload(hours, 45.0);
    let variants = [
        Variant::Main,
        Variant::NoClearUp,
        Variant::NoLongHashmaps,
        Variant::NoRotation,
        Variant::NoSplit,
    ];
    let paper_means = [81.7, 82.8, 81.1, 79.5, 81.7];

    println!("== Figure 7: hourly correlation rate per variant ({hours} simulated hours) ==");
    let mut per_hour: Vec<Vec<String>> = Vec::new();
    let mut summary: Vec<Vec<String>> = Vec::new();
    for (variant, paper) in variants.into_iter().zip(paper_means) {
        let outcome = run_variant(variant, &workload);
        for h in &outcome.hourly {
            per_hour.push(vec![
                variant.label().to_string(),
                format!("{}", h.hour),
                format!("{:.1}", h.correlation_rate_pct),
            ]);
        }
        summary.push(vec![
            variant.label().to_string(),
            format!("{:.1}", paper),
            format!("{:.1}", outcome.report.correlation_rate_pct()),
            format!("{:.1}", outcome.mean_hourly_correlation_pct()),
        ]);
    }
    println!(
        "{}",
        render_table(&["variant", "hour", "correlation_pct"], &per_hour)
    );
    println!("-- mean correlation rate --");
    println!(
        "{}",
        render_table(
            &[
                "variant",
                "paper_pct",
                "measured_pct",
                "measured_hourly_mean_pct"
            ],
            &summary
        )
    );
    println!("paper ordering: NoClearUp >= Main = NoSplit > NoLong > NoRotation");
}
