//! The compressed "week at an ISP" soak tier.
//!
//! Streams a [`flowdns_gen::SubscriberPopulation`]-driven workload —
//! millions of simulated subscriber lines, never materialized — through
//! the real threaded correlator in both the classic and sharded layouts,
//! kills and warm-restarts each mid-soak, and writes the endurance
//! verdicts (bounded memory across rotation clear-ups, snapshot
//! continuity, zero accepted-record loss) to `BENCH_soak.json`. See
//! docs/WORKLOADS.md for methodology and the field-by-field schema.
//!
//! ```text
//! exp_soak [--smoke] [--out <path>] [--config <file>]   run and write the JSON
//! exp_soak --check <path>                               validate an existing JSON
//! ```

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use std::process::ExitCode;

use flowdns_bench::soak::{self, SoakConfig};

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out = String::from("BENCH_soak.json");
    let mut check: Option<String> = None;
    let mut config_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out needs a path"),
            },
            "--config" => match args.next() {
                Some(path) => config_file = Some(path),
                None => return usage("--config needs a path"),
            },
            "--check" => match args.next() {
                Some(path) => check = Some(path),
                None => return usage("--check needs a path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    if let Some(path) = check {
        return match std::fs::read_to_string(&path) {
            Ok(text) => match soak::validate_json(&text) {
                Ok(()) => {
                    println!("{path}: valid {} document", soak::SCHEMA);
                    ExitCode::SUCCESS
                }
                Err(reason) => {
                    eprintln!("{path}: INVALID — {reason}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{path}: cannot read — {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut config = if smoke {
        SoakConfig::smoke()
    } else {
        SoakConfig::full()
    };
    if let Some(path) = config_file {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(reason) = config.apply_file_text(&text) {
            eprintln!("{path}: {reason}");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "== Week-at-an-ISP soak ({} mode) ==",
        if config.smoke { "smoke" } else { "full" }
    );
    println!(
        "population '{}': {} subscribers, {} simulated hours at peak {}/s, \
         clear-ups A={}s C={}s, restart at hour {}",
        config.population_name,
        config.population.subscribers,
        config.sim_hours,
        config.peak_flows_per_sec,
        config.a_clear_up_secs,
        config.c_clear_up_secs,
        config.restart_at_hour,
    );

    let report = match soak::run(&config, |line| eprintln!("  {line}")) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("soak failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    for mode in &report.modes {
        println!(
            "{:8} (shards={}): {} events, {} clear-ups, correlation {:.1}%",
            mode.label,
            mode.shards,
            mode.events_streamed,
            mode.clear_ups,
            mode.correlation_rate_pct,
        );
        println!(
            "  memory: {} post-clear-up samples, entries {}..{} ({})",
            mode.memory_samples.len(),
            mode.memory_samples.iter().map(|s| s.entries).min().unwrap_or(0),
            mode.memory_samples.iter().map(|s| s.entries).max().unwrap_or(0),
            if mode.memory_bounded(config.memory_band_factor) {
                "bounded"
            } else {
                "UNBOUNDED"
            },
        );
        println!(
            "  restart: snapshot {} entries, warm start {} entries ({})",
            mode.restart.snapshot_entries,
            mode.restart.warm_start_entries,
            if mode.restart.continuity {
                "continuous"
            } else {
                "BROKEN"
            },
        );
        println!(
            "  loss: dns {}/{} accepted/processed, flows {}/{} ({})",
            mode.loss.dns_accepted,
            mode.loss.dns_processed,
            mode.loss.flows_accepted,
            mode.loss.flows_processed,
            if mode.loss.zero_accepted_loss() {
                "zero accepted loss"
            } else {
                "RECORDS LOST"
            },
        );
    }
    println!(
        "verdicts: clear_ups_ok={} bounded_memory={} zero_loss={} warm_restart={}",
        report.clear_ups_ok(),
        report.bounded_memory(),
        report.zero_loss(),
        report.warm_restart(),
    );

    let json = report.to_json();
    if let Err(reason) = soak::validate_json(&json) {
        eprintln!("BUG: emitted JSON fails its own schema check: {reason}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    if report.all_green() {
        ExitCode::SUCCESS
    } else {
        eprintln!("one or more soak verdicts failed — see {out}");
        ExitCode::FAILURE
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!("usage: exp_soak [--smoke] [--out <path>] [--config <file>] | --check <path>");
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
