//! Figure 9 / Appendix A.7: names-per-IP and IPs-per-name cardinality.
//!
//! Paper: in a 300-second DNS sample, 88% of IP addresses map to a single
//! domain name (which bounds FlowDNS's accuracy), while 35% of domain
//! names map to more than one IP (harmless by design). A 1-hour sample
//! shows similar results.
//!
//! Usage: `exp_names_per_ip [hours]` (default: 2).

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns_analysis::{render_series, CardinalityAnalysis};
use flowdns_bench::experiment_workload;
use flowdns_gen::workload::StreamEvent;
use flowdns_types::{SimDuration, SimTime, TimeRange};

fn main() {
    let hours = flowdns_bench::hours_arg(2);
    let workload = experiment_workload(hours, 45.0);
    println!("== Figure 9 / A.7: domain-name / IP cardinalities ==");

    // Pick windows in the middle of the trace so announcements have warmed up.
    let mid = SimTime::from_secs(hours * 3600 / 2);
    let mut short =
        CardinalityAnalysis::with_window(TimeRange::starting_at(mid, SimDuration::from_secs(300)));
    let mut long = CardinalityAnalysis::with_window(TimeRange::starting_at(
        mid,
        SimDuration::from_hours(1).min(SimDuration::from_hours(hours)),
    ));

    for event in workload.events() {
        if let StreamEvent::Dns(record) = event {
            short.observe(&record);
            long.observe(&record);
        }
    }

    let points: Vec<f64> = (1..=10).map(|i| i as f64).collect();
    println!(
        "-- 300-second sample: {} IPs, {} names --",
        short.ip_count(),
        short.name_count()
    );
    println!(
        "{}",
        render_series(
            "names_per_ip",
            "ecdf",
            &short.names_per_ip_ecdf().series(&points)
        )
    );
    println!(
        "{}",
        render_series(
            "ips_per_name",
            "ecdf",
            &short.ips_per_name_ecdf().series(&points)
        )
    );

    println!("paper    (300 s): 88% of IPs map to one name; 35% of names map to >1 IP");
    println!(
        "measured (300 s): {:.0}% of IPs map to one name; {:.0}% of names map to >1 IP",
        short.single_name_ip_share() * 100.0,
        short.multi_ip_name_share() * 100.0
    );
    println!(
        "measured (1 h)  : {:.0}% of IPs map to one name; {:.0}% of names map to >1 IP ({} IPs)",
        long.single_name_ip_share() * 100.0,
        long.multi_ip_name_share() * 100.0,
        long.ip_count()
    );
}
