//! The ingest saturation harness behind `exp_saturation`.
//!
//! Measures the live wire-to-queue path the way the paper frames its
//! core claim (keeping up with ~1M flows/s at a large ISP): a loopback
//! [`IngestRuntime`] is driven with pre-encoded NetFlow v5 datagrams at
//! stepped offered loads until it shows sustained drop, and each step
//! records accepted records/s, drop rate, and the sampled p50/p99
//! residency of the LookUp ingress queue. The whole procedure runs
//! twice — once with the batched drain path (`recv_batch > 1`, listener
//! group) and once with the per-datagram baseline (`recv_batch = 1`,
//! single listener, the seed's design) — and the ratio of the two peak
//! accepted rates is the tracked `speedup_vs_baseline`.
//!
//! The `obs_overhead` section — the throughput tax of observing the
//! pipeline — is a **paired fixed-rate A/B probe** rather than a second
//! knee search: alternating fresh runtimes with telemetry off and on
//! (the `/metrics` endpoint polled by a scraper thread plus 1-in-N flow
//! tracing to a flight-recorder file) are driven at the batched run's
//! measured knee rate, and each arm's reading is its best accepted rate
//! across the probe steps. Knee *location* is noisy (ladder + bisection
//! under scheduler jitter); accepted throughput at a fixed rate is not,
//! which is what makes a sub-1 % overhead claim measurable at all.
//!
//! Schema v3 adds two things the raw knee cannot express. First, each
//! run also reports its **SLO knee** — the highest accepted rate whose
//! step was *lossless* (`drop_pct == 0`) with a p99 queue wait at or
//! under [`SLO_P99_LIMIT_US`] (10 ms) — because a deep bounded buffer
//! can "sustain" a rate while holding every record for hundreds of
//! milliseconds (the committed v2 knee did exactly that: 568 k rec/s at
//! p99 = 393 ms of queue wait). Second, a `scaling` section re-runs the
//! knee search with the shared-nothing sharded correlator at
//! `correlator_shards` ∈ {1, 2, 4}, recording both knees and the p99
//! queue wait at 80 % of the raw knee per point — the honest multi-core
//! scaling curve (on a single-core host it honestly shows no
//! throughput scaling; the SPSC rings still bound the queue-wait tail).
//!
//! The `variance` section guards the headline `speedup_vs_baseline`
//! number: paired fixed-rate A/B arms (batched topology vs per-datagram
//! baseline, alternating) at the batched knee rate yield repeated
//! readings per arm, and when the within-arm spread exceeds the
//! between-arm effect the binary prints a loud warning and the JSON
//! records `inconclusive: true` — a speedup claim smaller than the
//! host's own trial noise is not a claim.
//!
//! The result serializes to `BENCH_saturation.json` (schema
//! `flowdns-bench/saturation/v3`, documented field-by-field in
//! `docs/PERFORMANCE.md`); [`validate_json`] is the structural checker
//! CI runs against the committed file, rejecting missing keys, empty
//! step lists, and non-finite numbers.
//!
//! Everything here measures *wall-clock* behaviour of real sockets and
//! threads, unlike the Criterion benches, which measure in-process
//! function costs — see the methodology note in `docs/PERFORMANCE.md`.

use std::io::Write as IoWrite;
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flowdns_dns::framing::FrameEncoder;
use flowdns_gen::workload::saturation_pool;
use flowdns_ingest::{DaemonConfig, IngestRuntime, IngestSnapshot};
use flowdns_netflow::{V5Header, V5Packet, V5Record, V5_MAX_RECORDS};
use flowdns_types::{DnsRecord, FlowDnsError, SimTime};

/// Hard cap on flow records per pre-encoded datagram (the v5 wire
/// maximum); the effective count is [`SaturationConfig::records_per_datagram`].
pub const MAX_RECORDS_PER_DATAGRAM: usize = V5_MAX_RECORDS;
/// Pause after each step's senders stop, letting the kernel socket
/// queue drain before the closing snapshot is taken.
const DRAIN_PAUSE: Duration = Duration::from_millis(300);
/// Bisection steps used to refine the saturation knee once the stepped
/// ladder overshoots the drop limit.
const REFINE_STEPS: usize = 4;
/// Most datagrams one sender pacing iteration hands to `sendmmsg(2)`.
const SEND_BURST: usize = 32;
/// Sender pacing tick. Kept small so per-tick bursts stay well inside
/// the default kernel socket buffer even near the saturation point.
const PACING_TICK: Duration = Duration::from_millis(1);
/// DNS records timestamp (store side) and flow export time: 100 s apart,
/// comfortably inside the default clear-up interval, so every flow's
/// source address is a store hit.
const DNS_TS_SECS: u64 = 900;
const FLOW_TS_SECS: u32 = 1000;
/// Flow-trace sampling period of the telemetry arm: sparse enough that
/// tracing is the production configuration, not a stress test of the
/// recorder, while still emitting spans at every step.
const TRACE_SAMPLE_EVERY: u64 = 1024;
/// How often the telemetry arm's scraper thread polls `/metrics` —
/// deliberately aggressive versus a real Prometheus interval (15–60 s)
/// so the measured overhead upper-bounds production cost.
const SCRAPE_INTERVAL: Duration = Duration::from_millis(250);
/// Off/on probe pairs of the overhead measurement (full mode).
/// Alternating the arms cancels slow host drift (thermal, co-tenants);
/// host noise only ever *lowers* throughput, so enough rounds that a
/// quiet patch covers at least one adjacent off/on pair makes the
/// per-arm best an honest capacity estimate.
const OBS_PROBE_ROUNDS: usize = 4;
/// Fixed-rate steps per probe arm (full mode). Each arm's reading is
/// the best accepted rate across its steps — loss noise only lowers a
/// step, so the max is the honest capacity estimate.
const OBS_PROBE_STEPS: usize = 3;
/// The queue-wait SLO bound of the v3 "SLO knee": a step only counts as
/// sustained-within-SLO when it was lossless *and* its sampled p99
/// LookUp-queue residency stayed at or under this (10 ms). Chosen an
/// order of magnitude above healthy service time and two below the
/// buffer-depth artifact it exists to expose.
pub const SLO_P99_LIMIT_US: u64 = 10_000;
/// The fixed-rate tail probe after each knee search runs at this
/// fraction of the raw knee; its p99 queue wait is the per-run
/// `p99_at_80pct_us` — the number the shared-queue vs sharded-ring
/// comparison is made at.
const KNEE_PROBE_FRACTION: f64 = 0.8;
/// Paired A/B rounds of the speedup-variance probe (full mode).
const VARIANCE_ROUNDS: usize = 2;
/// Fixed-rate steps per variance arm (full mode); every step is kept as
/// an independent reading (unlike the overhead probe, which takes the
/// max) because the *spread* is the measurement here.
const VARIANCE_STEPS: usize = 2;

/// Parameters of one harness invocation.
#[derive(Debug, Clone)]
pub struct SaturationConfig {
    /// `true` for the CI smoke mode (seconds, not minutes, of runtime).
    pub smoke: bool,
    /// NetFlow `SO_REUSEPORT` group size of the batched run.
    pub netflow_listeners: usize,
    /// Drain bound of the batched run (the baseline always uses 1).
    pub recv_batch: usize,
    /// LookUp worker threads.
    pub lookup_workers: usize,
    /// Sender threads driving the offered load.
    pub senders: usize,
    /// Duration of each offered-load step.
    pub step: Duration,
    /// Distinct (name, address) pairs preloaded into the DNS store.
    pub dns_entries: usize,
    /// Flow records per NetFlow datagram, 1..=[`MAX_RECORDS_PER_DATAGRAM`].
    /// Real exporters flush export packets on timers, so partial
    /// datagrams are the norm at an ISP edge with many routers; a small
    /// value stresses the per-datagram path the batching work targets.
    pub records_per_datagram: usize,
    /// First step's offered load, records/s.
    pub initial_rate: f64,
    /// Multiplier between steps.
    pub growth: f64,
    /// Hard cap on steps per run.
    pub max_steps: usize,
    /// A step whose drop rate exceeds this (percent) ends the run.
    pub drop_limit_pct: f64,
    /// Attempts per step before declaring it over the drop limit. Loss
    /// has no negative direction — scheduler noise can only *inflate* a
    /// step's drop rate — so the best of N trials is the honest reading
    /// and retries filter transient interference on shared hosts.
    pub trials: usize,
    /// Shared-nothing correlator shards for this run (0 = the classic
    /// shared-queue pipeline). The main batched/baseline runs use 0;
    /// the `scaling` section clones the config with 1, 2, and 4.
    pub correlator_shards: usize,
}

/// Listener count for the batched run: one per core, capped at 4. The
/// `SO_REUSEPORT` group exists to spread load across cores, so on a
/// single-core CI box one listener is correct — extra listener threads
/// there only add scheduler churn and would make the batched run *slower*
/// than the baseline for reasons unrelated to the drain path under test.
fn listeners_for_host() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
}

impl SaturationConfig {
    /// The full measurement mode: steps until sustained drop.
    pub fn full() -> Self {
        // Thread counts are deliberately lean: the harness usually runs
        // inside small CI boxes (often a single core), where extra
        // listener and worker threads only add scheduler churn. On big
        // multi-core hosts, raising `netflow_listeners`, `senders`, and
        // `lookup_workers` together scales the measured ceiling up.
        SaturationConfig {
            smoke: false,
            netflow_listeners: listeners_for_host(),
            recv_batch: 32,
            lookup_workers: 2,
            senders: 1,
            step: Duration::from_secs(2),
            dns_entries: 4096,
            records_per_datagram: 5,
            initial_rate: 50_000.0,
            growth: 1.5,
            max_steps: 14,
            drop_limit_pct: 1.0,
            trials: 3,
            correlator_shards: 0,
        }
    }

    /// The CI smoke mode: same code path, fixed short duration.
    pub fn smoke() -> Self {
        SaturationConfig {
            smoke: true,
            netflow_listeners: listeners_for_host(),
            recv_batch: 32,
            lookup_workers: 2,
            senders: 1,
            step: Duration::from_millis(400),
            dns_entries: 256,
            records_per_datagram: 5,
            initial_rate: 30_000.0,
            growth: 2.0,
            max_steps: 3,
            drop_limit_pct: 5.0,
            trials: 2,
            correlator_shards: 0,
        }
    }
}

/// What one offered-load step measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepMetrics {
    /// The load the pacing aimed for, records/s.
    pub offered_per_sec: f64,
    /// What the senders actually put on the wire, records/s.
    pub sent_per_sec: f64,
    /// Records that entered the LookUp queue, records/s (decoded flows
    /// minus queue drops).
    pub accepted_per_sec: f64,
    /// Share of sent records not accepted, percent — kernel socket-buffer
    /// loss plus pipeline queue drops, the paper's "loss on the streams".
    pub drop_pct: f64,
    /// The part of `drop_pct` lost at the bounded LookUp queue (the rest
    /// never made it off the kernel socket buffer).
    pub queue_drop_pct: f64,
    /// Median sampled LookUp-queue residency during the step, µs.
    pub p50_queue_latency_us: u64,
    /// 99th-percentile sampled LookUp-queue residency, µs.
    pub p99_queue_latency_us: u64,
    /// 99.9th-percentile sampled LookUp-queue residency, µs — the tail
    /// an operator's SLO actually trips on.
    pub p999_queue_latency_us: u64,
    /// Residency samples resolved during the step.
    pub queue_latency_samples: u64,
}

/// One run of the stepped procedure (batched or baseline).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Effective listener-group size (may be clamped to 1 off-Linux).
    pub listeners: usize,
    /// `recv_batch` the run used.
    pub recv_batch: usize,
    /// Every step, in offered-load order.
    pub steps: Vec<StepMetrics>,
    /// The highest-accepted-rate step that stayed within the drop limit
    /// (the rate the run *sustained*; falls back to the best step overall
    /// if every step was over the limit).
    pub peak: StepMetrics,
    /// Whether the run ended by exceeding the drop limit (as opposed to
    /// running out of steps or out-driving the senders).
    pub saturated: bool,
    /// Mean datagrams taken per socket drain across the whole run —
    /// direct evidence of how deep the batched receive loop actually
    /// went (1.0 by construction for the per-datagram baseline).
    pub avg_drain: f64,
    /// The SLO knee: the highest-accepted step that was lossless
    /// (`drop_pct == 0`) with p99 queue wait ≤ [`SLO_P99_LIMIT_US`].
    /// `None` when no step qualified — a run that only ever sustained
    /// load by letting the queue-wait tail blow out.
    pub slo_knee: Option<StepMetrics>,
    /// Sampled p99 queue wait of one fixed-rate probe step at
    /// [`KNEE_PROBE_FRACTION`] of the raw knee, µs — the comparable
    /// tail number across shared-queue and sharded-ring topologies.
    pub p99_at_80pct_us: u64,
}

/// One point of the shared-nothing scaling curve.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// `correlator_shards` this knee search ran with.
    pub shards: usize,
    /// Raw knee: best accepted rate within the drop limit, records/s.
    pub raw_knee_per_sec: f64,
    /// SLO knee accepted rate (lossless, p99 ≤ 10 ms), if any step
    /// qualified.
    pub slo_knee_per_sec: Option<f64>,
    /// p99 queue wait at 80 % of this point's raw knee, µs.
    pub p99_at_80pct_us: u64,
}

/// The speedup-confidence probe: paired fixed-rate A/B arms (batched
/// topology vs per-datagram baseline, alternating) at the batched knee
/// rate. Every step of every arm is kept as an independent reading; the
/// within-arm spread is the host's trial variance and the between-arm
/// gap is the measured effect.
#[derive(Debug, Clone)]
pub struct SpeedupVariance {
    /// The common offered rate both arms were driven at, records/s.
    pub probe_rate_per_sec: f64,
    /// Accepted-rate readings of the batched-topology arms.
    pub batched_readings: Vec<f64>,
    /// Accepted-rate readings of the per-datagram baseline arms.
    pub baseline_readings: Vec<f64>,
}

impl SpeedupVariance {
    fn mean(xs: &[f64]) -> f64 {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }

    fn arm_spread_pct(xs: &[f64]) -> f64 {
        let mean = Self::mean(xs);
        if xs.is_empty() || mean <= 0.0 {
            return 0.0;
        }
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        (max - min) / mean * 100.0
    }

    /// Mean batched reading over mean baseline reading, as a percent
    /// gain (positive = batched faster).
    pub fn effect_pct(&self) -> f64 {
        let base = Self::mean(&self.baseline_readings);
        if base <= 0.0 {
            return 0.0;
        }
        (Self::mean(&self.batched_readings) - base) / base * 100.0
    }

    /// The worse (larger) of the two arms' within-arm relative spreads.
    pub fn spread_pct(&self) -> f64 {
        Self::arm_spread_pct(&self.batched_readings)
            .max(Self::arm_spread_pct(&self.baseline_readings))
    }

    /// `true` when trial noise is at least as large as the measured
    /// effect — the headline speedup is not distinguishable from noise
    /// on this host and must not be quoted as a result.
    pub fn inconclusive(&self) -> bool {
        self.spread_pct() >= self.effect_pct().abs()
    }
}

/// The observability tax, measured as a paired fixed-rate A/B probe at
/// the batched run's knee rate: alternating fresh runtimes with
/// telemetry off and fully on, each read as its best accepted rate
/// across the probe steps.
#[derive(Debug, Clone, Copy)]
pub struct ObsOverhead {
    /// Best probe reading with telemetry off (no endpoint, no tracing).
    pub off_peak_per_sec: f64,
    /// Best probe reading with `/metrics` polled every 250 ms
    /// (`SCRAPE_INTERVAL`) and 1-in-1024 (`TRACE_SAMPLE_EVERY`)
    /// tracing on.
    pub on_peak_per_sec: f64,
    /// `(off − on) / off × 100`. Positive means telemetry cost
    /// throughput; small negative values are run-to-run noise.
    pub regression_pct: f64,
    /// `/metrics` scrapes completed across the telemetry arms.
    pub scrapes: u64,
    /// Flight-recorder spans written across the telemetry arms.
    pub trace_spans: u64,
}

/// What a telemetry-enabled arm observed about its own telemetry.
struct ObsRunStats {
    scrapes: u64,
    trace_spans: u64,
}

/// The harness's complete result, ready to serialize.
#[derive(Debug, Clone)]
pub struct SaturationReport {
    /// Configuration the harness ran with.
    pub config: SaturationConfig,
    /// The batched-drain run.
    pub batched: RunResult,
    /// The per-datagram, single-listener baseline run.
    pub baseline: RunResult,
    /// The batched run re-measured with telemetry live, versus `batched`.
    pub obs_overhead: ObsOverhead,
    /// Knee search repeated with the sharded correlator, one point per
    /// shard count ({1, 2, 4} full, {2} smoke).
    pub scaling: Vec<ScalingPoint>,
    /// The paired A/B confidence probe behind `speedup_vs_baseline`.
    pub variance: SpeedupVariance,
}

impl SaturationReport {
    /// Peak-accepted-rate ratio of the batched run over the baseline.
    pub fn speedup_vs_baseline(&self) -> f64 {
        if self.baseline.peak.accepted_per_sec > 0.0 {
            self.batched.peak.accepted_per_sec / self.baseline.peak.accepted_per_sec
        } else {
            0.0
        }
    }
}

/// Run the full procedure: batched knee search, per-datagram baseline
/// knee search, the paired telemetry-overhead probe at the batched knee
/// rate, the speedup-variance probe at the same rate, and one sharded
/// knee search per scaling shard count.
pub fn run(config: &SaturationConfig) -> Result<SaturationReport, FlowDnsError> {
    let pool = saturation_pool(config.dns_entries);
    let datagrams = Arc::new(encode_datagrams(&pool, config.records_per_datagram)?);
    let batched = run_one(
        config,
        config.netflow_listeners,
        config.recv_batch,
        &pool,
        &datagrams,
    )?;
    let baseline = run_one(config, 1, 1, &pool, &datagrams)?;
    let obs_overhead =
        measure_obs_overhead(config, &pool, &datagrams, batched.peak.offered_per_sec)?;
    let variance =
        measure_speedup_variance(config, &pool, &datagrams, batched.peak.offered_per_sec)?;
    // The scaling curve: the same knee search with the shared-nothing
    // sharded correlator. The smoke pass keeps a single 2-shard point so
    // CI exercises the routed-counter accounting check on every run.
    let shard_counts: &[usize] = if config.smoke { &[2] } else { &[1, 2, 4] };
    let mut scaling = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let mut sharded = config.clone();
        sharded.correlator_shards = shards;
        let run = run_one(
            &sharded,
            config.netflow_listeners,
            config.recv_batch,
            &pool,
            &datagrams,
        )?;
        scaling.push(ScalingPoint {
            shards,
            raw_knee_per_sec: run.peak.accepted_per_sec,
            slo_knee_per_sec: run.slo_knee.map(|s| s.accepted_per_sec),
            p99_at_80pct_us: run.p99_at_80pct_us,
        });
    }
    Ok(SaturationReport {
        config: config.clone(),
        batched,
        baseline,
        obs_overhead,
        scaling,
        variance,
    })
}

/// The speedup-confidence probe: alternating batched-topology and
/// per-datagram-baseline arms at the fixed batched knee rate, keeping
/// every step's accepted rate as an independent reading. At this rate
/// the batched arm accepts ≈ the offered load and the baseline arm
/// accepts ≈ its own (lower) capacity, so the between-arm gap *is* the
/// speedup effect — measured with the same fixed-rate methodology whose
/// within-arm spread quantifies the host's trial noise.
fn measure_speedup_variance(
    config: &SaturationConfig,
    pool: &[(flowdns_types::DomainName, std::net::Ipv4Addr)],
    datagrams: &Arc<Vec<Vec<u8>>>,
    knee_rate: f64,
) -> Result<SpeedupVariance, FlowDnsError> {
    let (rounds, steps) = if config.smoke {
        (1, 1)
    } else {
        (VARIANCE_ROUNDS, VARIANCE_STEPS)
    };
    let mut batched_readings = Vec::new();
    let mut baseline_readings = Vec::new();
    for _ in 0..rounds {
        let (readings, _) = probe_arm(
            config,
            pool,
            datagrams,
            knee_rate,
            config.netflow_listeners,
            config.recv_batch,
            false,
            steps,
        )?;
        batched_readings.extend(readings);
        let (readings, _) = probe_arm(config, pool, datagrams, knee_rate, 1, 1, false, steps)?;
        baseline_readings.extend(readings);
    }
    Ok(SpeedupVariance {
        probe_rate_per_sec: knee_rate,
        batched_readings,
        baseline_readings,
    })
}

/// The paired A/B overhead probe: alternating off/on arms at the fixed
/// `knee_rate`, best reading per arm across all rounds. Comparing two
/// independently bisected knees cannot resolve a sub-1 % overhead
/// (knee location jitters several percent run to run); accepted
/// throughput at a fixed offered rate can.
fn measure_obs_overhead(
    config: &SaturationConfig,
    pool: &[(flowdns_types::DomainName, std::net::Ipv4Addr)],
    datagrams: &Arc<Vec<Vec<u8>>>,
    knee_rate: f64,
) -> Result<ObsOverhead, FlowDnsError> {
    let (rounds, steps) = if config.smoke {
        (1, 2)
    } else {
        (OBS_PROBE_ROUNDS, OBS_PROBE_STEPS)
    };
    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    let mut scrapes = 0u64;
    let mut trace_spans = 0u64;
    let best_of = |readings: &[f64]| readings.iter().cloned().fold(0.0f64, f64::max);
    for _ in 0..rounds {
        let (off, _) = probe_arm(
            config,
            pool,
            datagrams,
            knee_rate,
            config.netflow_listeners,
            config.recv_batch,
            false,
            steps,
        )?;
        let (on, stats) = probe_arm(
            config,
            pool,
            datagrams,
            knee_rate,
            config.netflow_listeners,
            config.recv_batch,
            true,
            steps,
        )?;
        best_off = best_off.max(best_of(&off));
        best_on = best_on.max(best_of(&on));
        if let Some(stats) = stats {
            scrapes += stats.scrapes;
            trace_spans += stats.trace_spans;
        }
    }
    let regression_pct = if best_off > 0.0 {
        (best_off - best_on) / best_off * 100.0
    } else {
        0.0
    };
    Ok(ObsOverhead {
        off_peak_per_sec: best_off,
        on_peak_per_sec: best_on,
        regression_pct,
        scrapes,
        trace_spans,
    })
}

/// One probe arm: a fresh runtime of the given topology (telemetry per
/// `telemetry`), one warm-up step, then `steps` paced steps at `rate`;
/// returns every step's accepted rate (callers decide whether the max
/// or the spread is the measurement).
#[allow(clippy::too_many_arguments)]
fn probe_arm(
    config: &SaturationConfig,
    pool: &[(flowdns_types::DomainName, std::net::Ipv4Addr)],
    datagrams: &Arc<Vec<Vec<u8>>>,
    rate: f64,
    listeners: usize,
    recv_batch: usize,
    telemetry: bool,
    steps: usize,
) -> Result<(Vec<f64>, Option<ObsRunStats>), FlowDnsError> {
    let arm = ArmRuntime::start(config, listeners, recv_batch, pool, telemetry)?;
    let mut warm = config.clone();
    warm.step = Duration::from_millis(300);
    let _ = run_step(&arm.rt, datagrams, rate, &warm);
    let mut readings = Vec::with_capacity(steps.max(1));
    for _ in 0..steps.max(1) {
        let step = run_step(&arm.rt, datagrams, rate, config);
        readings.push(step.accepted_per_sec);
    }
    let stats = arm.finish()?;
    Ok((readings, stats))
}

/// Pre-encode the whole pool as max-size v5 datagrams; every pool
/// address appears, so the steady-state lookup path is all store hits.
/// The pool is cycled up to a multiple of `per_datagram` so every
/// datagram carries exactly the same record count — the senders'
/// `packets × records_per_datagram` accounting stays exact.
fn encode_datagrams(
    pool: &[(flowdns_types::DomainName, std::net::Ipv4Addr)],
    per_datagram: usize,
) -> Result<Vec<Vec<u8>>, FlowDnsError> {
    let per_datagram = per_datagram.clamp(1, MAX_RECORDS_PER_DATAGRAM);
    let full_len = pool.len().div_ceil(per_datagram) * per_datagram;
    let cycled: Vec<_> = pool.iter().cycle().take(full_len).collect();
    let mut out = Vec::with_capacity(full_len / per_datagram);
    for chunk in cycled.chunks(per_datagram) {
        let packet = V5Packet {
            header: V5Header {
                unix_secs: FLOW_TS_SECS,
                ..Default::default()
            },
            records: chunk
                .iter()
                .map(|(_, ip)| V5Record {
                    src_addr: *ip,
                    dst_addr: std::net::Ipv4Addr::new(192, 0, 2, 1),
                    src_port: 443,
                    dst_port: 50_000,
                    proto: 6,
                    packets: 10,
                    octets: 1_400,
                    ..Default::default()
                })
                .collect(),
        };
        out.push(packet.encode()?);
    }
    Ok(out)
}

/// Preload the DNS store over the real TCP feed and wait until every
/// entry is queryable.
fn preload_dns(
    rt: &IngestRuntime,
    pool: &[(flowdns_types::DomainName, std::net::Ipv4Addr)],
) -> Result<(), FlowDnsError> {
    let io_err = |e: std::io::Error| FlowDnsError::Io(e.to_string());
    let encoder = FrameEncoder::new();
    let records: Vec<DnsRecord> = pool
        .iter()
        .map(|(name, ip)| {
            DnsRecord::address(
                SimTime::from_secs(DNS_TS_SECS),
                name.clone(),
                (*ip).into(),
                86_400,
            )
        })
        .collect();
    let mut conn = TcpStream::connect(rt.dns_addr()).map_err(io_err)?;
    for chunk in records.chunks(512) {
        let frame = encoder.encode_batch(chunk)?;
        conn.write_all(&frame).map_err(io_err)?;
    }
    conn.flush().map_err(io_err)?;
    let deadline = Instant::now() + Duration::from_secs(30);
    while rt.correlator().stored_entries() < pool.len() {
        if Instant::now() > deadline {
            return Err(FlowDnsError::PipelineState(format!(
                "DNS preload stalled: {}/{} entries",
                rt.correlator().stored_entries(),
                pool.len()
            )));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    Ok(())
}

/// A started `IngestRuntime` plus the telemetry-arm trimmings (scraper
/// thread, trace file) when `telemetry` is on — shared by the knee
/// ladders (always off) and the overhead probe arms.
struct ArmRuntime {
    rt: IngestRuntime,
    stop_scraper: Arc<AtomicBool>,
    scraper: Option<std::thread::JoinHandle<u64>>,
    trace_path: Option<std::path::PathBuf>,
    telemetry: bool,
}

impl ArmRuntime {
    fn start(
        config: &SaturationConfig,
        listeners: usize,
        recv_batch: usize,
        pool: &[(flowdns_types::DomainName, std::net::Ipv4Addr)],
        telemetry: bool,
    ) -> Result<Self, FlowDnsError> {
        let mut daemon = DaemonConfig::default();
        daemon.ingest.netflow_bind = "127.0.0.1:0".parse().expect("loopback addr");
        daemon.ingest.dns_bind = "127.0.0.1:0".parse().expect("loopback addr");
        daemon.ingest.netflow_listeners = listeners;
        daemon.ingest.recv_batch = recv_batch;
        daemon.correlator.lookup_workers = config.lookup_workers;
        // 0 = classic shared queues; >0 = shared-nothing shard workers
        // fed by key-routed SPSC rings (the `scaling` section's runs).
        daemon.correlator.correlator_shards = config.correlator_shards;
        // The telemetry arm turns on everything an operator would: the
        // scrape endpoint (polled below) and sampled flow tracing.
        let trace_path = telemetry.then(|| {
            std::env::temp_dir().join(format!("flowdns-bench-trace-{}.jsonl", std::process::id()))
        });
        if let Some(path) = &trace_path {
            daemon.ingest.metrics_addr = Some("127.0.0.1:0".parse().expect("loopback addr"));
            daemon.correlator.trace_sample_every = TRACE_SAMPLE_EVERY;
            daemon.correlator.trace_path = Some(path.display().to_string());
        }
        // Correlated records are discarded after accounting (no
        // `output`), so the harness measures ingest + correlation, not
        // disk.
        let rt = IngestRuntime::start(&daemon)?;
        preload_dns(&rt, pool)?;

        // A concurrent scraper keeps the endpoint genuinely hot while
        // the load runs — overhead measured with an idle endpoint would
        // be zero by construction.
        let stop_scraper = Arc::new(AtomicBool::new(false));
        let scraper = rt.metrics_addr().map(|addr| {
            let stop = Arc::clone(&stop_scraper);
            std::thread::spawn(move || {
                let mut completed = 0u64;
                while !stop.load(Ordering::Acquire) {
                    if scrape_metrics(addr) {
                        completed += 1;
                    }
                    std::thread::sleep(SCRAPE_INTERVAL);
                }
                completed
            })
        });
        Ok(ArmRuntime {
            rt,
            stop_scraper,
            scraper,
            trace_path,
            telemetry,
        })
    }

    /// Stop the scraper, collect the telemetry stats, shut the runtime
    /// down and remove the trace files.
    fn finish(mut self) -> Result<Option<ObsRunStats>, FlowDnsError> {
        self.stop_scraper.store(true, Ordering::Release);
        let stats = self.telemetry.then(|| ObsRunStats {
            scrapes: self
                .scraper
                .take()
                .map(|h| h.join().unwrap_or(0))
                .unwrap_or(0),
            trace_spans: self
                .rt
                .registry()
                .snapshot()
                .counter("flowdns_trace_spans_total"),
        });
        self.rt.shutdown()?;
        if let Some(path) = &self.trace_path {
            let _ = std::fs::remove_file(path);
            let _ = std::fs::remove_file(format!("{}.1", path.display()));
        }
        Ok(stats)
    }
}

/// One blocking `/metrics` poll; `true` when a 200 came back complete.
fn scrape_metrics(addr: SocketAddr) -> bool {
    use std::io::Read;
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    if stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")
        .is_err()
    {
        return false;
    }
    let mut response = String::new();
    stream.read_to_string(&mut response).is_ok() && response.starts_with("HTTP/1.1 200")
}

fn run_one(
    config: &SaturationConfig,
    listeners: usize,
    recv_batch: usize,
    pool: &[(flowdns_types::DomainName, std::net::Ipv4Addr)],
    datagrams: &Arc<Vec<Vec<u8>>>,
) -> Result<RunResult, FlowDnsError> {
    let arm = ArmRuntime::start(config, listeners, recv_batch, pool, false)?;
    let rt = &arm.rt;
    let effective_listeners = rt.snapshot().netflow_listeners.len();

    // Warm caches, threads, and queues before the first measured step.
    let mut warm = config.clone();
    warm.step = Duration::from_millis(300);
    let _ = run_step(rt, datagrams, config.initial_rate, &warm);

    // Best-of-N: loss can only be inflated by transient host noise,
    // so a step counts as sustained if any trial stays clean.
    let measured = |offered: f64| -> StepMetrics {
        let mut step = run_step(rt, datagrams, offered, config);
        for _ in 1..config.trials.max(1) {
            if step.drop_pct <= config.drop_limit_pct {
                break;
            }
            let again = run_step(rt, datagrams, offered, config);
            if again.drop_pct < step.drop_pct {
                step = again;
            }
        }
        step
    };

    let mut steps: Vec<StepMetrics> = Vec::new();
    let mut offered = config.initial_rate;
    let mut saturated = false;
    for _ in 0..config.max_steps {
        let step = measured(offered);
        let sender_bound = step.sent_per_sec < 0.7 * step.offered_per_sec;
        let over_limit = step.drop_pct > config.drop_limit_pct;
        steps.push(step);
        if over_limit {
            saturated = true;
            break;
        }
        if sender_bound {
            break; // the loopback driver, not the listener, is the limit
        }
        offered *= config.growth;
    }

    // The geometric ladder is coarse — `growth`× per step — so two
    // configurations with different capacities can fail on the same
    // rung. Bisect between the last clean rate and the failing rate to
    // locate this configuration's own knee.
    if saturated && steps.len() >= 2 {
        let mut lo = steps[steps.len() - 2].offered_per_sec;
        let mut hi = steps[steps.len() - 1].offered_per_sec;
        for _ in 0..REFINE_STEPS {
            let mid = (lo + hi) / 2.0;
            let step = measured(mid);
            let clean = step.drop_pct <= config.drop_limit_pct;
            steps.push(step);
            if clean {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
    let counters = rt.snapshot().netflow_listeners;
    let (datagram_total, drain_total) = counters
        .iter()
        .fold((0u64, 0u64), |(d, r), c| (d + c.datagrams, r + c.drains));
    let avg_drain = if drain_total == 0 {
        0.0
    } else {
        datagram_total as f64 / drain_total as f64
    };

    let best = |candidates: &[&StepMetrics]| {
        candidates
            .iter()
            .max_by(|a, b| a.accepted_per_sec.total_cmp(&b.accepted_per_sec))
            .map(|s| **s)
    };
    let clean: Vec<&StepMetrics> = steps
        .iter()
        .filter(|s| s.drop_pct <= config.drop_limit_pct)
        .collect();
    let peak = best(&clean)
        .or_else(|| best(&steps.iter().collect::<Vec<_>>()))
        .expect("at least one step ran");
    let slo_knee = slo_knee_of(&steps);

    // The comparable tail number: one fixed-rate step at 80 % of this
    // run's own raw knee, read for its p99 queue wait. Taken on the
    // same warm runtime so topology, not warm-up, is the variable.
    let probe = run_step(
        rt,
        datagrams,
        peak.offered_per_sec * KNEE_PROBE_FRACTION,
        config,
    );
    let p99_at_80pct_us = probe.p99_queue_latency_us;

    // Sharded runs must account for every accepted flow in the
    // per-shard routed counters — the CI smoke pass runs this check on
    // every push (a routing bug that loses or double-counts records
    // would silently invalidate the whole scaling curve).
    if config.correlator_shards > 0 {
        verify_shard_routing(rt, config.correlator_shards)?;
    }
    arm.finish()?;

    Ok(RunResult {
        listeners: effective_listeners,
        recv_batch,
        steps,
        peak,
        saturated,
        avg_drain,
        slo_knee,
        p99_at_80pct_us,
    })
}

/// The SLO knee of a finished ladder: the highest-accepted step that
/// was lossless with its p99 queue wait within [`SLO_P99_LIMIT_US`].
fn slo_knee_of(steps: &[StepMetrics]) -> Option<StepMetrics> {
    steps
        .iter()
        .filter(|s| s.drop_pct == 0.0 && s.p99_queue_latency_us <= SLO_P99_LIMIT_US)
        .max_by(|a, b| a.accepted_per_sec.total_cmp(&b.accepted_per_sec))
        .copied()
}

/// Cross-check the sharded pipeline's accounting: the per-shard routed
/// counters (SPSC lane accepts) must sum to exactly the flows the
/// listener side reports as decoded-minus-queue-dropped, one counter
/// vector entry per shard, and under a hash-balanced pool no shard may
/// sit at zero.
fn verify_shard_routing(rt: &IngestRuntime, shards: usize) -> Result<(), FlowDnsError> {
    let (_, flow_routed) = rt.correlator().shard_routed_counts().ok_or_else(|| {
        FlowDnsError::PipelineState("sharded run exposes no per-shard routed counters".into())
    })?;
    if flow_routed.len() != shards {
        return Err(FlowDnsError::PipelineState(format!(
            "routed-counter vector has {} entries for {shards} shards",
            flow_routed.len()
        )));
    }
    let summary = rt.snapshot().summary;
    let accepted = summary
        .netflow_flows
        .saturating_sub(summary.netflow_queue_drops);
    let routed: u64 = flow_routed.iter().sum();
    if routed != accepted {
        return Err(FlowDnsError::PipelineState(format!(
            "per-shard routed counters sum to {routed} but the listeners accepted {accepted} \
             flows ({} decoded − {} queue drops)",
            summary.netflow_flows, summary.netflow_queue_drops
        )));
    }
    if flow_routed.contains(&0) {
        return Err(FlowDnsError::PipelineState(format!(
            "a shard received zero flows from a hash-balanced pool: {flow_routed:?}"
        )));
    }
    Ok(())
}

/// Drive one offered-load step and measure it from snapshot deltas.
fn run_step(
    rt: &IngestRuntime,
    datagrams: &Arc<Vec<Vec<u8>>>,
    offered_per_sec: f64,
    config: &SaturationConfig,
) -> StepMetrics {
    let senders = config.senders;
    let step = config.step;
    let per_datagram = config
        .records_per_datagram
        .clamp(1, MAX_RECORDS_PER_DATAGRAM);
    let target = rt.netflow_addr();
    let before = rt.snapshot();
    let start = Instant::now();
    let handles: Vec<_> = (0..senders.max(1))
        .map(|s| {
            let datagrams = Arc::clone(datagrams);
            let pps = offered_per_sec / per_datagram as f64 / senders.max(1) as f64;
            std::thread::spawn(move || send_paced(&datagrams, target, s, pps, step))
        })
        .collect();
    let packets_sent: u64 = handles.into_iter().map(|h| h.join().unwrap_or(0)).sum();
    let send_window = start.elapsed().as_secs_f64().max(1e-6);
    std::thread::sleep(DRAIN_PAUSE);
    let after = rt.snapshot();

    let sent = packets_sent * per_datagram as u64;
    let decoded = after.summary.netflow_flows - before.summary.netflow_flows;
    let queue_dropped = after.summary.netflow_queue_drops - before.summary.netflow_queue_drops;
    let accepted = decoded.saturating_sub(queue_dropped).min(sent);
    let latency = latency_delta(&after, &before);
    let pct = |part: u64| {
        if sent == 0 {
            0.0
        } else {
            part as f64 / sent as f64 * 100.0
        }
    };
    StepMetrics {
        offered_per_sec,
        sent_per_sec: sent as f64 / send_window,
        accepted_per_sec: accepted as f64 / send_window,
        drop_pct: pct(sent - accepted),
        queue_drop_pct: pct(queue_dropped.min(sent)),
        p50_queue_latency_us: latency.p50_us(),
        p99_queue_latency_us: latency.p99_us(),
        p999_queue_latency_us: latency.p999_us(),
        queue_latency_samples: latency.count,
    }
}

fn latency_delta(
    after: &IngestSnapshot,
    before: &IngestSnapshot,
) -> flowdns_stream::LatencySnapshot {
    after
        .pipeline
        .lookup_queue_latency
        .delta(&before.pipeline.lookup_queue_latency)
}

/// One sender thread: fire pre-encoded datagrams at `pps` packets/s
/// until the step window closes. Returns packets sent.
fn send_paced(
    datagrams: &[Vec<u8>],
    target: SocketAddr,
    seed: usize,
    pps: f64,
    window: Duration,
) -> u64 {
    let socket = match UdpSocket::bind("127.0.0.1:0") {
        Ok(s) => s,
        Err(_) => return 0,
    };
    if socket.connect(target).is_err() {
        return 0;
    }
    let start = Instant::now();
    let mut sent = 0u64;
    // Different senders start at different pool offsets so the union of
    // their traffic still covers every exporter address evenly.
    let mut index = seed * datagrams.len() / 4;
    loop {
        let elapsed = start.elapsed();
        if elapsed >= window {
            break;
        }
        // Send whatever the pacing schedule says should have left by
        // now, in sendmmsg(2) bursts so the driver's own syscall rate
        // stays far below the listener's — otherwise the load generator
        // competing for the same cores becomes the thing measured.
        let due = (elapsed.as_secs_f64() * pps).ceil() as u64;
        while sent < due {
            let backlog = ((due - sent) as usize).min(SEND_BURST);
            let from = index % datagrams.len();
            let to = (from + backlog).min(datagrams.len());
            let views: Vec<&[u8]> = datagrams[from..to].iter().map(|d| d.as_slice()).collect();
            match flowdns_ingest::mmsg::send_burst(&socket, &views) {
                Ok(n) => {
                    sent += n as u64;
                    index += n.max(1);
                }
                Err(_) => index += 1, // transient; skip one slot and retry
            }
            if start.elapsed() >= window {
                return sent;
            }
        }
        std::thread::sleep(PACING_TICK);
    }
    sent
}

// ---------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------

/// Render a float for JSON: finite values with three decimals, non-finite
/// as `null` (which the schema validator then rejects — NaNs must fail
/// loudly, not round-trip silently).
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn step_json(step: &StepMetrics, indent: &str) -> String {
    format!(
        "{indent}{{\"offered_per_sec\": {}, \"sent_per_sec\": {}, \"accepted_per_sec\": {}, \
         \"drop_pct\": {}, \"queue_drop_pct\": {}, \"p50_queue_latency_us\": {}, \
         \"p99_queue_latency_us\": {}, \"p999_queue_latency_us\": {}, \
         \"queue_latency_samples\": {}}}",
        jnum(step.offered_per_sec),
        jnum(step.sent_per_sec),
        jnum(step.accepted_per_sec),
        jnum(step.drop_pct),
        jnum(step.queue_drop_pct),
        step.p50_queue_latency_us,
        step.p99_queue_latency_us,
        step.p999_queue_latency_us,
        step.queue_latency_samples,
    )
}

fn run_json(run: &RunResult) -> String {
    let steps: Vec<String> = run.steps.iter().map(|s| step_json(s, "      ")).collect();
    let slo_knee = match &run.slo_knee {
        Some(step) => step_json(step, "").trim_start().to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\n    \"listeners\": {},\n    \"recv_batch\": {},\n    \"saturated\": {},\n    \
         \"avg_drain\": {},\n    \"steps\": [\n{}\n    ],\n    \"peak\": {},\n    \
         \"slo_knee\": {},\n    \"p99_at_80pct_us\": {}\n  }}",
        run.listeners,
        run.recv_batch,
        run.saturated,
        jnum(run.avg_drain),
        steps.join(",\n"),
        step_json(&run.peak, "").trim_start(),
        slo_knee,
        run.p99_at_80pct_us,
    )
}

fn scaling_json(points: &[ScalingPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"shards\": {}, \"raw_knee_per_sec\": {}, \"slo_knee_per_sec\": {}, \
                 \"p99_at_80pct_us\": {}}}",
                p.shards,
                jnum(p.raw_knee_per_sec),
                p.slo_knee_per_sec.map_or("null".to_string(), jnum),
                p.p99_at_80pct_us,
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

fn variance_json(v: &SpeedupVariance) -> String {
    let list = |xs: &[f64]| {
        let rendered: Vec<String> = xs.iter().map(|&x| jnum(x)).collect();
        format!("[{}]", rendered.join(", "))
    };
    format!(
        "{{\"probe_rate_per_sec\": {}, \"batched_readings\": {}, \"baseline_readings\": {}, \
         \"effect_pct\": {}, \"spread_pct\": {}, \"inconclusive\": {}}}",
        jnum(v.probe_rate_per_sec),
        list(&v.batched_readings),
        list(&v.baseline_readings),
        jnum(v.effect_pct()),
        jnum(v.spread_pct()),
        v.inconclusive(),
    )
}

impl SaturationReport {
    /// Serialize to the `flowdns-bench/saturation/v3` JSON document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"flowdns-bench/saturation/v3\",\n  \"bench\": \"saturation\",\n  \
             \"mode\": \"{}\",\n  \"config\": {{\"netflow_listeners\": {}, \"recv_batch\": {}, \
             \"lookup_workers\": {}, \"senders\": {}, \"step_secs\": {}, \"trials\": {}, \
             \"dns_entries\": {}, \"records_per_datagram\": {}, \"slo_p99_limit_us\": {}}},\n  \
             \"batched\": {},\n  \
             \"baseline\": {},\n  \"speedup_vs_baseline\": {},\n  \"obs_overhead\": \
             {{\"off_peak_per_sec\": {}, \"on_peak_per_sec\": {}, \"regression_pct\": {}, \
             \"scrapes\": {}, \"trace_spans\": {}}},\n  \"variance\": {},\n  \
             \"scaling\": {}\n}}\n",
            if self.config.smoke { "smoke" } else { "full" },
            self.config.netflow_listeners,
            self.config.recv_batch,
            self.config.lookup_workers,
            self.config.senders,
            jnum(self.config.step.as_secs_f64()),
            self.config.trials,
            self.config.dns_entries,
            self.config.records_per_datagram,
            SLO_P99_LIMIT_US,
            run_json(&self.batched),
            run_json(&self.baseline),
            jnum(self.speedup_vs_baseline()),
            jnum(self.obs_overhead.off_peak_per_sec),
            jnum(self.obs_overhead.on_peak_per_sec),
            jnum(self.obs_overhead.regression_pct),
            self.obs_overhead.scrapes,
            self.obs_overhead.trace_spans,
            variance_json(&self.variance),
            scaling_json(&self.scaling),
        )
    }
}

// ---------------------------------------------------------------------
// JSON validation (the CI `--check` path)
// ---------------------------------------------------------------------

use crate::jsonv::{parse_document, require_num, Json};

fn check_step(step: &Json, context: &str) -> Result<(), String> {
    for key in [
        "offered_per_sec",
        "sent_per_sec",
        "accepted_per_sec",
        "drop_pct",
        "queue_drop_pct",
        "p50_queue_latency_us",
        "p99_queue_latency_us",
        "p999_queue_latency_us",
        "queue_latency_samples",
    ] {
        let x = require_num(step, key, context)?;
        if x < 0.0 {
            return Err(format!("{context}: '{key}' is negative"));
        }
    }
    if require_num(step, "offered_per_sec", context)? <= 0.0 {
        return Err(format!("{context}: offered_per_sec must be positive"));
    }
    Ok(())
}

fn check_run(doc: &Json, name: &str) -> Result<(), String> {
    let run = doc
        .get(name)
        .ok_or_else(|| format!("missing top-level object '{name}'"))?;
    require_num(run, "listeners", name)?;
    require_num(run, "recv_batch", name)?;
    require_num(run, "avg_drain", name)?;
    match run.get("saturated") {
        Some(Json::Bool(_)) => {}
        _ => return Err(format!("{name}: 'saturated' must be a boolean")),
    }
    let steps = match run.get("steps") {
        Some(Json::Arr(steps)) => steps,
        _ => return Err(format!("{name}: 'steps' must be an array")),
    };
    if steps.is_empty() {
        return Err(format!("{name}: 'steps' is empty"));
    }
    for (i, step) in steps.iter().enumerate() {
        check_step(step, &format!("{name}.steps[{i}]"))?;
    }
    let peak = run
        .get("peak")
        .ok_or_else(|| format!("{name}: missing 'peak'"))?;
    check_step(peak, &format!("{name}.peak"))?;
    if require_num(peak, "accepted_per_sec", name)? <= 0.0 {
        return Err(format!("{name}.peak: accepted_per_sec must be positive"));
    }
    // v3: the SLO knee may honestly be null (no lossless ≤10 ms step),
    // but the key itself must be present, and when it is a step it must
    // be a complete one.
    match run.get("slo_knee") {
        Some(Json::Null) => {}
        Some(step) => check_step(step, &format!("{name}.slo_knee"))?,
        None => return Err(format!("{name}: missing 'slo_knee'")),
    }
    if require_num(run, "p99_at_80pct_us", name)? < 0.0 {
        return Err(format!("{name}: 'p99_at_80pct_us' is negative"));
    }
    Ok(())
}

fn check_scaling(doc: &Json) -> Result<(), String> {
    let points = match doc.get("scaling") {
        Some(Json::Arr(points)) => points,
        Some(_) => return Err("'scaling' must be an array".into()),
        None => return Err("missing top-level array 'scaling'".into()),
    };
    if points.is_empty() {
        return Err("'scaling' is empty".into());
    }
    for (i, point) in points.iter().enumerate() {
        let context = format!("scaling[{i}]");
        if require_num(point, "shards", &context)? < 1.0 {
            return Err(format!("{context}: 'shards' must be at least 1"));
        }
        if require_num(point, "raw_knee_per_sec", &context)? <= 0.0 {
            return Err(format!("{context}: 'raw_knee_per_sec' must be positive"));
        }
        match point.get("slo_knee_per_sec") {
            Some(Json::Null) => {}
            Some(Json::Num(x)) if x.is_finite() && *x >= 0.0 => {}
            _ => {
                return Err(format!(
                    "{context}: 'slo_knee_per_sec' must be null or a non-negative number"
                ))
            }
        }
        if require_num(point, "p99_at_80pct_us", &context)? < 0.0 {
            return Err(format!("{context}: 'p99_at_80pct_us' is negative"));
        }
    }
    Ok(())
}

fn check_variance(doc: &Json) -> Result<(), String> {
    let v = doc
        .get("variance")
        .ok_or("missing top-level object 'variance'")?;
    if require_num(v, "probe_rate_per_sec", "variance")? <= 0.0 {
        return Err("variance: 'probe_rate_per_sec' must be positive".into());
    }
    for key in ["batched_readings", "baseline_readings"] {
        let readings = match v.get(key) {
            Some(Json::Arr(readings)) => readings,
            _ => return Err(format!("variance: '{key}' must be an array")),
        };
        if readings.is_empty() {
            return Err(format!("variance: '{key}' is empty"));
        }
        for (i, reading) in readings.iter().enumerate() {
            match reading.as_num() {
                Some(x) if x.is_finite() && x >= 0.0 => {}
                _ => return Err(format!("variance: '{key}[{i}]' is not a finite number")),
            }
        }
    }
    // Sign-free: a baseline arm outrunning the batched arm is a real
    // (negative) effect reading, not a schema violation.
    require_num(v, "effect_pct", "variance")?;
    if require_num(v, "spread_pct", "variance")? < 0.0 {
        return Err("variance: 'spread_pct' is negative".into());
    }
    match v.get("inconclusive") {
        Some(Json::Bool(_)) => Ok(()),
        _ => Err("variance: 'inconclusive' must be a boolean".into()),
    }
}

/// Validate a `BENCH_saturation.json` document against the v3 schema:
/// every documented key present, steps non-empty, every numeric field
/// finite (non-negative except `regression_pct` and `effect_pct`,
/// which noise can push below zero), both runs' peaks positive, each
/// run's `slo_knee` present (possibly null) and `p99_at_80pct_us`
/// recorded, the speedup recorded, the `obs_overhead` section complete
/// with at least one completed scrape, the `variance` confidence probe
/// complete, and a non-empty sharded `scaling` curve. Returns a
/// human-readable reason on failure.
pub fn validate_json(text: &str) -> Result<(), String> {
    let doc = parse_document(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("flowdns-bench/saturation/v3") => {}
        Some(other) => return Err(format!("unknown schema '{other}'")),
        None => return Err("missing 'schema'".into()),
    }
    match doc.get("mode").and_then(Json::as_str) {
        Some("smoke") | Some("full") => {}
        _ => return Err("'mode' must be \"smoke\" or \"full\"".into()),
    }
    let config = doc.get("config").ok_or("missing 'config'")?;
    for key in [
        "netflow_listeners",
        "recv_batch",
        "lookup_workers",
        "senders",
        "step_secs",
        "trials",
        "dns_entries",
        "records_per_datagram",
        "slo_p99_limit_us",
    ] {
        if require_num(config, key, "config")? <= 0.0 {
            return Err(format!("config: '{key}' must be positive"));
        }
    }
    check_run(&doc, "batched")?;
    check_run(&doc, "baseline")?;
    let speedup = require_num(&doc, "speedup_vs_baseline", "document")?;
    if speedup <= 0.0 {
        return Err("speedup_vs_baseline must be positive".into());
    }
    let obs = doc
        .get("obs_overhead")
        .ok_or("missing top-level object 'obs_overhead'")?;
    for key in ["off_peak_per_sec", "on_peak_per_sec"] {
        if require_num(obs, key, "obs_overhead")? <= 0.0 {
            return Err(format!("obs_overhead: '{key}' must be positive"));
        }
    }
    // Sign-free on purpose: a telemetry run faster than its control is
    // ordinary measurement noise, not a schema violation.
    require_num(obs, "regression_pct", "obs_overhead")?;
    if require_num(obs, "scrapes", "obs_overhead")? < 1.0 {
        return Err("obs_overhead: the telemetry run never completed a scrape".into());
    }
    if require_num(obs, "trace_spans", "obs_overhead")? < 0.0 {
        return Err("obs_overhead: 'trace_spans' is negative".into());
    }
    check_variance(&doc)?;
    check_scaling(&doc)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_step(rate: f64) -> StepMetrics {
        StepMetrics {
            offered_per_sec: rate,
            sent_per_sec: rate * 0.98,
            accepted_per_sec: rate * 0.97,
            drop_pct: 1.02,
            queue_drop_pct: 0.4,
            p50_queue_latency_us: 120,
            p99_queue_latency_us: 900,
            p999_queue_latency_us: 2_400,
            queue_latency_samples: 1_000,
        }
    }

    /// A step that satisfies the SLO-knee predicate (lossless, tight
    /// tail) at the given rate.
    fn clean_step(rate: f64) -> StepMetrics {
        StepMetrics {
            drop_pct: 0.0,
            queue_drop_pct: 0.0,
            p99_queue_latency_us: 1_800,
            p999_queue_latency_us: 4_000,
            ..fake_step(rate)
        }
    }

    fn fake_report() -> SaturationReport {
        let run = |listeners, recv_batch, rate: f64| RunResult {
            listeners,
            recv_batch,
            steps: vec![clean_step(rate), fake_step(rate * 1.5)],
            peak: fake_step(rate * 1.5),
            saturated: true,
            avg_drain: if recv_batch > 1 { 11.2 } else { 1.0 },
            slo_knee: Some(clean_step(rate)),
            p99_at_80pct_us: 2_400,
        };
        SaturationReport {
            config: SaturationConfig::smoke(),
            batched: run(2, 32, 100_000.0),
            baseline: run(1, 1, 60_000.0),
            obs_overhead: ObsOverhead {
                off_peak_per_sec: 100_000.0 * 1.5 * 0.97,
                on_peak_per_sec: 99_000.0 * 1.5 * 0.97,
                regression_pct: 1.0,
                scrapes: 9,
                trace_spans: 140,
            },
            scaling: vec![
                ScalingPoint {
                    shards: 1,
                    raw_knee_per_sec: 140_000.0,
                    slo_knee_per_sec: Some(120_000.0),
                    p99_at_80pct_us: 900,
                },
                ScalingPoint {
                    shards: 2,
                    raw_knee_per_sec: 150_000.0,
                    slo_knee_per_sec: None,
                    p99_at_80pct_us: 1_100,
                },
            ],
            variance: SpeedupVariance {
                probe_rate_per_sec: 150_000.0,
                batched_readings: vec![146_000.0, 145_200.0],
                baseline_readings: vec![96_000.0, 97_400.0],
            },
        }
    }

    #[test]
    fn emitted_json_passes_validation() {
        let report = fake_report();
        let json = report.to_json();
        validate_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(
            (report.speedup_vs_baseline() - 100_000.0 * 1.5 * 0.97 / (60_000.0 * 1.5 * 0.97))
                .abs()
                .lt(&1e-9)
        );
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_json("").is_err());
        assert!(validate_json("{}").is_err());
        assert!(validate_json("not json at all").is_err());
        let good = fake_report().to_json();
        // Remove a required key.
        let missing = good.replace("\"speedup_vs_baseline\"", "\"renamed\"");
        assert!(validate_json(&missing).is_err());
        // Wrong schema string (the pre-SLO-knee revision).
        let wrong = good.replace("saturation/v3", "saturation/v2");
        assert!(validate_json(&wrong).is_err());
        // A telemetry run that never scraped is a broken measurement.
        let mut no_scrapes = fake_report();
        no_scrapes.obs_overhead.scrapes = 0;
        let err = validate_json(&no_scrapes.to_json()).unwrap_err();
        assert!(err.contains("scrape"), "{err}");
        // A negative regression (telemetry run faster) is noise, not an error.
        let mut noisy = fake_report();
        noisy.obs_overhead.regression_pct = -0.3;
        validate_json(&noisy.to_json()).unwrap();
    }

    #[test]
    fn validator_rejects_null_and_empty_steps() {
        let good = fake_report().to_json();
        // A NaN rate is emitted as null and must be rejected.
        let mut broken = fake_report();
        broken.batched.peak.accepted_per_sec = f64::NAN;
        let err = validate_json(&broken.to_json()).unwrap_err();
        assert!(err.contains("accepted_per_sec"), "{err}");
        // An empty steps array must be rejected.
        let mut no_steps = fake_report();
        no_steps.baseline.steps.clear();
        // (serializes to "steps": [\n\n    ] — still an empty array)
        assert!(validate_json(&no_steps.to_json()).is_err());
        // The unmodified document still passes.
        validate_json(&good).unwrap();
    }

    #[test]
    fn slo_knee_selection_requires_lossless_and_tight_tail() {
        // No step qualifies: everything either dropped or blew the tail.
        let mut blown = fake_step(100_000.0);
        blown.drop_pct = 0.0;
        blown.p99_queue_latency_us = SLO_P99_LIMIT_US + 1;
        assert!(slo_knee_of(&[fake_step(50_000.0), blown]).is_none());
        // The qualifying step with the highest accepted rate wins, even
        // when a later lossy step accepted more.
        let steps = [
            clean_step(40_000.0),
            clean_step(90_000.0),
            fake_step(200_000.0), // lossy: drop_pct > 0
            blown,                // lossless but p99 over the limit
        ];
        let knee = slo_knee_of(&steps).expect("two steps qualify");
        assert_eq!(knee, clean_step(90_000.0));
        // Exactly at the limit still qualifies (the bound is inclusive).
        let mut at_limit = clean_step(10_000.0);
        at_limit.p99_queue_latency_us = SLO_P99_LIMIT_US;
        assert!(slo_knee_of(&[at_limit]).is_some());
        assert!(slo_knee_of(&[]).is_none());
    }

    #[test]
    fn variance_verdict_compares_spread_to_effect() {
        // Clear effect, tight arms: conclusive.
        let clear = SpeedupVariance {
            probe_rate_per_sec: 100_000.0,
            batched_readings: vec![100_000.0, 99_000.0],
            baseline_readings: vec![60_000.0, 59_500.0],
        };
        assert!(clear.effect_pct() > 60.0);
        assert!(!clear.inconclusive());
        // Effect smaller than the within-arm spread: inconclusive.
        let noisy = SpeedupVariance {
            probe_rate_per_sec: 100_000.0,
            batched_readings: vec![100_000.0, 88_000.0],
            baseline_readings: vec![99_000.0, 93_000.0],
        };
        assert!(noisy.spread_pct() >= noisy.effect_pct().abs());
        assert!(noisy.inconclusive());
        // Degenerate inputs never divide by zero.
        let empty = SpeedupVariance {
            probe_rate_per_sec: 0.0,
            batched_readings: vec![],
            baseline_readings: vec![],
        };
        assert_eq!(empty.effect_pct(), 0.0);
        assert_eq!(empty.spread_pct(), 0.0);
    }

    #[test]
    fn validator_requires_v3_sections() {
        // A null slo_knee is honest and allowed.
        let mut no_knee = fake_report();
        no_knee.batched.slo_knee = None;
        validate_json(&no_knee.to_json()).unwrap();
        // But the key itself must exist.
        let good = fake_report().to_json();
        let missing_knee = good.replace("\"slo_knee\"", "\"renamed_knee\"");
        let err = validate_json(&missing_knee).unwrap_err();
        assert!(err.contains("slo_knee"), "{err}");
        // An empty scaling curve is a broken measurement.
        let mut no_scaling = fake_report();
        no_scaling.scaling.clear();
        let err = validate_json(&no_scaling.to_json()).unwrap_err();
        assert!(err.contains("scaling"), "{err}");
        // A variance probe with no readings is a broken measurement.
        let mut no_readings = fake_report();
        no_readings.variance.batched_readings.clear();
        let err = validate_json(&no_readings.to_json()).unwrap_err();
        assert!(err.contains("batched_readings"), "{err}");
        // scaling entries must carry a positive raw knee.
        let mut zero_knee = fake_report();
        zero_knee.scaling[0].raw_knee_per_sec = 0.0;
        let err = validate_json(&zero_knee.to_json()).unwrap_err();
        assert!(err.contains("raw_knee_per_sec"), "{err}");
    }

    #[test]
    fn parser_handles_scalars_and_nesting() {
        let v = parse_document("{\"a\": [1, 2.5, true, null, \"x\"], \"b\": {\"c\": -3e2}}")
            .unwrap();
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_num(), Some(-300.0));
        match v.get("a") {
            Some(Json::Arr(items)) => assert_eq!(items.len(), 5),
            other => panic!("{other:?}"),
        }
    }
}
