//! Minimal JSON parsing for schema validation.
//!
//! This build links no JSON crate: the bench harnesses emit their
//! `BENCH_*.json` documents with hand-rolled `format!` writers, and this
//! module is the other half of the round trip — a small recursive-descent
//! parser plus the field-checking helpers the `--check` paths share
//! (saturation and soak validate with the same machinery).

/// A minimal JSON value for schema checking.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a complete document: rejects empty input and trailing garbage.
pub(crate) fn parse_document(text: &str) -> Result<Json, String> {
    if text.trim().is_empty() {
        return Err("file is empty".into());
    }
    let mut parser = Parser::new(text);
    let doc = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err("trailing garbage after the JSON document".into());
    }
    Ok(doc)
}

/// Look up `key` in `obj` and require a finite number.
pub(crate) fn require_num(obj: &Json, key: &str, context: &str) -> Result<f64, String> {
    let value = obj
        .get(key)
        .ok_or_else(|| format!("{context}: missing key '{key}'"))?;
    let x = value
        .as_num()
        .ok_or_else(|| format!("{context}: '{key}' is not a number (empty or NaN?)"))?;
    if !x.is_finite() {
        return Err(format!("{context}: '{key}' is not finite"));
    }
    Ok(x)
}

/// Look up `key` in `obj` and require a boolean.
pub(crate) fn require_bool(obj: &Json, key: &str, context: &str) -> Result<bool, String> {
    obj.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("{context}: '{key}' must be a boolean"))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("invalid JSON at byte {}: {what}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.fail("expected a value"),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.fail("bad literal")
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid JSON at byte {start}: bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        if !self.eat(b'"') {
            return self.fail("expected string");
        }
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // The emitters never escape anything beyond these.
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        _ => return self.fail("unsupported escape"),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return self.fail("unterminated string"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{');
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return self.fail("expected ':'");
            }
            fields.push((key, self.value()?));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            return self.fail("expected ',' or '}'");
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[');
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            return self.fail("expected ',' or ']'");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse_document(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x"}, "d": true, "e": null}"#)
            .unwrap();
        assert_eq!(require_num(&doc, "a", "t"), Err("t: 'a' is not a number (empty or NaN?)".into()));
        match doc.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].as_num(), Some(-300.0));
            }
            other => panic!("bad array: {other:?}"),
        }
        assert_eq!(doc.get("b").and_then(|b| b.get("c")).and_then(Json::as_str), Some("x"));
        assert_eq!(require_bool(&doc, "d", "t"), Ok(true));
        assert_eq!(doc.get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_document("").is_err());
        assert!(parse_document("{\"a\": }").is_err());
        assert!(parse_document("{} trailing").is_err());
        assert!(parse_document("{\"a\": 1,}").is_err());
    }
}
