//! The compressed "week at an ISP" soak harness behind `exp_soak`.
//!
//! The paper's deployment claim is not a throughput number but an
//! *endurance* one: FlowDNS holds memory flat across rotation clear-ups
//! while correlating 2 DNS and 26 NetFlow streams for days on end. This
//! harness compresses that week: a [`SubscriberPopulation`]-driven
//! streamed workload (millions of simulated subscriber lines, diurnal
//! curve, heavy-tailed flows — never materialized) is pushed through the
//! **real threaded [`Correlator`]** at full speed, in both the classic
//! shared-queue layout and the shared-nothing sharded layout, and three
//! deployment claims are measured per mode:
//!
//! 1. **bounded memory** — the store's [`StoreHealth`] is sampled right
//!    after every rotation clear-up; across ≥ 3 clear-ups the post-clear-up
//!    entry count must stay within a configured band of its median
//!    (`memory_band_factor`), i.e. rotation genuinely returns the store
//!    to a working set instead of accreting;
//! 2. **snapshot continuity** — mid-soak the correlator is shut down
//!    (writing its snapshot) and a fresh instance warm-starts from the
//!    file; the restored entry count must equal what was serialized, and
//!    the second half of the week continues against the warm store;
//! 3. **zero accepted-record loss** — every record the pipeline
//!    *accepted* must be accounted for by [`PipelineMetrics`]
//!    (`fillup.total()` / `lookup.total()`), and in sharded mode the
//!    per-shard routed counters must sum to exactly the accepted totals.
//!
//! Results are written to `BENCH_soak.json`
//! (schema `flowdns-bench/soak/v1`, documented in docs/WORKLOADS.md and
//! validated on write); the CI `soak-smoke` job greps the verdicts.

use std::time::Duration;

use flowdns_core::{Correlator, CorrelatorConfig, Report};
use flowdns_gen::workload::StreamEvent;
use flowdns_gen::{SubscriberPopulation, Workload, WorkloadConfig};
use flowdns_types::{DnsRecord, FlowRecord, SimDuration};

use crate::jsonv::{parse_document, require_bool, require_num, Json};

/// The soak schema identifier.
pub const SCHEMA: &str = "flowdns-bench/soak/v1";

/// Configuration of one soak run (both modes share it).
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Preset name of the population (`residential`, `business`,
    /// `mixed`, `small`), resolved into `population`.
    pub population_name: String,
    /// The resolved population model (post-override).
    pub population: SubscriberPopulation,
    /// Simulated length of the soak, hours (the full tier runs 168 — a
    /// week).
    pub sim_hours: u64,
    /// Flow rate at the diurnal peak, records per simulated second.
    pub peak_flows_per_sec: f64,
    /// Background DNS rate at the diurnal peak.
    pub background_dns_per_sec: f64,
    /// Workload seed.
    pub seed: u64,
    /// Simulated hour at which the correlator is shut down (snapshot
    /// write) and warm-restarted.
    pub restart_at_hour: f64,
    /// `AClearUpInterval` for the soak, seconds.
    pub a_clear_up_secs: u64,
    /// `CClearUpInterval` for the soak, seconds.
    pub c_clear_up_secs: u64,
    /// Shard count of the sharded-mode run (the classic run always uses
    /// 0).
    pub soak_shards: usize,
    /// Bounded-memory band: every post-clear-up entry count must lie
    /// within `[median / factor, median * factor]`.
    pub memory_band_factor: f64,
    /// Smoke preset? (recorded in the JSON `mode` field).
    pub smoke: bool,
}

impl SoakConfig {
    /// The minutes-scale CI preset: a small population, clear-ups every
    /// 15 simulated minutes, one mid-soak restart.
    pub fn smoke() -> Self {
        SoakConfig {
            population_name: "small".into(),
            population: SubscriberPopulation::small(),
            sim_hours: 2,
            peak_flows_per_sec: 40.0,
            background_dns_per_sec: 6.0,
            seed: 20_221_206,
            restart_at_hour: 1.0,
            a_clear_up_secs: 900,
            c_clear_up_secs: 1_800,
            soak_shards: 2,
            memory_band_factor: 2.0,
            smoke: true,
        }
    }

    /// The full tier: a compressed week (168 simulated hours) of the
    /// mixed 2.4M-line population at paper clear-up intervals, restarted
    /// mid-week. Streams > 10M events per mode.
    pub fn full() -> Self {
        SoakConfig {
            population_name: "mixed".into(),
            population: SubscriberPopulation::mixed(),
            sim_hours: 168,
            peak_flows_per_sec: 25.0,
            background_dns_per_sec: 4.0,
            seed: 20_221_206,
            restart_at_hour: 84.0,
            a_clear_up_secs: 3_600,
            c_clear_up_secs: 7_200,
            soak_shards: 2,
            memory_band_factor: 2.0,
            smoke: false,
        }
    }

    /// Apply one `key = value` override (the `--config` file of
    /// `exp_soak`; keys are documented in docs/WORKLOADS.md).
    pub fn apply(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn num(key: &str, value: &str) -> Result<f64, String> {
            value
                .parse::<f64>()
                .map_err(|_| format!("soak key '{key}': '{value}' is not a number"))
        }
        match key {
            "population" => {
                self.population = SubscriberPopulation::preset(value).ok_or_else(|| {
                    format!(
                        "unknown population preset '{value}' (have {})",
                        SubscriberPopulation::PRESET_NAMES.join(", ")
                    )
                })?;
                self.population_name = value.to_string();
            }
            "subscribers" => self.population.subscribers = num(key, value)? as u32,
            "subscriber_skew" => self.population.subscriber_skew = num(key, value)?,
            "service_concentration" => {
                self.population.service_concentration = num(key, value)?
            }
            "dns_flow_lag_micros" => {
                self.population.dns_flow_lag_micros = num(key, value)? as u64
            }
            "sim_hours" => self.sim_hours = num(key, value)? as u64,
            "peak_flows_per_sec" => self.peak_flows_per_sec = num(key, value)?,
            "background_dns_per_sec" => self.background_dns_per_sec = num(key, value)?,
            "seed" => self.seed = num(key, value)? as u64,
            "restart_at_hour" => self.restart_at_hour = num(key, value)?,
            "a_clear_up_secs" => self.a_clear_up_secs = num(key, value)? as u64,
            "c_clear_up_secs" => self.c_clear_up_secs = num(key, value)? as u64,
            "soak_shards" => self.soak_shards = num(key, value)? as usize,
            "memory_band_factor" => self.memory_band_factor = num(key, value)?,
            _ => return Err(format!("unknown soak config key '{key}'")),
        }
        Ok(())
    }

    /// Parse a `key = value` override file (`#` comments, blank lines
    /// ignored) on top of `self`.
    pub fn apply_file_text(&mut self, text: &str) -> Result<(), String> {
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected 'key = value'", lineno + 1))?;
            self.apply(key.trim(), value.trim())
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        Ok(())
    }

    fn workload(&self) -> Workload {
        Workload::new(WorkloadConfig {
            population: self.population,
            duration: SimDuration::from_hours(self.sim_hours),
            peak_flows_per_sec: self.peak_flows_per_sec,
            background_dns_per_sec: self.background_dns_per_sec,
            seed: self.seed,
            ..WorkloadConfig::default()
        })
    }

    fn correlator_config(&self, shards: usize, snapshot_path: &str) -> CorrelatorConfig {
        let mut cfg = CorrelatorConfig {
            a_clear_up_interval: SimDuration::from_secs(self.a_clear_up_secs),
            c_clear_up_interval: SimDuration::from_secs(self.c_clear_up_secs),
            ..CorrelatorConfig::default()
        };
        cfg.correlator_shards = shards;
        cfg.snapshot_path = Some(snapshot_path.to_string());
        // Shutdown-only snapshots: the mid-soak restart is the one write
        // that matters, and it must not race a periodic writer.
        cfg.snapshot_interval = Duration::ZERO;
        cfg
    }
}

/// One post-clear-up memory sample.
#[derive(Debug, Clone)]
pub struct MemorySample {
    /// Simulated second of the triggering record.
    pub sim_sec: u64,
    /// Clear-ups performed so far.
    pub clear_ups: u64,
    /// Store entries right after the clear-up.
    pub entries: u64,
    /// Store payload bytes right after the clear-up.
    pub payload_bytes: u64,
}

/// The restart checkpoint of one mode.
#[derive(Debug, Clone)]
pub struct RestartOutcome {
    /// Entries serialized into the shutdown snapshot.
    pub snapshot_entries: u64,
    /// Entries the second instance restored at warm start.
    pub warm_start_entries: u64,
    /// Did the second instance warm-start at all?
    pub warm_started: bool,
    /// `warm_start_entries == snapshot_entries` — the continuity claim.
    pub continuity: bool,
}

/// Accepted-record reconciliation of one mode (both instances summed).
#[derive(Debug, Clone)]
pub struct LossOutcome {
    /// DNS records offered to `push_dns_batch`.
    pub dns_offered: u64,
    /// DNS records the pipeline accepted.
    pub dns_accepted: u64,
    /// DNS records the FillUp stages processed.
    pub dns_processed: u64,
    /// Flow records offered.
    pub flows_offered: u64,
    /// Flow records accepted.
    pub flows_accepted: u64,
    /// Flow records the LookUp stages processed.
    pub flows_processed: u64,
    /// Sum of per-shard routed DNS counters (sharded mode only).
    pub shard_routed_dns: Option<u64>,
    /// Sum of per-shard routed flow counters (sharded mode only).
    pub shard_routed_flows: Option<u64>,
}

impl LossOutcome {
    /// Every accepted record reached its stage, and in sharded mode the
    /// routed counters agree exactly.
    pub fn zero_accepted_loss(&self) -> bool {
        self.dns_processed == self.dns_accepted
            && self.flows_processed == self.flows_accepted
            && self.shard_routed_dns.map_or(true, |n| n == self.dns_accepted)
            && self
                .shard_routed_flows
                .map_or(true, |n| n == self.flows_accepted)
    }
}

/// The outcome of one mode (classic or sharded) of the soak.
#[derive(Debug)]
pub struct ModeOutcome {
    /// `"classic"` or `"sharded"`.
    pub label: &'static str,
    /// Correlator shards (0 = classic).
    pub shards: usize,
    /// Events streamed through this mode.
    pub events_streamed: u64,
    /// Post-clear-up memory samples, in time order.
    pub memory_samples: Vec<MemorySample>,
    /// Total clear-ups across the whole mode.
    pub clear_ups: u64,
    /// The restart checkpoint.
    pub restart: RestartOutcome,
    /// Accepted-record reconciliation.
    pub loss: LossOutcome,
    /// Bytes-weighted correlation rate over both instances.
    pub correlation_rate_pct: f64,
}

impl ModeOutcome {
    /// Do the post-clear-up samples stay within the band?
    pub fn memory_bounded(&self, band_factor: f64) -> bool {
        let mut entries: Vec<u64> = self.memory_samples.iter().map(|s| s.entries).collect();
        if entries.is_empty() {
            return false;
        }
        entries.sort_unstable();
        let median = entries[entries.len() / 2].max(1) as f64;
        entries.iter().all(|&e| {
            let e = e as f64;
            e <= median * band_factor && e >= median / band_factor
        })
    }
}

/// The whole soak result: one outcome per mode plus the config echo.
#[derive(Debug)]
pub struct SoakReport {
    /// The configuration that produced this report.
    pub config: SoakConfig,
    /// Outcomes: `[classic, sharded]`.
    pub modes: Vec<ModeOutcome>,
}

impl SoakReport {
    /// ≥ 3 clear-ups observed in every mode.
    pub fn clear_ups_ok(&self) -> bool {
        self.modes.iter().all(|m| m.memory_samples.len() >= 3)
    }

    /// Bounded memory in every mode.
    pub fn bounded_memory(&self) -> bool {
        self.modes
            .iter()
            .all(|m| m.memory_bounded(self.config.memory_band_factor))
    }

    /// Zero accepted-record loss in every mode.
    pub fn zero_loss(&self) -> bool {
        self.modes.iter().all(|m| m.loss.zero_accepted_loss())
    }

    /// Snapshot continuity across the restart in every mode.
    pub fn warm_restart(&self) -> bool {
        self.modes
            .iter()
            .all(|m| m.restart.warm_started && m.restart.continuity)
    }

    /// All four verdicts.
    pub fn all_green(&self) -> bool {
        self.clear_ups_ok() && self.bounded_memory() && self.zero_loss() && self.warm_restart()
    }
}

/// Drives one correlator instance up to (exclusive) `until_sec`,
/// batching type-runs of events. Returns per-instance counts.
struct Feeder {
    dns_chunk: Vec<DnsRecord>,
    flow_chunk: Vec<FlowRecord>,
    dns_offered: u64,
    dns_accepted: u64,
    flows_offered: u64,
    flows_accepted: u64,
}

/// Type-run batch size: big enough to amortize the push locks, small
/// enough to keep cross-type ordering tight.
const CHUNK: usize = 2_048;

impl Feeder {
    fn new() -> Self {
        Feeder {
            dns_chunk: Vec::with_capacity(CHUNK),
            flow_chunk: Vec::with_capacity(CHUNK),
            dns_offered: 0,
            dns_accepted: 0,
            flows_offered: 0,
            flows_accepted: 0,
        }
    }

    fn flush_dns(&mut self, correlator: &Correlator) {
        if self.dns_chunk.is_empty() {
            return;
        }
        self.wait_for_room(correlator);
        self.dns_offered += self.dns_chunk.len() as u64;
        self.dns_accepted += correlator.push_dns_batch(self.dns_chunk.drain(..)) as u64;
    }

    fn flush_flows(&mut self, correlator: &Correlator) {
        if self.flow_chunk.is_empty() {
            return;
        }
        self.wait_for_room(correlator);
        self.flows_offered += self.flow_chunk.len() as u64;
        self.flows_accepted += correlator.push_flow_batch(self.flow_chunk.drain(..)) as u64;
    }

    fn flush_all(&mut self, correlator: &Correlator) {
        // DNS first: any flow in the same window correlates no worse.
        self.flush_dns(correlator);
        self.flush_flows(correlator);
    }

    /// Backpressure: never offer a chunk that could overflow a queue —
    /// accepted == offered is what makes the loss ledger exact. The
    /// workers drain continuously, so this spins only under a genuinely
    /// saturated pipeline.
    fn wait_for_room(&self, correlator: &Correlator) {
        let cfg = correlator.config();
        let fillup_cap = cfg.fillup_queue_capacity;
        let lookup_cap = cfg.lookup_queue_capacity;
        loop {
            let (fillup, lookup, _) = correlator.queue_depths();
            if fillup + CHUNK < fillup_cap && lookup + CHUNK < lookup_cap {
                return;
            }
            std::thread::yield_now();
        }
    }

    fn push(&mut self, correlator: &Correlator, event: StreamEvent) {
        match event {
            StreamEvent::Dns(record) => {
                // Preserve DNS-before-flow ordering across type runs.
                self.flush_flows(correlator);
                self.dns_chunk.push(record);
                if self.dns_chunk.len() >= CHUNK {
                    self.flush_dns(correlator);
                }
            }
            StreamEvent::Flow(flow) => {
                self.flush_dns(correlator);
                self.flow_chunk.push(flow);
                if self.flow_chunk.len() >= CHUNK {
                    self.flush_flows(correlator);
                }
            }
        }
    }
}

/// How often (in events) the store health is polled for clear-up
/// detection.
const HEALTH_POLL_EVERY: u64 = 8_192;

struct InstanceRun {
    report: Report,
    /// Snapshot stats read right after start — carries the warm-start
    /// entry count when the instance restored from a snapshot file.
    warm: flowdns_core::SnapshotStats,
    dns_offered: u64,
    dns_accepted: u64,
    flows_offered: u64,
    flows_accepted: u64,
    routed: Option<(u64, u64)>,
}

/// Stream `events` into a fresh correlator until the iterator is
/// exhausted or an event's timestamp reaches `until_sec`, sampling
/// store health after every clear-up.
#[allow(clippy::too_many_arguments)]
fn run_instance<I>(
    config: &CorrelatorConfig,
    events: &mut std::iter::Peekable<I>,
    until_sec: Option<u64>,
    samples: &mut Vec<MemorySample>,
    events_streamed: &mut u64,
) -> Result<InstanceRun, String>
where
    I: Iterator<Item = StreamEvent>,
{
    let correlator =
        Correlator::start(config.clone()).map_err(|e| format!("correlator start: {e}"))?;
    let warm = correlator.snapshot_stats();
    let mut feeder = Feeder::new();
    let mut last_clear_ups = correlator.store_health().clear_ups;
    let mut since_poll = 0u64;
    let mut last_sec = 0u64;

    while let Some(event) = events.peek() {
        let sec = event.ts().as_secs();
        if until_sec.is_some_and(|limit| sec >= limit) {
            break;
        }
        last_sec = sec;
        let event = events.next().expect("peeked");
        feeder.push(&correlator, event);
        *events_streamed += 1;
        since_poll += 1;
        if since_poll >= HEALTH_POLL_EVERY {
            since_poll = 0;
            let health = correlator.store_health();
            if health.clear_ups > last_clear_ups {
                last_clear_ups = health.clear_ups;
                samples.push(MemorySample {
                    sim_sec: last_sec,
                    clear_ups: health.clear_ups,
                    entries: health.entries as u64,
                    payload_bytes: health.memory.payload_bytes as u64,
                });
            }
        }
    }
    feeder.flush_all(&correlator);
    // Let the workers drain before the final health reading so a
    // clear-up triggered by the tail of the stream is still observed.
    while {
        let (f, l, w) = correlator.queue_depths();
        f + l + w > 0
    } {
        std::thread::yield_now();
    }
    let health = correlator.store_health();
    if health.clear_ups > last_clear_ups {
        samples.push(MemorySample {
            sim_sec: last_sec,
            clear_ups: health.clear_ups,
            entries: health.entries as u64,
            payload_bytes: health.memory.payload_bytes as u64,
        });
    }
    let routed = correlator
        .shard_routed_counts()
        .map(|(dns, flows)| (dns.iter().sum(), flows.iter().sum()));
    let report = correlator
        .finish()
        .map_err(|e| format!("correlator finish: {e}"))?;
    Ok(InstanceRun {
        report,
        warm,
        dns_offered: feeder.dns_offered,
        dns_accepted: feeder.dns_accepted,
        flows_offered: feeder.flows_offered,
        flows_accepted: feeder.flows_accepted,
        routed,
    })
}

fn run_mode(
    soak: &SoakConfig,
    label: &'static str,
    shards: usize,
) -> Result<ModeOutcome, String> {
    let snapshot_path = std::env::temp_dir().join(format!(
        "flowdns_soak_{}_{}_{}.snapshot",
        std::process::id(),
        label,
        soak.seed
    ));
    let snapshot_path = snapshot_path.to_string_lossy().into_owned();
    // A stale file from a killed previous run must not warm-start us.
    let _ = std::fs::remove_file(&snapshot_path);

    let config = soak.correlator_config(shards, &snapshot_path);
    let workload = soak.workload();
    let mut events = workload.events().peekable();
    let restart_sec = (soak.restart_at_hour * 3_600.0) as u64;
    let mut samples = Vec::new();
    let mut events_streamed = 0u64;

    // First instance: cold start, stream up to the restart point, shut
    // down (writes the snapshot).
    let first = run_instance(
        &config,
        &mut events,
        Some(restart_sec),
        &mut samples,
        &mut events_streamed,
    )?;
    let snapshot_entries = first.report.metrics.snapshot.last_entries;
    if first.report.metrics.snapshot.snapshots_written == 0 {
        return Err(format!("{label}: first instance wrote no shutdown snapshot"));
    }

    // Second instance: warm start from the snapshot, stream the rest of
    // the week.
    let second = run_instance(&config, &mut events, None, &mut samples, &mut events_streamed)?;
    let _ = std::fs::remove_file(&snapshot_path);
    let restart = RestartOutcome {
        snapshot_entries,
        warm_start_entries: second.warm.warm_start_entries,
        warm_started: second.warm.warm_started(),
        continuity: second.warm.warm_start_entries == snapshot_entries && snapshot_entries > 0,
    };

    let loss = LossOutcome {
        dns_offered: first.dns_offered + second.dns_offered,
        dns_accepted: first.dns_accepted + second.dns_accepted,
        dns_processed: first.report.metrics.fillup.total() + second.report.metrics.fillup.total(),
        flows_offered: first.flows_offered + second.flows_offered,
        flows_accepted: first.flows_accepted + second.flows_accepted,
        flows_processed: first.report.metrics.lookup.total()
            + second.report.metrics.lookup.total(),
        shard_routed_dns: match (first.routed, second.routed) {
            (Some(a), Some(b)) => Some(a.0 + b.0),
            _ => None,
        },
        shard_routed_flows: match (first.routed, second.routed) {
            (Some(a), Some(b)) => Some(a.1 + b.1),
            _ => None,
        },
    };
    let first_bytes = first.report.volumes.total.bytes() as f64;
    let second_bytes = second.report.volumes.total.bytes() as f64;
    let total_bytes = first_bytes + second_bytes;
    let correlation_rate_pct = if total_bytes == 0.0 {
        0.0
    } else {
        (first.report.correlation_rate_pct() * first_bytes
            + second.report.correlation_rate_pct() * second_bytes)
            / total_bytes
    };
    let clear_ups = samples.last().map(|s| s.clear_ups).unwrap_or(0);
    Ok(ModeOutcome {
        label,
        shards,
        events_streamed,
        memory_samples: samples,
        clear_ups,
        restart,
        loss,
        correlation_rate_pct,
    })
}

/// Run the full soak: classic mode, then sharded mode, same workload
/// seed. Progress lines go to stderr via `progress`.
pub fn run(soak: &SoakConfig, mut progress: impl FnMut(&str)) -> Result<SoakReport, String> {
    let mut modes = Vec::new();
    for (label, shards) in [("classic", 0usize), ("sharded", soak.soak_shards)] {
        progress(&format!(
            "mode {label} (shards={shards}): streaming {} simulated hours of '{}' \
             ({} subscribers), restart at hour {}",
            soak.sim_hours,
            soak.population_name,
            soak.population.subscribers,
            soak.restart_at_hour,
        ));
        let outcome = run_mode(soak, label, shards)?;
        progress(&format!(
            "mode {label}: {} events, {} clear-ups, {} post-clear-up samples, \
             correlation {:.1}%, warm_start {} entries",
            outcome.events_streamed,
            outcome.clear_ups,
            outcome.memory_samples.len(),
            outcome.correlation_rate_pct,
            outcome.restart.warm_start_entries,
        ));
        modes.push(outcome);
    }
    Ok(SoakReport {
        config: soak.clone(),
        modes,
    })
}

// ---------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------

fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

fn jopt(x: Option<u64>) -> String {
    match x {
        Some(n) => n.to_string(),
        None => "null".into(),
    }
}

fn mode_json(m: &ModeOutcome, band_factor: f64) -> String {
    let samples = m
        .memory_samples
        .iter()
        .map(|s| {
            format!(
                r#"{{"sim_sec": {}, "clear_ups": {}, "entries": {}, "payload_bytes": {}}}"#,
                s.sim_sec, s.clear_ups, s.entries, s.payload_bytes
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        r#"{{
      "label": "{label}",
      "shards": {shards},
      "events_streamed": {events},
      "clear_ups": {clear_ups},
      "memory_samples": [{samples}],
      "memory_bounded": {bounded},
      "restart": {{"snapshot_entries": {snap}, "warm_start_entries": {warm}, "warm_started": {started}, "continuity": {cont}}},
      "loss": {{"dns_offered": {dof}, "dns_accepted": {dacc}, "dns_processed": {dproc}, "flows_offered": {fof}, "flows_accepted": {facc}, "flows_processed": {fproc}, "shard_routed_dns": {rdns}, "shard_routed_flows": {rflows}, "zero_accepted_loss": {zl}}},
      "correlation_rate_pct": {corr}
    }}"#,
        label = m.label,
        shards = m.shards,
        events = m.events_streamed,
        clear_ups = m.clear_ups,
        samples = samples,
        bounded = m.memory_bounded(band_factor),
        snap = m.restart.snapshot_entries,
        warm = m.restart.warm_start_entries,
        started = m.restart.warm_started,
        cont = m.restart.continuity,
        dof = m.loss.dns_offered,
        dacc = m.loss.dns_accepted,
        dproc = m.loss.dns_processed,
        fof = m.loss.flows_offered,
        facc = m.loss.flows_accepted,
        fproc = m.loss.flows_processed,
        rdns = jopt(m.loss.shard_routed_dns),
        rflows = jopt(m.loss.shard_routed_flows),
        zl = m.loss.zero_accepted_loss(),
        corr = jnum(m.correlation_rate_pct),
    )
}

impl SoakReport {
    /// Render the report as the `BENCH_soak.json` document.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let modes = self
            .modes
            .iter()
            .map(|m| mode_json(m, c.memory_band_factor))
            .collect::<Vec<_>>()
            .join(",\n    ");
        format!(
            r#"{{
  "schema": "{schema}",
  "mode": "{mode}",
  "config": {{
    "population": "{pop}",
    "subscribers": {subs},
    "sim_hours": {hours},
    "peak_flows_per_sec": {peak},
    "background_dns_per_sec": {bg},
    "seed": {seed},
    "restart_at_hour": {restart},
    "a_clear_up_secs": {a},
    "c_clear_up_secs": {cc},
    "soak_shards": {shards},
    "memory_band_factor": {band}
  }},
  "runs": [
    {modes}
  ],
  "verdicts": {{
    "clear_ups_ok": {v_clear},
    "bounded_memory": {v_mem},
    "zero_loss": {v_loss},
    "warm_restart": {v_warm}
  }}
}}
"#,
            schema = SCHEMA,
            mode = if c.smoke { "smoke" } else { "full" },
            pop = c.population_name,
            subs = c.population.subscribers,
            hours = c.sim_hours,
            peak = jnum(c.peak_flows_per_sec),
            bg = jnum(c.background_dns_per_sec),
            seed = c.seed,
            restart = jnum(c.restart_at_hour),
            a = c.a_clear_up_secs,
            cc = c.c_clear_up_secs,
            shards = c.soak_shards,
            band = jnum(c.memory_band_factor),
            modes = modes,
            v_clear = self.clear_ups_ok(),
            v_mem = self.bounded_memory(),
            v_loss = self.zero_loss(),
            v_warm = self.warm_restart(),
        )
    }
}

// ---------------------------------------------------------------------
// JSON validation (the CI `--check` path)
// ---------------------------------------------------------------------

fn check_mode(run: &Json, context: &str) -> Result<(), String> {
    match run.get("label").and_then(Json::as_str) {
        Some("classic") | Some("sharded") => {}
        _ => return Err(format!("{context}: 'label' must be classic or sharded")),
    }
    let shards = require_num(run, "shards", context)?;
    if shards < 0.0 {
        return Err(format!("{context}: 'shards' is negative"));
    }
    if require_num(run, "events_streamed", context)? <= 0.0 {
        return Err(format!("{context}: 'events_streamed' must be positive"));
    }
    if require_num(run, "clear_ups", context)? < 3.0 {
        return Err(format!("{context}: fewer than 3 clear-ups observed"));
    }
    let samples = match run.get("memory_samples") {
        Some(Json::Arr(samples)) => samples,
        _ => return Err(format!("{context}: 'memory_samples' must be an array")),
    };
    if samples.len() < 3 {
        return Err(format!(
            "{context}: need >= 3 post-clear-up memory samples, have {}",
            samples.len()
        ));
    }
    for (i, sample) in samples.iter().enumerate() {
        let sctx = format!("{context}.memory_samples[{i}]");
        for key in ["sim_sec", "clear_ups", "entries", "payload_bytes"] {
            if require_num(sample, key, &sctx)? < 0.0 {
                return Err(format!("{sctx}: '{key}' is negative"));
            }
        }
    }
    require_bool(run, "memory_bounded", context)?;
    let restart = run
        .get("restart")
        .ok_or_else(|| format!("{context}: missing 'restart'"))?;
    for key in ["snapshot_entries", "warm_start_entries"] {
        if require_num(restart, key, context)? < 0.0 {
            return Err(format!("{context}.restart: '{key}' is negative"));
        }
    }
    require_bool(restart, "warm_started", context)?;
    require_bool(restart, "continuity", context)?;
    let loss = run
        .get("loss")
        .ok_or_else(|| format!("{context}: missing 'loss'"))?;
    for key in [
        "dns_offered",
        "dns_accepted",
        "dns_processed",
        "flows_offered",
        "flows_accepted",
        "flows_processed",
    ] {
        if require_num(loss, key, context)? < 0.0 {
            return Err(format!("{context}.loss: '{key}' is negative"));
        }
    }
    // Sharded runs must carry routed counters; classic runs must not.
    let routed = loss.get("shard_routed_dns");
    match (shards as u64, routed) {
        (0, Some(Json::Null)) => {}
        (0, _) => {
            return Err(format!(
                "{context}.loss: classic run must have null 'shard_routed_dns'"
            ))
        }
        (_, Some(Json::Num(_))) => {}
        _ => {
            return Err(format!(
                "{context}.loss: sharded run must have numeric 'shard_routed_dns'"
            ))
        }
    }
    require_bool(loss, "zero_accepted_loss", context)?;
    let corr = require_num(run, "correlation_rate_pct", context)?;
    if !(0.0..=100.0).contains(&corr) {
        return Err(format!(
            "{context}: correlation_rate_pct {corr} outside 0..100"
        ));
    }
    Ok(())
}

/// Validate a `BENCH_soak.json` document against the v1 schema. Every
/// documented key must be present, both runs (classic and sharded) must
/// carry ≥ 3 post-clear-up memory samples, the restart and loss ledgers
/// must be complete, and the four verdict booleans must exist. Returns a
/// human-readable reason on failure.
pub fn validate_json(text: &str) -> Result<(), String> {
    let doc = parse_document(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("unknown schema '{other}'")),
        None => return Err("missing 'schema'".into()),
    }
    match doc.get("mode").and_then(Json::as_str) {
        Some("smoke") | Some("full") => {}
        _ => return Err("'mode' must be \"smoke\" or \"full\"".into()),
    }
    let config = doc.get("config").ok_or("missing 'config'")?;
    for key in [
        "subscribers",
        "sim_hours",
        "peak_flows_per_sec",
        "background_dns_per_sec",
        "restart_at_hour",
        "a_clear_up_secs",
        "c_clear_up_secs",
        "soak_shards",
        "memory_band_factor",
    ] {
        if require_num(config, key, "config")? <= 0.0 {
            return Err(format!("config: '{key}' must be positive"));
        }
    }
    require_num(config, "seed", "config")?;
    match config.get("population").and_then(Json::as_str) {
        Some(name) if !name.is_empty() => {}
        _ => return Err("config: 'population' must be a non-empty string".into()),
    }
    let runs = match doc.get("runs") {
        Some(Json::Arr(runs)) => runs,
        _ => return Err("'runs' must be an array".into()),
    };
    if runs.len() != 2 {
        return Err(format!("expected 2 runs (classic, sharded), have {}", runs.len()));
    }
    for (i, run) in runs.iter().enumerate() {
        check_mode(run, &format!("runs[{i}]"))?;
    }
    let verdicts = doc.get("verdicts").ok_or("missing 'verdicts'")?;
    for key in ["clear_ups_ok", "bounded_memory", "zero_loss", "warm_restart"] {
        require_bool(verdicts, key, "verdicts")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_soak() -> SoakConfig {
        let mut cfg = SoakConfig::smoke();
        // Keep the unit-test run to a couple of seconds: a short, hot
        // trace with fast clear-ups.
        cfg.apply_file_text(
            "subscribers = 5000\n\
             sim_hours = 1\n\
             peak_flows_per_sec = 60\n\
             a_clear_up_secs = 600   # 6 clear-ups/hour\n\
             c_clear_up_secs = 1200\n\
             restart_at_hour = 0.5\n",
        )
        .unwrap();
        cfg
    }

    #[test]
    fn smoke_soak_is_green_and_emits_valid_json() {
        let report = run(&tiny_soak(), |_| {}).expect("soak runs");
        assert_eq!(report.modes.len(), 2);
        assert_eq!(report.modes[0].shards, 0);
        assert_eq!(report.modes[1].shards, 2);
        assert!(report.clear_ups_ok(), "clear-ups: {:?}", report.modes[0].clear_ups);
        assert!(report.bounded_memory());
        assert!(report.zero_loss(), "loss: {:?}", report.modes[0].loss);
        assert!(report.warm_restart(), "restart: {:?}", report.modes[0].restart);
        let json = report.to_json();
        validate_json(&json).expect("emitted JSON validates");
    }

    #[test]
    fn config_overrides_apply_and_reject_unknown_keys() {
        let mut cfg = SoakConfig::smoke();
        cfg.apply("population", "business").unwrap();
        assert_eq!(cfg.population_name, "business");
        cfg.apply("subscriber_skew", "1.5").unwrap();
        assert!((cfg.population.subscriber_skew - 1.5).abs() < 1e-9);
        assert!(cfg.apply("no_such_key", "1").is_err());
        assert!(cfg.apply("population", "nope").is_err());
        assert!(cfg.apply("sim_hours", "abc").is_err());
    }

    #[test]
    fn validate_rejects_broken_documents() {
        assert!(validate_json("").is_err());
        assert!(validate_json("{}").is_err());
        let report = format!(
            r#"{{"schema": "{SCHEMA}", "mode": "smoke", "config": {{}}}}"#
        );
        assert!(validate_json(&report).is_err());
    }
}
