//! # flowdns-bench
//!
//! Experiment harness for the FlowDNS reproduction.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the full index); the Criterion benches
//! under `benches/` cover the hot paths (sharded map, codecs, lookup
//! chain, end-to-end pipeline throughput). This library holds the glue the
//! binaries share: converting generator events into simulator events,
//! deriving a BGP table and a blocklist that are consistent with the
//! generated universe, and running a variant end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod jsonv;
pub mod saturation;
pub mod soak;

use flowdns_analysis::CategoryAnalysis;
use flowdns_bgp::{AsnView, RoutingTable};
use flowdns_core::simulate::Event;
use flowdns_core::{CorrelatorConfig, OfflineSimulator, SimulationOutcome, Variant};
use flowdns_dbl::{Blocklist, BlocklistCategory};
use flowdns_gen::domains::{DomainCategory, DomainUniverse, ServiceSpec};
use flowdns_gen::workload::StreamEvent;
use flowdns_gen::{SubscriberPopulation, Workload, WorkloadConfig};
use flowdns_types::{CorrelatedRecord, CorrelationOutcome, FlowDirection, SimDuration};

/// Convert a generator event into a simulator event.
pub fn to_event(event: StreamEvent) -> Event {
    match event {
        StreamEvent::Dns(r) => Event::Dns(r),
        StreamEvent::Flow(f) => Event::Flow(f),
    }
}

/// Build a routing table consistent with the generated universe by
/// parsing the universe's own announcement emission
/// ([`DomainUniverse::announcements_text`]) — the exact text a deployment
/// would point its `routing_table` config key at, so experiments and the
/// live pipeline attribute identically.
pub fn routing_table_for(universe: &DomainUniverse) -> RoutingTable {
    RoutingTable::from_announcements_text(&universe.announcements_text())
        .expect("generated announcements parse")
}

/// The universe's routing table compiled and wrapped for in-pipeline AS
/// attribution (what `OfflineSimulator::with_asn_view` and the live
/// `Correlator` consume).
pub fn asn_view_for(universe: &DomainUniverse) -> AsnView {
    AsnView::new(routing_table_for(universe).freeze())
}

/// Build a blocklist consistent with the universe's suspicious domains.
pub fn blocklist_for(universe: &DomainUniverse) -> Blocklist {
    let mut blocklist = Blocklist::new();
    for service in &universe.services {
        let category = match service.category {
            DomainCategory::Spam => Some(BlocklistCategory::Spam),
            DomainCategory::BotnetCc => Some(BlocklistCategory::BotnetCc),
            DomainCategory::AbusedRedirector => Some(BlocklistCategory::AbusedRedirector),
            DomainCategory::Malware => Some(BlocklistCategory::Malware),
            DomainCategory::Phishing => Some(BlocklistCategory::Phishing),
            _ => None,
        };
        if let Some(category) = category {
            blocklist.add(service.customer_domain.clone(), category);
        }
    }
    blocklist
}

/// Does a correlation outcome belong to the given service (any name of the
/// chain equals the customer domain, a chain hop, or a subdomain of
/// either)?
pub fn outcome_matches_service(outcome: &CorrelationOutcome, service: &ServiceSpec) -> bool {
    outcome.names().iter().any(|name| {
        name == &service.customer_domain
            || name.is_subdomain_of(&service.customer_domain)
            || service
                .cname_chain
                .iter()
                .any(|hop| name == hop || name.is_subdomain_of(hop))
    })
}

/// Run one variant over a workload, discarding per-record output.
pub fn run_variant(variant: Variant, workload: &Workload) -> SimulationOutcome {
    let config = CorrelatorConfig::for_variant(variant);
    let sim = OfflineSimulator::new(config);
    sim.run_with(workload.events().map(to_event), |_| {})
}

/// Run one variant over a workload, forwarding every written record to
/// `on_record`.
pub fn run_variant_with<F>(variant: Variant, workload: &Workload, on_record: F) -> SimulationOutcome
where
    F: FnMut(&CorrelatedRecord),
{
    let config = CorrelatorConfig::for_variant(variant);
    let sim = OfflineSimulator::new(config);
    sim.run_with(workload.events().map(to_event), on_record)
}

/// Run one variant with in-pipeline AS attribution from `view`: every
/// record reaching `on_record` carries `src_asn`/`dst_asn` stamped by
/// the simulated LookUp stage.
pub fn run_variant_with_asn<F>(
    variant: Variant,
    workload: &Workload,
    view: &AsnView,
    on_record: F,
) -> SimulationOutcome
where
    F: FnMut(&CorrelatedRecord),
{
    let config = CorrelatorConfig::for_variant(variant);
    let sim = OfflineSimulator::new(config).with_asn_view(view.clone());
    sim.run_with(workload.events().map(to_event), on_record)
}

/// Run the Main variant and feed every record through a
/// [`CategoryAnalysis`] built from the workload's universe.
pub fn run_category_analysis(workload: &Workload) -> (SimulationOutcome, CategoryAnalysis) {
    let blocklist = blocklist_for(workload.universe());
    let mut analysis = CategoryAnalysis::new(blocklist);
    let outcome = run_variant_with(Variant::Main, workload, |record| {
        analysis.observe(record);
    });
    (outcome, analysis)
}

/// The standard experiment workload: a scaled-down "day at the large ISP".
/// `hours` controls how much of the day is generated; experiment binaries
/// accept it as their first CLI argument so a full 24-hour run is a choice
/// rather than a default.
pub fn experiment_workload(hours: u64, peak_flows_per_sec: f64) -> Workload {
    let config = WorkloadConfig {
        duration: SimDuration::from_hours(hours),
        peak_flows_per_sec,
        background_dns_per_sec: (peak_flows_per_sec / 8.0).max(1.0),
        ..WorkloadConfig::default()
    };
    Workload::new(config)
}

/// The *count-based* correlation fraction of a workload, measured by
/// running the Main variant end to end: the share of inbound content
/// flows (dst port 443) whose written record carries a name. This is the
/// measurement the population golden-accuracy check compares against
/// [`Workload::expected_correlation_fraction`] — counts, not bytes, so
/// the heavy-tailed size distribution cancels out and the analytic
/// expectation is exact up to binomial noise.
pub fn measured_correlation_fraction(workload: &Workload) -> f64 {
    let mut correlated = 0u64;
    let mut content = 0u64;
    run_variant_with(Variant::Main, workload, |record| {
        if record.flow.direction == FlowDirection::Inbound && record.flow.key.dst_port == 443 {
            content += 1;
            if record.is_correlated() {
                correlated += 1;
            }
        }
    });
    correlated as f64 / content.max(1) as f64
}

/// A short population workload for the golden-accuracy check: long
/// enough that binomial noise is well under the ±1-point tolerance,
/// short enough to run inside a unit test.
pub fn golden_accuracy_workload(population: SubscriberPopulation) -> Workload {
    Workload::new(WorkloadConfig {
        population,
        duration: SimDuration::from_hours(2),
        peak_flows_per_sec: 30.0,
        background_dns_per_sec: 4.0,
        ..WorkloadConfig::default()
    })
}

/// Parse the `hours` CLI argument shared by the experiment binaries.
pub fn hours_arg(default: u64) -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_table_covers_every_edge_ip() {
        let workload = experiment_workload(1, 5.0);
        let table = routing_table_for(workload.universe());
        assert!(!table.is_empty());
        for service in &workload.universe().services {
            if service.origin_asns.is_empty() {
                continue;
            }
            for ip in &service.edge_ips {
                let asn = table.origin_as(*ip).expect("edge IP is announced");
                assert!(asn > 0);
            }
        }
    }

    #[test]
    fn blocklist_contains_only_suspicious_domains() {
        let workload = experiment_workload(1, 5.0);
        let mut blocklist = blocklist_for(workload.universe());
        assert!(!blocklist.is_empty());
        let spam = workload
            .universe()
            .by_category(DomainCategory::Spam)
            .next()
            .expect("spam domains exist")
            .customer_domain
            .clone();
        assert_eq!(blocklist.lookup(&spam), Some(BlocklistCategory::Spam));
        let benign = workload
            .universe()
            .by_category(DomainCategory::Benign)
            .next()
            .expect("benign domains exist")
            .customer_domain
            .clone();
        assert_eq!(blocklist.lookup(&benign), None);
    }

    #[test]
    fn run_variant_produces_reasonable_correlation() {
        let workload = experiment_workload(2, 10.0);
        let outcome = run_variant(Variant::Main, &workload);
        let rate = outcome.report.correlation_rate_pct();
        assert!(rate > 70.0 && rate < 95.0, "correlation {rate}");
        assert!(outcome.report.metrics.flow_loss_pct() < 1.0);
    }

    #[test]
    fn golden_accuracy_matches_the_analytic_expectation_for_every_preset() {
        for preset in ["residential", "business", "mixed"] {
            let population = SubscriberPopulation::preset(preset).unwrap();
            let workload = golden_accuracy_workload(population);
            let expected = workload.expected_correlation_fraction();
            let measured = measured_correlation_fraction(&workload);
            assert!(
                (measured - expected).abs() <= 0.01,
                "{preset}: measured {:.2}% vs expected {:.2}% — off by more than 1 point",
                measured * 100.0,
                expected * 100.0
            );
        }
    }

    #[test]
    fn service_matching_uses_chain_names() {
        let workload = experiment_workload(1, 5.0);
        let universe = workload.universe();
        let s1 = &universe.services[universe.streaming_s1];
        let outcome = CorrelationOutcome::Name(s1.customer_domain.clone());
        assert!(outcome_matches_service(&outcome, s1));
        let chain_outcome = CorrelationOutcome::Chain(vec![
            s1.cname_chain.last().unwrap().clone(),
            s1.customer_domain.clone(),
        ]);
        assert!(outcome_matches_service(&chain_outcome, s1));
        let other = &universe.services[universe.streaming_s2];
        assert!(!outcome_matches_service(&outcome, other));
    }
}
