//! Criterion benchmarks for the DNS wire codec and the resolver-feed
//! framing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flowdns_dns::message::DnsClass;
use flowdns_dns::{DnsMessage, FrameDecoder, FrameEncoder, Question, ResourceRecord};
use flowdns_types::{DnsRecord, DomainName, RecordType, SimTime};
use std::net::Ipv4Addr;

fn sample_message() -> DnsMessage {
    let www = DomainName::literal("www.shop.example");
    let cdn1 = DomainName::literal("shop.cdn.example.net");
    let cdn2 = DomainName::literal("edge7.cdn.example.net");
    DnsMessage::response(
        4242,
        Question {
            name: www.clone(),
            qtype: RecordType::A,
            qclass: DnsClass::In,
        },
        vec![
            ResourceRecord::cname(www, cdn1.clone(), 600),
            ResourceRecord::cname(cdn1, cdn2.clone(), 600),
            ResourceRecord::a(cdn2, Ipv4Addr::new(198, 51, 100, 77), 60),
        ],
    )
}

fn sample_records(n: usize) -> Vec<DnsRecord> {
    (0..n)
        .map(|i| {
            DnsRecord::address(
                SimTime::from_secs(i as u64),
                DomainName::literal(&format!("edge{i}.cdn.example.net")),
                Ipv4Addr::new(100, 64, (i >> 8) as u8, i as u8).into(),
                300,
            )
        })
        .collect()
}

fn bench_message_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("dns_message");
    group.sample_size(50);
    let msg = sample_message();
    let bytes = msg.encode().unwrap();
    group.bench_function("encode", |b| b.iter(|| black_box(msg.encode().unwrap())));
    group.bench_function("decode", |b| {
        b.iter(|| black_box(DnsMessage::decode(&bytes).unwrap()))
    });
    group.finish();
}

fn bench_framing(c: &mut Criterion) {
    let mut group = c.benchmark_group("dns_framing");
    group.sample_size(50);
    let records = sample_records(1_000);
    let encoder = FrameEncoder::new();
    let encoded = encoder.encode_batch(&records).unwrap();
    group.bench_function("encode_1k_records", |b| {
        b.iter(|| black_box(encoder.encode_batch(&records).unwrap()))
    });
    group.bench_function("decode_1k_records", |b| {
        b.iter(|| {
            let mut decoder = FrameDecoder::new();
            black_box(decoder.feed(&encoded).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_message_codec, bench_framing);
criterion_main!(benches);
