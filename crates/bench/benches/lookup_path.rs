//! Criterion benchmarks for the correlation hot path: FillUp inserts and
//! LookUp resolution with CNAME chain following.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use flowdns_core::fillup::{process_dns_record, FillUpStats};
use flowdns_core::lookup::LookUpStats;
use flowdns_core::{CorrelatorConfig, DnsStore, Resolver, Variant};
use flowdns_types::{DnsRecord, DomainName, FlowRecord, SimTime};
use std::net::Ipv4Addr;

fn populate(store: &DnsStore, chains: usize) {
    let mut stats = FillUpStats::default();
    let ts = SimTime::from_secs(1);
    for i in 0..chains {
        let customer = DomainName::literal(&format!("www.service{i}.example"));
        let hop = DomainName::literal(&format!("svc{i}.cdn.example.net"));
        let edge = DomainName::literal(&format!("edge{i}.cdn.example.net"));
        let ip = Ipv4Addr::new(100, 64, (i >> 8) as u8, i as u8);
        process_dns_record(
            store,
            &DnsRecord::cname(ts, customer, hop.clone(), 600),
            &mut stats,
        );
        process_dns_record(
            store,
            &DnsRecord::cname(ts, hop, edge.clone(), 600),
            &mut stats,
        );
        process_dns_record(
            store,
            &DnsRecord::address(ts, edge, ip.into(), 300),
            &mut stats,
        );
    }
}

fn bench_fillup(c: &mut Criterion) {
    let mut group = c.benchmark_group("fillup");
    group.sample_size(30);
    for variant in [Variant::Main, Variant::NoSplit] {
        group.bench_with_input(
            BenchmarkId::new("insert_3k_records", variant.label()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    let store = DnsStore::new(&CorrelatorConfig::for_variant(variant));
                    populate(&store, 1_000);
                    black_box(store.total_entries())
                })
            },
        );
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup");
    group.sample_size(30);
    let config = CorrelatorConfig::default();
    let store = DnsStore::new(&config);
    populate(&store, 2_000);
    let mut resolver = Resolver::new(&store, &config);
    let hit_flow = FlowRecord::inbound(
        SimTime::from_secs(10),
        Ipv4Addr::new(100, 64, 3, 200).into(),
        Ipv4Addr::new(10, 0, 0, 1).into(),
        100_000,
    );
    let miss_flow = FlowRecord::inbound(
        SimTime::from_secs(10),
        Ipv4Addr::new(192, 0, 2, 1).into(),
        Ipv4Addr::new(10, 0, 0, 1).into(),
        100_000,
    );
    group.bench_function("resolve_hit_with_chain", |b| {
        b.iter(|| {
            let mut stats = LookUpStats::default();
            black_box(resolver.process_flow(hit_flow.clone(), &mut stats))
        })
    });
    group.bench_function("resolve_miss", |b| {
        b.iter(|| {
            let mut stats = LookUpStats::default();
            black_box(resolver.process_flow(miss_flow.clone(), &mut stats))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fillup, bench_lookup);
criterion_main!(benches);
