//! Criterion benchmarks for the NetFlow v5 and v9 codecs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flowdns_netflow::v5::{V5Header, V5Packet, V5Record};
use flowdns_netflow::v9::{encode_standard_ipv4_record, V9PacketBuilder, V9Parser};
use flowdns_netflow::{ExtractorConfig, FlowExtractor, Template};
use std::net::Ipv4Addr;

fn v5_packet() -> V5Packet {
    V5Packet {
        header: V5Header {
            unix_secs: 1_700_000_000,
            ..V5Header::default()
        },
        records: (0..30)
            .map(|i| V5Record {
                src_addr: Ipv4Addr::new(100, 64, 0, i as u8),
                dst_addr: Ipv4Addr::new(10, 0, 0, i as u8),
                packets: 100,
                octets: 150_000,
                src_port: 443,
                dst_port: 50_000 + i as u16,
                proto: 6,
                ..V5Record::default()
            })
            .collect(),
    }
}

fn v9_packet() -> Vec<u8> {
    let template = Template::standard_ipv4(256);
    let mut builder = V9PacketBuilder::new(1, 1, 1_700_000_000);
    builder.add_templates(std::slice::from_ref(&template));
    let records: Vec<Vec<u8>> = (0..30)
        .map(|i| {
            encode_standard_ipv4_record(
                Ipv4Addr::new(100, 64, 0, i as u8),
                Ipv4Addr::new(10, 0, 0, i as u8),
                443,
                50_000 + i as u16,
                6,
                150_000,
                100,
                0,
                1,
            )
        })
        .collect();
    builder.add_data(&template, &records).unwrap();
    builder.build(0)
}

fn bench_v5(c: &mut Criterion) {
    let mut group = c.benchmark_group("netflow_v5");
    group.sample_size(50);
    let packet = v5_packet();
    let bytes = packet.encode().unwrap();
    group.bench_function("encode_30_records", |b| {
        b.iter(|| black_box(packet.encode().unwrap()))
    });
    group.bench_function("decode_30_records", |b| {
        b.iter(|| black_box(V5Packet::decode(&bytes).unwrap()))
    });
    group.bench_function("extract_30_records", |b| {
        let mut extractor = FlowExtractor::new(ExtractorConfig::default());
        b.iter(|| black_box(extractor.from_v5(&packet)))
    });
    group.finish();
}

fn bench_v9(c: &mut Criterion) {
    let mut group = c.benchmark_group("netflow_v9");
    group.sample_size(50);
    let bytes = v9_packet();
    group.bench_function("parse_30_records", |b| {
        let mut parser = V9Parser::new();
        b.iter(|| black_box(parser.parse(&bytes).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_v5, bench_v9);
criterion_main!(benches);
