//! The typed-key vs. formatted-string hot-path comparison.
//!
//! Every flow record costs one IP lookup, so the key representation is
//! the system's tightest inner loop. This bench stores the same records
//! two ways — keyed by compact [`IpKey`] with interned [`NameRef`]
//! values (the shipped design) and keyed by the textual IP with `String`
//! values (the seed design) — and measures lookups over a fixed batch of
//! source addresses. The string baseline pays what the old
//! `lookup.rs`/`fillup.rs` hot paths paid: one `to_string()` per record
//! before the map probe.

use std::net::{IpAddr, Ipv4Addr};

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use flowdns_storage::{RotatingStore, RotationPolicy};
use flowdns_types::{IpKey, NameInterner, NameRef, SimTime};

const ENTRIES: u32 = 20_000;
const BATCH: u32 = 1_000;

fn ip_of(i: u32) -> IpAddr {
    Ipv4Addr::new(100, (i >> 16) as u8, (i >> 8) as u8, i as u8).into()
}

fn typed_store() -> RotatingStore<IpKey, NameRef> {
    let store = RotatingStore::new(RotationPolicy::address_default(), 32);
    let names = NameInterner::new();
    for i in 0..ENTRIES {
        store.insert(
            IpKey::from_ip(ip_of(i)),
            names.intern(&format!("edge{}.cdn.example.net", i % 512)),
            300,
            SimTime::from_secs(1),
        );
    }
    store
}

fn string_store() -> RotatingStore<String, String> {
    let store = RotatingStore::new(RotationPolicy::address_default(), 32);
    for i in 0..ENTRIES {
        store.insert(
            ip_of(i).to_string(),
            format!("edge{}.cdn.example.net", i % 512),
            300,
            SimTime::from_secs(1),
        );
    }
    store
}

/// A batch of flow source addresses: 80% stored, 20% unknown, the mix a
/// well-covered ISP trace produces.
fn flow_batch() -> Vec<IpAddr> {
    (0..BATCH)
        .map(|i| {
            if i % 5 == 4 {
                Ipv4Addr::new(192, 0, 2, i as u8).into()
            } else {
                ip_of(i * 7 % ENTRIES)
            }
        })
        .collect()
}

fn bench_lookup_hot_path(c: &mut Criterion) {
    let typed = typed_store();
    let stringly = string_store();
    let batch = flow_batch();

    let mut group = c.benchmark_group("lookup_hot_path");
    group.sample_size(50);
    group.throughput(Throughput::Elements(BATCH as u64));

    group.bench_function("typed_ipkey", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for ip in &batch {
                if typed.lookup(&IpKey::from_ip(*ip)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });

    group.bench_function("formatted_string", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for ip in &batch {
                // The seed hot path: format the address, then probe.
                if stringly.lookup(ip.to_string().as_str()).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_lookup_hot_path);
criterion_main!(benches);
