//! Criterion micro-benchmarks for the sharded concurrent map and the
//! rotating store — the data structures on the correlator's hot path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use flowdns_storage::{RotatingStore, RotationPolicy, ShardedMap};
use flowdns_types::{SimDuration, SimTime};

fn bench_sharded_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_map");
    group.sample_size(30);
    for shards in [1usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::new("insert_10k", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let map: ShardedMap<String, String> = ShardedMap::new(shards);
                    for i in 0..10_000u32 {
                        map.insert(
                            format!("198.51.{}.{}", i >> 8, i & 0xff),
                            "svc.example".to_string(),
                        );
                    }
                    black_box(map.len())
                })
            },
        );
    }
    let map: ShardedMap<String, String> = ShardedMap::new(32);
    for i in 0..10_000u32 {
        map.insert(
            format!("198.51.{}.{}", i >> 8, i & 0xff),
            "svc.example".to_string(),
        );
    }
    group.bench_function("get_hit", |b| {
        b.iter(|| black_box(map.get("198.51.19.136")));
    });
    group.bench_function("get_miss", |b| {
        b.iter(|| black_box(map.get("203.0.113.7")));
    });
    group.finish();
}

fn bench_rotating_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("rotating_store");
    group.sample_size(30);
    group.bench_function("insert_with_clear_up", |b| {
        b.iter(|| {
            let store = RotatingStore::new(RotationPolicy::address_default(), 32);
            for i in 0..5_000u64 {
                store.insert(
                    format!("100.64.{}.{}", i >> 8, i & 0xff),
                    "svc.example".to_string(),
                    300,
                    SimTime::from_secs(i * 2),
                );
            }
            black_box(store.total_entries())
        })
    });
    let store = RotatingStore::new(
        RotationPolicy {
            clear_up_interval: SimDuration::from_secs(3600),
            clear_up: true,
            rotation: true,
            long_maps: true,
        },
        32,
    );
    for i in 0..5_000u64 {
        store.insert(
            format!("100.64.{}.{}", i >> 8, i & 0xff),
            "svc.example".to_string(),
            300,
            SimTime::from_secs(1),
        );
    }
    group.bench_function("lookup_cascade", |b| {
        b.iter(|| black_box(store.lookup("100.64.7.77")));
    });
    group.finish();
}

criterion_group!(benches, bench_sharded_map, bench_rotating_store);
criterion_main!(benches);
