//! Criterion benchmarks for end-to-end correlation throughput: the
//! offline simulator (deterministic) and the threaded live pipeline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flowdns_bench::{experiment_workload, to_event};
use flowdns_core::simulate::Event;
use flowdns_core::{Correlator, CorrelatorConfig, OfflineSimulator, Variant};

fn workload_events() -> Vec<Event> {
    let workload = experiment_workload(1, 20.0);
    workload.events().map(to_event).collect()
}

fn bench_offline(c: &mut Criterion) {
    let events = workload_events();
    let mut group = c.benchmark_group("offline_simulator");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    for variant in [Variant::Main, Variant::NoSplit, Variant::ExactTtl] {
        group.bench_with_input(
            BenchmarkId::new("one_hour_trace", variant.label()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    let sim = OfflineSimulator::new(CorrelatorConfig::for_variant(variant));
                    black_box(sim.run(&events))
                })
            },
        );
    }
    group.finish();
}

fn bench_live_pipeline(c: &mut Criterion) {
    let events = workload_events();
    let mut group = c.benchmark_group("live_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("threaded_end_to_end", |b| {
        b.iter(|| {
            let correlator = Correlator::start(CorrelatorConfig::default()).unwrap();
            for event in &events {
                match event {
                    Event::Dns(record) => {
                        correlator.push_dns(record.clone());
                    }
                    Event::Flow(flow) => {
                        correlator.push_flow(flow.clone());
                    }
                }
            }
            black_box(correlator.finish().unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_offline, bench_live_pipeline);
criterion_main!(benches);
