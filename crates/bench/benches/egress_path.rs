//! The egress-path comparison: sharded vs. mutexed write stage, frozen
//! vs. trie longest-prefix-match.
//!
//! Two hot paths changed in the sharded-egress refactor:
//!
//! * **Writer**: the old `SharedWriter` funnelled every write worker
//!   through one `Mutex<Box<dyn OutputSink>>`; the sharded design gives
//!   each worker its own sink, so serialization happens without any
//!   lock. The bench replays the same record batch through both shapes
//!   across several threads.
//! * **LPM**: the old per-record AS attribution walked the bit trie;
//!   the pipeline now reads a [`FrozenTable`] of flat sorted arrays.
//!   The bench probes both with the same address batch.

use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use parking_lot::Mutex;

use flowdns_bgp::{Announcement, FrozenTable, Prefix, RoutingTable};
use flowdns_core::OutputSink;
use flowdns_types::{
    CorrelatedRecord, CorrelationOutcome, DomainName, FlowDnsError, FlowRecord, SimTime,
};

const RECORDS: usize = 16_384;
const THREADS: usize = 4;
const PREFIXES: u32 = 1_024;
const PROBES: u32 = 1_024;

/// A sink that pays the serialization cost and keeps one counter —
/// the cheapest "real" sink, so the lock (or its absence) dominates.
#[derive(Default)]
struct CountingSink {
    bytes: u64,
}

impl OutputSink for CountingSink {
    fn write_record(&mut self, record: &CorrelatedRecord) -> Result<(), FlowDnsError> {
        self.bytes += record.to_tsv().len() as u64;
        Ok(())
    }
}

fn record_batch() -> Vec<CorrelatedRecord> {
    (0..RECORDS)
        .map(|i| {
            CorrelatedRecord::new(
                FlowRecord::inbound(
                    SimTime::from_secs(i as u64),
                    Ipv4Addr::new(100, 64, (i >> 8) as u8, i as u8).into(),
                    Ipv4Addr::new(10, 0, 0, 1).into(),
                    1_000 + i as u64,
                ),
                CorrelationOutcome::Name(DomainName::literal(&format!(
                    "edge{}.cdn.example.net",
                    i % 512
                ))),
            )
            .with_asns(Some(64_500), None)
        })
        .collect()
}

fn bench_writers(c: &mut Criterion) {
    let batch = Arc::new(record_batch());
    let mut group = c.benchmark_group("egress_path");
    group.sample_size(30);
    group.throughput(Throughput::Elements(RECORDS as u64));

    // The seed design: every thread funnels through one mutexed sink.
    group.bench_function("mutexed_writer", |b| {
        b.iter(|| {
            let sink: Arc<Mutex<Box<dyn OutputSink>>> =
                Arc::new(Mutex::new(Box::new(CountingSink::default())));
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let sink = Arc::clone(&sink);
                    let batch = Arc::clone(&batch);
                    scope.spawn(move || {
                        for record in batch.iter().skip(t).step_by(THREADS) {
                            sink.lock().write_record(record).unwrap();
                        }
                    });
                }
            });
            black_box(());
        })
    });

    // The sharded design: every thread owns its sink, no lock at all.
    group.bench_function("sharded_writer", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let batch = Arc::clone(&batch);
                    scope.spawn(move || {
                        let mut sink = CountingSink::default();
                        for record in batch.iter().skip(t).step_by(THREADS) {
                            sink.write_record(record).unwrap();
                        }
                        black_box(sink.bytes);
                    });
                }
            });
            black_box(());
        })
    });

    group.finish();
}

fn announcement_set() -> Vec<Announcement> {
    (0..PREFIXES)
        .flat_map(|i| {
            let base = Ipv4Addr::new(100, 64 + (i >> 8) as u8, (i & 0xff) as u8, 0);
            // A /24 plus a nested /28: realistic overlap in every block.
            [(24u8, 64_500 + i % 100), (28, 64_600 + i % 100)]
                .into_iter()
                .map(move |(len, asn)| Announcement {
                    prefix: Prefix::new(IpAddr::V4(base), len).expect("valid len"),
                    origin_as: asn,
                })
        })
        .collect()
}

fn probe_batch() -> Vec<IpAddr> {
    (0..PROBES)
        .map(|i| {
            if i % 5 == 4 {
                // 20% outside the announced space.
                Ipv4Addr::new(198, 51, (i >> 8) as u8, i as u8).into()
            } else {
                Ipv4Addr::new(100, 64 + (i >> 8) as u8, (i & 0xff) as u8, i as u8).into()
            }
        })
        .collect()
}

fn bench_lpm(c: &mut Criterion) {
    let mut trie = RoutingTable::new();
    for a in announcement_set() {
        trie.announce(a);
    }
    let frozen: FrozenTable = trie.freeze();
    let probes = probe_batch();

    let mut group = c.benchmark_group("egress_path");
    group.sample_size(50);
    group.throughput(Throughput::Elements(PROBES as u64));

    group.bench_function("frozen_lpm", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for addr in &probes {
                if frozen.origin_as(*addr).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });

    group.bench_function("trie_lpm", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for addr in &probes {
                if trie.origin_as(*addr).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_writers, bench_lpm);
criterion_main!(benches);
