//! Identifiers for streams and workers.

use std::fmt;

/// Which kind of input stream a record came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// A DNS resolver feed stream.
    Dns,
    /// A NetFlow export stream.
    Netflow,
}

impl fmt::Display for StreamKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamKind::Dns => write!(f, "dns"),
            StreamKind::Netflow => write!(f, "netflow"),
        }
    }
}

/// Identifier of one input stream (the large ISP has 2 DNS and 26 NetFlow
/// streams; the small ISP has 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct StreamId(u16);

impl StreamId {
    /// Build a stream id.
    pub const fn new(id: u16) -> Self {
        StreamId(id)
    }

    /// The numeric index.
    pub const fn index(&self) -> u16 {
        self.0
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream#{}", self.0)
    }
}

/// Identifier of one worker thread (FillUp, LookUp, or Write).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId {
    /// The worker's role.
    pub role: WorkerRole,
    /// Index of the worker within its role.
    pub index: u16,
}

/// The three worker roles of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkerRole {
    /// FillUp workers consume DNS records and fill the shared storage.
    FillUp,
    /// LookUp workers consume flow records and query the shared storage.
    LookUp,
    /// Write workers persist correlated records.
    Write,
}

impl WorkerId {
    /// Build a worker id.
    pub const fn new(role: WorkerRole, index: u16) -> Self {
        WorkerId { role, index }
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let role = match self.role {
            WorkerRole::FillUp => "fillup",
            WorkerRole::LookUp => "lookup",
            WorkerRole::Write => "write",
        };
        write!(f, "{role}-{}", self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_id_roundtrip_and_display() {
        let s = StreamId::new(25);
        assert_eq!(s.index(), 25);
        assert_eq!(s.to_string(), "stream#25");
    }

    #[test]
    fn worker_id_display() {
        assert_eq!(WorkerId::new(WorkerRole::FillUp, 3).to_string(), "fillup-3");
        assert_eq!(WorkerId::new(WorkerRole::LookUp, 0).to_string(), "lookup-0");
        assert_eq!(WorkerId::new(WorkerRole::Write, 7).to_string(), "write-7");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(WorkerId::new(WorkerRole::LookUp, 1));
        set.insert(WorkerId::new(WorkerRole::FillUp, 2));
        set.insert(WorkerId::new(WorkerRole::FillUp, 1));
        assert_eq!(set.len(), 3);
        assert_eq!(set.iter().next().unwrap().role, WorkerRole::FillUp);
    }
}
