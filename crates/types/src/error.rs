//! The workspace-wide error type.

use std::fmt;

use crate::domain::DomainParseError;

/// Errors surfaced by the FlowDNS crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowDnsError {
    /// A DNS wire-format message could not be parsed.
    DnsParse(String),
    /// A NetFlow / IPFIX packet could not be parsed.
    NetflowParse(String),
    /// A domain name could not be interpreted.
    Domain(DomainParseError),
    /// A configuration file or value was invalid.
    Config(String),
    /// A pipeline component was used after shutdown or before start.
    PipelineState(String),
    /// An I/O error, stringified (std::io::Error is not Clone/PartialEq).
    Io(String),
    /// A store snapshot file could not be decoded (bad magic, unsupported
    /// version, checksum mismatch, or truncated payload).
    Snapshot(String),
}

impl fmt::Display for FlowDnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowDnsError::DnsParse(msg) => write!(f, "DNS parse error: {msg}"),
            FlowDnsError::NetflowParse(msg) => write!(f, "NetFlow parse error: {msg}"),
            FlowDnsError::Domain(e) => write!(f, "domain name error: {e}"),
            FlowDnsError::Config(msg) => write!(f, "configuration error: {msg}"),
            FlowDnsError::PipelineState(msg) => write!(f, "pipeline state error: {msg}"),
            FlowDnsError::Io(msg) => write!(f, "I/O error: {msg}"),
            FlowDnsError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
        }
    }
}

impl std::error::Error for FlowDnsError {}

impl From<DomainParseError> for FlowDnsError {
    fn from(e: DomainParseError) -> Self {
        FlowDnsError::Domain(e)
    }
}

impl From<std::io::Error> for FlowDnsError {
    fn from(e: std::io::Error) -> Self {
        FlowDnsError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = FlowDnsError::DnsParse("truncated header".into());
        assert!(e.to_string().contains("truncated header"));
        let e = FlowDnsError::Config("missing key num_split".into());
        assert!(e.to_string().contains("num_split"));
    }

    #[test]
    fn conversions() {
        let d: FlowDnsError = DomainParseError::Empty.into();
        assert!(matches!(d, FlowDnsError::Domain(_)));
        let io: FlowDnsError = std::io::Error::other("boom").into();
        assert!(matches!(io, FlowDnsError::Io(_)));
        assert!(io.to_string().contains("boom"));
    }
}
