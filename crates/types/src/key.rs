//! Compact typed IP keys for the hot correlation maps.
//!
//! Every NetFlow record triggers one IP-NAME lookup and every A/AAAA
//! answer one insert, so the key representation sits squarely on the hot
//! path. The seed implementation keyed those maps by the *textual* IP
//! address, which costs a heap-allocated `String` (plus formatting) per
//! record on both sides. [`IpKey`] replaces that with the raw address
//! bits — a `u32` for IPv4, a `u128` for IPv6 — so keys are `Copy`,
//! hash in a handful of instructions, and round-trip losslessly to and
//! from [`IpAddr`].

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// A compact, hash-friendly key for one IP address.
///
/// `IpKey` preserves the address family: an IPv4-mapped IPv6 address
/// (`::ffff:a.b.c.d`) stays V6, so the round trip `IpAddr → IpKey →
/// IpAddr` is exact for every address.
///
/// # Examples
///
/// ```
/// use flowdns_types::IpKey;
/// use std::net::IpAddr;
///
/// let ip: IpAddr = "203.0.113.9".parse().unwrap();
/// let key = IpKey::from_ip(ip);
/// assert!(key.is_v4());
/// assert_eq!(key.to_ip(), ip);           // exact round trip
/// assert_eq!(key.encoded_len(), 4);      // 4 payload bytes, not a String
///
/// // The v6-mapped form of the same address is a *different* key.
/// let mapped: IpAddr = "::ffff:203.0.113.9".parse().unwrap();
/// assert_ne!(IpKey::from_ip(mapped), key);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpKey {
    /// An IPv4 address as its 32 big-endian bits.
    V4(u32),
    /// An IPv6 address as its 128 big-endian bits.
    V6(u128),
}

impl IpKey {
    /// Build a key from any IP address.
    pub fn from_ip(ip: IpAddr) -> Self {
        match ip {
            IpAddr::V4(v4) => IpKey::V4(u32::from(v4)),
            IpAddr::V6(v6) => IpKey::V6(u128::from(v6)),
        }
    }

    /// Recover the address this key was built from.
    pub fn to_ip(self) -> IpAddr {
        match self {
            IpKey::V4(bits) => IpAddr::V4(Ipv4Addr::from(bits)),
            IpKey::V6(bits) => IpAddr::V6(Ipv6Addr::from(bits)),
        }
    }

    /// Is this an IPv4 key?
    pub fn is_v4(self) -> bool {
        matches!(self, IpKey::V4(_))
    }

    /// Is this an IPv6 key?
    pub fn is_v6(self) -> bool {
        matches!(self, IpKey::V6(_))
    }

    /// Bytes of address payload the key encodes (4 or 16), used by the
    /// storage layer's memory accounting.
    pub const fn encoded_len(self) -> usize {
        match self {
            IpKey::V4(_) => 4,
            IpKey::V6(_) => 16,
        }
    }
}

impl From<IpAddr> for IpKey {
    fn from(ip: IpAddr) -> Self {
        IpKey::from_ip(ip)
    }
}

impl From<Ipv4Addr> for IpKey {
    fn from(ip: Ipv4Addr) -> Self {
        IpKey::V4(u32::from(ip))
    }
}

impl From<Ipv6Addr> for IpKey {
    fn from(ip: Ipv6Addr) -> Self {
        IpKey::V6(u128::from(ip))
    }
}

impl From<IpKey> for IpAddr {
    fn from(key: IpKey) -> Self {
        key.to_ip()
    }
}

impl fmt::Display for IpKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_ip().fmt(f)
    }
}

impl std::str::FromStr for IpKey {
    type Err = std::net::AddrParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.parse::<IpAddr>().map(IpKey::from_ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_round_trip_and_family() {
        let ip: IpAddr = Ipv4Addr::new(203, 0, 113, 9).into();
        let key = IpKey::from_ip(ip);
        assert!(key.is_v4());
        assert!(!key.is_v6());
        assert_eq!(key.encoded_len(), 4);
        assert_eq!(key.to_ip(), ip);
        assert_eq!(IpAddr::from(key), ip);
        assert_eq!(key.to_string(), "203.0.113.9");
    }

    #[test]
    fn v6_round_trip_preserves_mapped_addresses() {
        let plain: IpAddr = "2001:db8::7".parse().unwrap();
        let mapped: IpAddr = "::ffff:192.0.2.1".parse().unwrap();
        for ip in [plain, mapped] {
            let key = IpKey::from_ip(ip);
            assert!(key.is_v6());
            assert_eq!(key.encoded_len(), 16);
            assert_eq!(key.to_ip(), ip);
        }
        // A v4 address and its v6-mapped form are *different* keys.
        let v4: IpAddr = "192.0.2.1".parse().unwrap();
        assert_ne!(IpKey::from_ip(v4), IpKey::from_ip(mapped));
    }

    #[test]
    fn keys_are_comparable_and_hashable() {
        use std::collections::HashMap;
        let mut m: HashMap<IpKey, &str> = HashMap::new();
        m.insert(Ipv4Addr::new(1, 2, 3, 4).into(), "a");
        m.insert("2001:db8::1".parse().unwrap(), "b");
        assert_eq!(
            m.get(&IpKey::from_ip("1.2.3.4".parse().unwrap())),
            Some(&"a")
        );
        assert_eq!(m.len(), 2);
        assert!(IpKey::V4(1) < IpKey::V4(2));
    }

    #[test]
    fn parses_from_text() {
        let key: IpKey = "198.51.100.7".parse().unwrap();
        assert_eq!(key, IpKey::from(Ipv4Addr::new(198, 51, 100, 7)));
        assert!("not-an-ip".parse::<IpKey>().is_err());
    }
}
