//! Domain names.
//!
//! The correlator treats domain names as opaque keys most of the time, but
//! Section 5 of the paper validates them against three RFC 1035 rules
//! (total length, label length, allowed characters), and the DNS codec
//! needs access to individual labels for wire encoding and compression.
//! [`DomainName`] therefore stores a normalized (lower-cased, no trailing
//! dot) representation and exposes label iteration, while *accepting*
//! arbitrary non-empty strings: the paper explicitly observes malformed
//! names on the wire (666k per day), so rejecting them at parse time would
//! make the Section 5 analysis impossible. Validity checking lives in
//! `flowdns-dbl::validity` and in [`DomainName::strictly_valid`].

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// Maximum length of a domain name in bytes per RFC 1035.
pub const MAX_NAME_LEN: usize = 255;
/// Maximum length of a single label in bytes per RFC 1035.
pub const MAX_LABEL_LEN: usize = 63;

/// Error produced when a string cannot even be stored as a domain name
/// (empty, or not representable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainParseError {
    /// The input string was empty (after removing a trailing dot).
    Empty,
}

impl fmt::Display for DomainParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainParseError::Empty => write!(f, "domain name is empty"),
        }
    }
}

impl std::error::Error for DomainParseError {}

/// A normalized domain name.
///
/// Normalization: ASCII lower-casing and removal of a single trailing dot
/// (`example.COM.` and `example.com` compare equal). The name is stored in
/// an `Arc<str>` so that cloning — which the correlator does on every
/// hashmap insert and every CNAME chain hop — is a reference-count bump
/// rather than a heap copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainName {
    normalized: Arc<str>,
}

impl DomainName {
    /// Parse a domain name from text, normalizing case and trailing dot.
    pub fn parse(s: &str) -> Result<Self, DomainParseError> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        if trimmed.is_empty() {
            return Err(DomainParseError::Empty);
        }
        let normalized: String = trimmed.chars().map(|c| c.to_ascii_lowercase()).collect();
        Ok(DomainName {
            normalized: normalized.into(),
        })
    }

    /// Parse, panicking on failure. Intended for literals in tests and
    /// generators.
    pub fn literal(s: &str) -> Self {
        DomainName::parse(s).expect("invalid domain literal")
    }

    /// The normalized textual form (lower-case, no trailing dot).
    pub fn as_str(&self) -> &str {
        &self.normalized
    }

    /// Share the underlying allocation (a reference-count bump). Used by
    /// the interned-name machinery in [`crate::intern`].
    pub(crate) fn shared_str(&self) -> Arc<str> {
        Arc::clone(&self.normalized)
    }

    /// Wrap an already-normalized shared string. Callers must guarantee
    /// the text is normalized (lower-case, non-empty, no trailing dot),
    /// which holds for any string extracted from a parsed `DomainName`.
    pub(crate) fn from_shared(normalized: Arc<str>) -> Self {
        DomainName { normalized }
    }

    /// The labels of the name, in order (e.g. `a.b.com` → `["a","b","com"]`).
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.normalized.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// Length of the textual representation in bytes.
    pub fn len(&self) -> usize {
        self.normalized.len()
    }

    /// True if the textual representation is empty (never true for a
    /// successfully parsed name; present for completeness).
    pub fn is_empty(&self) -> bool {
        self.normalized.is_empty()
    }

    /// The registrable-ish suffix of the name: its last `n` labels joined.
    /// FlowDNS's service attribution groups names by their trailing labels
    /// (e.g. everything under `nflxvideo.net` is "Netflix").
    pub fn suffix(&self, n: usize) -> String {
        self.suffix_str(n).to_string()
    }

    /// Borrowed view of the last `n` labels. The labels are already
    /// dot-joined in the stored text, so the suffix is a plain subslice —
    /// no per-call label vector, no allocation.
    pub fn suffix_str(&self, n: usize) -> &str {
        if n == 0 {
            return "";
        }
        let s: &str = &self.normalized;
        let mut dots = 0;
        for (i, b) in s.bytes().enumerate().rev() {
            if b == b'.' {
                dots += 1;
                if dots == n {
                    return &s[i + 1..];
                }
            }
        }
        s
    }

    /// Is `self` equal to `other` or a subdomain of `other`?
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        if self == other {
            return true;
        }
        let me = self.as_str();
        let parent = other.as_str();
        me.len() > parent.len()
            && me.ends_with(parent)
            && me.as_bytes()[me.len() - parent.len() - 1] == b'.'
    }

    /// Check the three RFC 1035 rules used in Section 5 of the paper:
    ///
    /// 1. total length ≤ 255 bytes,
    /// 2. every label ≤ 63 bytes,
    /// 3. every label starts with a letter, ends with a letter or digit,
    ///    and interior characters are letters, digits or hyphens.
    ///
    /// Returns `true` when all rules hold. The detailed per-rule breakdown
    /// (which the malformed-domain analysis needs) lives in
    /// `flowdns-dbl::validity`.
    pub fn strictly_valid(&self) -> bool {
        if self.len() > MAX_NAME_LEN {
            return false;
        }
        for label in self.labels() {
            if label.is_empty() || label.len() > MAX_LABEL_LEN {
                return false;
            }
            let bytes = label.as_bytes();
            if !bytes[0].is_ascii_alphabetic() {
                return false;
            }
            let last = bytes[bytes.len() - 1];
            if !last.is_ascii_alphanumeric() {
                return false;
            }
            if !bytes
                .iter()
                .all(|b| b.is_ascii_alphanumeric() || *b == b'-')
            {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.normalized)
    }
}

impl std::str::FromStr for DomainName {
    type Err = DomainParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl Borrow<str> for DomainName {
    fn borrow(&self) -> &str {
        &self.normalized
    }
}

impl AsRef<str> for DomainName {
    fn as_ref(&self) -> &str {
        &self.normalized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_normalizes_case_and_trailing_dot() {
        let a = DomainName::parse("Example.COM.").unwrap();
        let b = DomainName::parse("example.com").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "example.com");
    }

    #[test]
    fn parse_rejects_empty() {
        assert_eq!(DomainName::parse(""), Err(DomainParseError::Empty));
        assert_eq!(DomainName::parse("."), Err(DomainParseError::Empty));
    }

    #[test]
    fn labels_and_suffix() {
        let d = DomainName::literal("cdn1.video.netflix.com");
        assert_eq!(d.label_count(), 4);
        assert_eq!(d.suffix(2), "netflix.com");
        assert_eq!(d.suffix(10), "cdn1.video.netflix.com");
        assert_eq!(d.suffix(0), "");
        assert_eq!(d.suffix_str(1), "com");
        assert_eq!(d.suffix_str(3), "video.netflix.com");
        assert_eq!(d.suffix_str(4), "cdn1.video.netflix.com");
        let single = DomainName::literal("localhost");
        assert_eq!(single.suffix(1), "localhost");
        assert_eq!(single.suffix(5), "localhost");
    }

    #[test]
    fn subdomain_relation() {
        let parent = DomainName::literal("netflix.com");
        let child = DomainName::literal("cdn1.netflix.com");
        let sibling = DomainName::literal("notnetflix.com");
        assert!(child.is_subdomain_of(&parent));
        assert!(parent.is_subdomain_of(&parent));
        assert!(!sibling.is_subdomain_of(&parent));
        assert!(!parent.is_subdomain_of(&child));
    }

    #[test]
    fn strict_validity_checks_rfc_rules() {
        assert!(DomainName::literal("a.example.com").strictly_valid());
        assert!(DomainName::literal("xn--nxasmq6b.example").strictly_valid());
        // underscore is the most common violation in the paper (87%)
        assert!(!DomainName::literal("_dmarc.example.com").strictly_valid());
        // label starting with a digit violates rule 3 as stated in the paper
        assert!(!DomainName::literal("1stlabel.example.com").strictly_valid());
        // label too long
        let long_label = format!("{}.com", "a".repeat(64));
        assert!(!DomainName::literal(&long_label).strictly_valid());
        // total name too long
        let long_name = vec!["abcdefgh"; 40].join(".");
        assert!(!DomainName::literal(&long_name).strictly_valid());
        // trailing hyphen in a label
        assert!(!DomainName::literal("bad-.example.com").strictly_valid());
    }

    #[test]
    fn malformed_names_are_still_storable() {
        // The correlator must be able to carry malformed names end to end
        // so that Section 5's analysis can see them.
        let d = DomainName::literal("weird_host.example.com");
        assert_eq!(d.as_str(), "weird_host.example.com");
        assert!(!d.strictly_valid());
    }

    #[test]
    fn borrow_as_str_enables_map_lookup() {
        use std::collections::HashMap;
        let mut m: HashMap<DomainName, u32> = HashMap::new();
        m.insert(DomainName::literal("example.com"), 7);
        assert_eq!(m.get("example.com"), Some(&7));
    }
}
