//! Interned domain-name handles.
//!
//! The DNS store holds millions of domain-name values, and the same name
//! recurs constantly (every flow from a CDN edge resolves to the same
//! handful of names; rotation copies every entry once per interval).
//! [`NameRef`] is a cheap-to-clone handle over an `Arc<str>` — cloning is
//! a reference-count bump, like [`ServiceLabel`](crate::ServiceLabel) —
//! and [`NameInterner`] is a sharded pool that deduplicates handles so
//! one allocation backs every copy of a name across the Active, Inactive
//! and Long generations.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};

use crate::domain::DomainName;

/// A shared, immutable handle to a normalized domain name.
///
/// Equality and hashing are by *content* (so `NameRef` works as a hashmap
/// key), with a pointer-identity fast path for the common case where both
/// handles came out of the same [`NameInterner`].
#[derive(Debug, Clone)]
pub struct NameRef(Arc<str>);

impl NameRef {
    /// Build a handle directly from text, without interning. The text is
    /// used as-is; callers that need DNS normalization should go through
    /// [`DomainName`] first.
    pub fn new(s: &str) -> Self {
        NameRef(Arc::from(s))
    }

    /// The name text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Length of the name in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the name empty? (Never true for a handle derived from a parsed
    /// [`DomainName`].)
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Do two handles share one allocation? True whenever both came from
    /// the same interner pool.
    pub fn ptr_eq(a: &NameRef, b: &NameRef) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// View the handle as a [`DomainName`] without copying the text. The
    /// handle must hold a normalized name, which is guaranteed for every
    /// `NameRef` derived from a `DomainName` (directly or via an
    /// interner).
    pub fn to_domain(&self) -> DomainName {
        DomainName::from_shared(Arc::clone(&self.0))
    }
}

impl PartialEq for NameRef {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for NameRef {}

impl Hash for NameRef {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with `str::hash` so `Borrow<str>` map lookups work.
        self.0.hash(state)
    }
}

impl PartialOrd for NameRef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NameRef {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl Borrow<str> for NameRef {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for NameRef {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for NameRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&DomainName> for NameRef {
    /// Share the domain's existing allocation — no copy.
    fn from(name: &DomainName) -> Self {
        NameRef(name.shared_str())
    }
}

impl From<NameRef> for DomainName {
    /// Rewrap the shared allocation as a domain name — no copy.
    fn from(name: NameRef) -> Self {
        DomainName::from_shared(name.0)
    }
}

/// Default shard count of the intern pool (matches the storage layer's
/// sharded-map default).
const DEFAULT_INTERNER_SHARDS: usize = 32;

/// Entries a shard accumulates before it sweeps handles nobody else
/// references. Keeps the pool bounded by the *live* name population
/// rather than every name ever seen on a week-long stream.
const PURGE_HIGH_WATER: usize = 4096;

#[derive(Debug, Default)]
struct Shard {
    names: HashSet<Arc<str>>,
    purge_at: usize,
}

/// A sharded deduplicating pool of domain-name handles.
///
/// `intern` returns the pooled handle for a name, allocating only on
/// first sight. Shards sweep themselves when they grow past a high-water
/// mark, dropping entries whose only remaining reference is the pool
/// itself, so the pool tracks the live population of the stores feeding
/// from it.
///
/// # Examples
///
/// ```
/// use flowdns_types::{NameInterner, NameRef};
///
/// let pool = NameInterner::new();
/// let a = pool.intern("edge7.cdn.example.net");
/// let b = pool.intern("edge7.cdn.example.net");
/// // One allocation backs every copy of a pooled name.
/// assert!(NameRef::ptr_eq(&a, &b));
/// assert_eq!(pool.len(), 1);
/// ```
#[derive(Debug)]
pub struct NameInterner {
    shards: Vec<RwLock<Shard>>,
}

impl Default for NameInterner {
    fn default() -> Self {
        NameInterner::with_shards(DEFAULT_INTERNER_SHARDS)
    }
}

impl NameInterner {
    /// A pool with the default shard count.
    pub fn new() -> Self {
        NameInterner::default()
    }

    /// A pool with `shards` lock-striped shards.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "interner shard count must be positive");
        NameInterner {
            shards: (0..shards)
                .map(|_| {
                    RwLock::new(Shard {
                        names: HashSet::new(),
                        purge_at: PURGE_HIGH_WATER,
                    })
                })
                .collect(),
        }
    }

    fn shard_index(&self, s: &str) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        s.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// The pooled handle for `s`, allocating only if the name is new.
    pub fn intern(&self, s: &str) -> NameRef {
        self.intern_with(s, || Arc::from(s))
    }

    /// The pooled handle for a parsed domain name. On first sight the
    /// pool adopts the domain's existing allocation instead of copying
    /// the text.
    pub fn intern_domain(&self, name: &DomainName) -> NameRef {
        self.intern_with(name.as_str(), || name.shared_str())
    }

    fn intern_with<F: FnOnce() -> Arc<str>>(&self, s: &str, make: F) -> NameRef {
        let idx = self.shard_index(s);
        {
            let shard = self.shards[idx].read().expect("interner shard poisoned");
            if let Some(existing) = shard.names.get(s) {
                return NameRef(Arc::clone(existing));
            }
        }
        let mut shard = self.shards[idx].write().expect("interner shard poisoned");
        if let Some(existing) = shard.names.get(s) {
            return NameRef(Arc::clone(existing));
        }
        let arc = make();
        shard.names.insert(Arc::clone(&arc));
        if shard.names.len() >= shard.purge_at {
            // `arc` above holds a second reference, so the entry we just
            // inserted survives the sweep.
            shard.names.retain(|name| Arc::strong_count(name) > 1);
            shard.purge_at = (shard.names.len() * 2).max(PURGE_HIGH_WATER);
        }
        NameRef(arc)
    }

    /// Bulk-intern a sequence of names, returning the pooled handle for
    /// each input in order. This is the import half of the
    /// snapshot/warm-restart path: a snapshot's name table is interned
    /// once, and every stored entry then resolves its name index to the
    /// *same* handle — so the dedup invariant (one allocation per distinct
    /// name) is reconstructed exactly.
    pub fn import_names<I, S>(&self, names: I) -> Vec<NameRef>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        names
            .into_iter()
            .map(|name| self.intern(name.as_ref()))
            .collect()
    }

    /// Drop every pooled name whose only reference is the pool itself.
    /// Returns how many entries were removed.
    pub fn purge_unreferenced(&self) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.write().expect("interner shard poisoned");
            let before = shard.names.len();
            shard.names.retain(|name| Arc::strong_count(name) > 1);
            removed += before - shard.names.len();
        }
        removed
    }

    /// Number of distinct names currently pooled.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("interner shard poisoned").names.len())
            .sum()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates_allocations() {
        let pool = NameInterner::new();
        let a = pool.intern("cdn.example.net");
        let b = pool.intern("cdn.example.net");
        assert_eq!(a, b);
        assert!(NameRef::ptr_eq(&a, &b));
        assert_eq!(pool.len(), 1);
        let c = pool.intern("other.example.net");
        assert_ne!(a, c);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn intern_domain_adopts_the_domain_allocation() {
        let pool = NameInterner::new();
        let domain = DomainName::literal("edge7.cdn.example.net");
        let handle = pool.intern_domain(&domain);
        assert_eq!(handle.as_str(), domain.as_str());
        // The pool adopted the domain's Arc rather than copying it.
        assert!(Arc::ptr_eq(&domain.shared_str(), &handle.0));
        // A later plain intern of the same text returns the same handle.
        assert!(NameRef::ptr_eq(
            &handle,
            &pool.intern("edge7.cdn.example.net")
        ));
    }

    #[test]
    fn name_ref_round_trips_to_domain_without_copying() {
        let domain = DomainName::literal("www.shop.example");
        let handle = NameRef::from(&domain);
        assert_eq!(handle.len(), domain.len());
        assert!(!handle.is_empty());
        let back: DomainName = handle.clone().into();
        assert_eq!(back, domain);
        assert_eq!(handle.to_domain(), domain);
        assert_eq!(handle.to_string(), "www.shop.example");
    }

    #[test]
    fn content_equality_spans_pools() {
        let a = NameRef::new("svc.example");
        let b = NameRef::new("svc.example");
        assert_eq!(a, b);
        assert!(!NameRef::ptr_eq(&a, &b));
        use std::collections::HashMap;
        let mut m: HashMap<NameRef, u32> = HashMap::new();
        m.insert(a, 7);
        assert_eq!(m.get("svc.example"), Some(&7));
        assert_eq!(m.get(&b), Some(&7));
    }

    #[test]
    fn purge_drops_only_unreferenced_names() {
        let pool = NameInterner::with_shards(2);
        let kept = pool.intern("kept.example");
        let _ = pool.intern("dropped.example");
        assert_eq!(pool.len(), 2);
        let removed = pool.purge_unreferenced();
        assert_eq!(removed, 1);
        assert_eq!(pool.len(), 1);
        assert!(NameRef::ptr_eq(&kept, &pool.intern("kept.example")));
    }

    #[test]
    fn bulk_import_reconstructs_dedup() {
        // The snapshot warm-start path: a name table is bulk-interned and
        // every later resolution of the same text must share the pooled
        // allocation.
        let restored = NameInterner::with_shards(4);
        let texts = ["a.example".to_string(), "b.example".to_string()];
        let handles = restored.import_names(&texts);
        assert_eq!(handles.len(), 2);
        assert_eq!(restored.len(), 2);
        // Re-importing the same name yields the same handle (dedup).
        let again = restored.import_names(texts.iter().take(1));
        assert!(NameRef::ptr_eq(&handles[0], &again[0]));
        assert!(NameRef::ptr_eq(&handles[0], &restored.intern("a.example")));
    }

    #[test]
    fn high_water_sweep_keeps_the_pool_bounded() {
        let pool = NameInterner::with_shards(1);
        for i in 0..3 * PURGE_HIGH_WATER {
            // Handles are dropped immediately, so sweeps reclaim them.
            let _ = pool.intern(&format!("host{i}.example"));
        }
        assert!(pool.len() < PURGE_HIGH_WATER + 2);
    }
}
