//! # flowdns-types
//!
//! Shared data model for the FlowDNS reproduction.
//!
//! This crate defines the vocabulary types that every other crate in the
//! workspace speaks: timestamps ([`SimTime`]), domain names
//! ([`DomainName`]), compact IP map keys ([`IpKey`]), interned name
//! handles ([`NameRef`] / [`NameInterner`]), DNS records as seen by the
//! correlator ([`DnsRecord`]), network flow records ([`FlowRecord`]),
//! correlation output ([`CorrelatedRecord`]), and the common error type
//! ([`FlowDnsError`]).
//!
//! The types are deliberately independent of any wire format: the
//! `flowdns-dns` and `flowdns-netflow` crates parse RFC 1035 messages and
//! NetFlow v5/v9 packets respectively and *produce* these records, while
//! `flowdns-core` consumes them. This mirrors the paper's remark that the
//! system "is not bound to NetFlow data and can be adapted to use other
//! data formats containing IP addresses and timestamps".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod error;
pub mod flow;
pub mod ids;
pub mod intern;
pub mod key;
pub mod record;
pub mod service;
pub mod time;
pub mod volume;

pub use domain::{DomainName, DomainParseError};
pub use error::FlowDnsError;
pub use flow::{FlowDirection, FlowKey, FlowRecord, Protocol};
pub use ids::{StreamId, StreamKind, WorkerId};
pub use intern::{NameInterner, NameRef};
pub use key::IpKey;
pub use record::{DnsAnswer, DnsRecord, RecordType};
pub use service::{CorrelatedRecord, CorrelationOutcome, ResolvedName, ServiceLabel};
pub use time::{SimDuration, SimTime, TimeRange};
pub use volume::{ByteVolume, NormalizedVolume, VolumeAccumulator};

/// Result alias used across the workspace.
pub type Result<T, E = FlowDnsError> = std::result::Result<T, E>;
