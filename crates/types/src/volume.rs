//! Traffic volume accounting.
//!
//! The paper never reports absolute byte counts ("all the traffic volume
//! data throughout the paper is normalized"). [`NormalizedVolume`] makes
//! that normalization explicit: analyses accumulate raw [`ByteVolume`]s
//! and only convert to a normalized 0–100 scale (or a fraction of a
//! reference maximum) when reporting, so the harness output has the same
//! shape as the paper's figures.

use std::fmt;
use std::ops::{Add, AddAssign};

/// A raw byte count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteVolume(u64);

impl ByteVolume {
    /// Zero bytes.
    pub const ZERO: ByteVolume = ByteVolume(0);

    /// Construct from a byte count.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteVolume(bytes)
    }

    /// The raw byte count.
    pub const fn bytes(&self) -> u64 {
        self.0
    }

    /// The count in gigabytes (decimal GB).
    pub fn gigabytes(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Normalize against a reference maximum, producing a value in
    /// `[0, scale]`. A zero reference yields zero.
    pub fn normalized(&self, reference: ByteVolume, scale: f64) -> NormalizedVolume {
        if reference.0 == 0 {
            return NormalizedVolume(0.0);
        }
        NormalizedVolume(self.0 as f64 / reference.0 as f64 * scale)
    }

    /// Fraction of `total` that this volume represents (0.0 when total is
    /// zero).
    pub fn fraction_of(&self, total: ByteVolume) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }

    /// Saturating addition.
    pub fn saturating_add(&self, other: ByteVolume) -> ByteVolume {
        ByteVolume(self.0.saturating_add(other.0))
    }
}

impl Add for ByteVolume {
    type Output = ByteVolume;
    fn add(self, rhs: ByteVolume) -> ByteVolume {
        self.saturating_add(rhs)
    }
}

impl AddAssign for ByteVolume {
    fn add_assign(&mut self, rhs: ByteVolume) {
        *self = self.saturating_add(rhs);
    }
}

impl fmt::Display for ByteVolume {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const UNITS: [(&str, u64); 4] = [
            ("TB", 1_000_000_000_000),
            ("GB", 1_000_000_000),
            ("MB", 1_000_000),
            ("KB", 1_000),
        ];
        for (unit, factor) in UNITS {
            if self.0 >= factor {
                return write!(f, "{:.2} {unit}", self.0 as f64 / factor as f64);
            }
        }
        write!(f, "{} B", self.0)
    }
}

/// A traffic volume normalized to an arbitrary reference scale, matching
/// the normalized Y-axes in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct NormalizedVolume(pub f64);

impl NormalizedVolume {
    /// The normalized value.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl fmt::Display for NormalizedVolume {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

/// Accumulates correlated vs. total traffic, producing the correlation
/// rate the paper reports (81.7% on average).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VolumeAccumulator {
    /// Bytes that were attributed to a domain name.
    pub correlated: ByteVolume,
    /// All bytes seen.
    pub total: ByteVolume,
}

impl VolumeAccumulator {
    /// A fresh accumulator.
    pub fn new() -> Self {
        VolumeAccumulator::default()
    }

    /// Record a flow of `bytes`; `correlated` says whether it was
    /// attributed to a name.
    pub fn record(&mut self, bytes: u64, correlated: bool) {
        let v = ByteVolume::from_bytes(bytes);
        self.total += v;
        if correlated {
            self.correlated += v;
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &VolumeAccumulator) {
        self.correlated += other.correlated;
        self.total += other.total;
    }

    /// The correlation rate in percent (0 when no traffic was seen).
    pub fn correlation_rate_pct(&self) -> f64 {
        self.correlated.fraction_of(self.total) * 100.0
    }
}

impl fmt::Display for VolumeAccumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} ({:.1}%)",
            self.correlated,
            self.total,
            self.correlation_rate_pct()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_volume_arithmetic() {
        let a = ByteVolume::from_bytes(1_500);
        let b = ByteVolume::from_bytes(500);
        assert_eq!((a + b).bytes(), 2_000);
        let mut c = a;
        c += b;
        assert_eq!(c.bytes(), 2_000);
        assert_eq!(
            ByteVolume::from_bytes(u64::MAX) + b,
            ByteVolume::from_bytes(u64::MAX)
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteVolume::from_bytes(999).to_string(), "999 B");
        assert_eq!(ByteVolume::from_bytes(1_500).to_string(), "1.50 KB");
        assert_eq!(ByteVolume::from_bytes(2_000_000_000).to_string(), "2.00 GB");
        assert_eq!(
            ByteVolume::from_bytes(3_500_000_000_000).to_string(),
            "3.50 TB"
        );
    }

    #[test]
    fn normalization_and_fraction() {
        let v = ByteVolume::from_bytes(25);
        let reference = ByteVolume::from_bytes(100);
        assert!((v.normalized(reference, 70.0).value() - 17.5).abs() < 1e-9);
        assert!((v.fraction_of(reference) - 0.25).abs() < 1e-12);
        assert_eq!(v.normalized(ByteVolume::ZERO, 70.0).value(), 0.0);
        assert_eq!(v.fraction_of(ByteVolume::ZERO), 0.0);
    }

    #[test]
    fn accumulator_computes_correlation_rate() {
        let mut acc = VolumeAccumulator::new();
        acc.record(800, true);
        acc.record(200, false);
        assert!((acc.correlation_rate_pct() - 80.0).abs() < 1e-9);
        assert_eq!(acc.total.bytes(), 1000);
        assert_eq!(acc.correlated.bytes(), 800);
    }

    #[test]
    fn accumulator_merge() {
        let mut a = VolumeAccumulator::new();
        a.record(100, true);
        let mut b = VolumeAccumulator::new();
        b.record(100, false);
        a.merge(&b);
        assert!((a.correlation_rate_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_accumulator_rate_is_zero() {
        assert_eq!(VolumeAccumulator::new().correlation_rate_pct(), 0.0);
    }
}
