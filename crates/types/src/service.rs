//! Correlation output types.
//!
//! The result of looking a flow up in the DNS store is a chain of names
//! (`results` in Algorithm 2): the A/AAAA query name first, then each
//! CNAME discovered by chain-following. FlowDNS writes the original flow
//! plus this chain; downstream analyses then map the final name to a
//! *service* (Netflix, a CDN customer, ...) using suffix rules.

use std::fmt;
use std::sync::Arc;

use crate::domain::DomainName;
use crate::flow::FlowRecord;

/// A human-meaningful service label (e.g. `"S1"`, `"Netflix"`, `"CDN-A"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceLabel(Arc<str>);

impl ServiceLabel {
    /// Build a label from text.
    pub fn new(name: &str) -> Self {
        ServiceLabel(name.into())
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The label used for traffic that could not be attributed.
    pub fn unknown() -> Self {
        ServiceLabel::new("unknown")
    }
}

impl fmt::Display for ServiceLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ServiceLabel {
    fn from(s: &str) -> Self {
        ServiceLabel::new(s)
    }
}

/// The outcome of the hashmap lookup for one flow (Algorithm 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorrelationOutcome {
    /// The source IP was not present in any IP-NAME hashmap
    /// (`result = NULL` in the paper).
    NotFound,
    /// The IP resolved to a name but no CNAME entry existed
    /// (`result = Name`).
    Name(DomainName),
    /// The IP resolved to a name and the CNAME chain was followed;
    /// the chain is stored innermost-last (`result = CName`).
    Chain(Vec<DomainName>),
}

impl CorrelationOutcome {
    /// Was anything found at all?
    pub fn is_correlated(&self) -> bool {
        !matches!(self, CorrelationOutcome::NotFound)
    }

    /// The name FlowDNS reports for this flow: the last element of the
    /// chain (the most canonical name), or the direct name, or `None`.
    pub fn final_name(&self) -> Option<&DomainName> {
        match self {
            CorrelationOutcome::NotFound => None,
            CorrelationOutcome::Name(n) => Some(n),
            CorrelationOutcome::Chain(chain) => chain.last(),
        }
    }

    /// The first (customer-facing) name of the chain, i.e. the domain the
    /// client actually queried. Service attribution uses this name.
    pub fn first_name(&self) -> Option<&DomainName> {
        match self {
            CorrelationOutcome::NotFound => None,
            CorrelationOutcome::Name(n) => Some(n),
            CorrelationOutcome::Chain(chain) => chain.first(),
        }
    }

    /// All names in resolution order.
    pub fn names(&self) -> &[DomainName] {
        match self {
            CorrelationOutcome::NotFound => &[],
            CorrelationOutcome::Name(n) => std::slice::from_ref(n),
            CorrelationOutcome::Chain(chain) => chain,
        }
    }

    /// Number of CNAME look-ups that were needed (0 for a direct name).
    pub fn chain_length(&self) -> usize {
        match self {
            CorrelationOutcome::NotFound | CorrelationOutcome::Name(_) => 0,
            CorrelationOutcome::Chain(chain) => chain.len().saturating_sub(1),
        }
    }
}

/// A single name resolved for a flow, with the store generation it was
/// found in (useful for diagnostics and the rotation ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolvedName {
    /// Found in the Active generation.
    Active,
    /// Found in the Inactive generation.
    Inactive,
    /// Found in the Long generation.
    Long,
}

/// One line of FlowDNS output: the original flow plus the resolution
/// result and the BGP origin-AS attribution of both endpoints. This is
/// what the Write workers serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrelatedRecord {
    /// The original flow record.
    pub flow: FlowRecord,
    /// The resolution outcome.
    pub outcome: CorrelationOutcome,
    /// Origin AS of the flow's source address, stamped by the LookUp
    /// stage when a routing table is loaded (the paper's Figure 4 join
    /// performed in-pipeline). `None` when no announcement covers the
    /// address or no table is loaded.
    pub src_asn: Option<u32>,
    /// Origin AS of the flow's destination address.
    pub dst_asn: Option<u32>,
}

impl CorrelatedRecord {
    /// A record without AS attribution (offline analyses, tests, and
    /// pipelines running with no routing table).
    pub fn new(flow: FlowRecord, outcome: CorrelationOutcome) -> Self {
        CorrelatedRecord {
            flow,
            outcome,
            src_asn: None,
            dst_asn: None,
        }
    }

    /// The same record with origin-AS attribution attached.
    pub fn with_asns(mut self, src_asn: Option<u32>, dst_asn: Option<u32>) -> Self {
        self.src_asn = src_asn;
        self.dst_asn = dst_asn;
        self
    }

    /// Is this record attributed to a domain name?
    pub fn is_correlated(&self) -> bool {
        self.outcome.is_correlated()
    }

    /// Was the source address attributed to an origin AS?
    pub fn has_src_asn(&self) -> bool {
        self.src_asn.is_some()
    }

    /// Bytes carried by the underlying flow.
    pub fn bytes(&self) -> u64 {
        self.flow.bytes
    }

    /// Render the record as a single TSV output line:
    /// `ts  srcIP  dstIP  bytes  src_asn  dst_asn  query_name  final_name`.
    /// Unattributed columns carry `-`.
    pub fn to_tsv(&self) -> String {
        let query = self
            .outcome
            .first_name()
            .map(|n| n.as_str().to_string())
            .unwrap_or_else(|| "-".to_string());
        let final_name = self
            .outcome
            .final_name()
            .map(|n| n.as_str().to_string())
            .unwrap_or_else(|| "-".to_string());
        let asn_col = |asn: Option<u32>| match asn {
            Some(asn) => asn.to_string(),
            None => "-".to_string(),
        };
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.flow.ts.as_secs(),
            self.flow.key.src_ip,
            self.flow.key.dst_ip,
            self.flow.bytes,
            asn_col(self.src_asn),
            asn_col(self.dst_asn),
            query,
            final_name
        )
    }
}

impl fmt::Display for CorrelatedRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_tsv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use std::net::Ipv4Addr;

    fn flow() -> FlowRecord {
        FlowRecord::inbound(
            SimTime::from_secs(42),
            Ipv4Addr::new(203, 0, 113, 9).into(),
            Ipv4Addr::new(10, 1, 2, 3).into(),
            5000,
        )
    }

    #[test]
    fn outcome_not_found() {
        let o = CorrelationOutcome::NotFound;
        assert!(!o.is_correlated());
        assert!(o.final_name().is_none());
        assert!(o.first_name().is_none());
        assert!(o.names().is_empty());
        assert_eq!(o.chain_length(), 0);
    }

    #[test]
    fn outcome_direct_name() {
        let n = DomainName::literal("video.example.com");
        let o = CorrelationOutcome::Name(n.clone());
        assert!(o.is_correlated());
        assert_eq!(o.final_name(), Some(&n));
        assert_eq!(o.first_name(), Some(&n));
        assert_eq!(o.chain_length(), 0);
    }

    #[test]
    fn outcome_chain_orders_names() {
        let a = DomainName::literal("www.shop.example");
        let b = DomainName::literal("shop.cdn.example.net");
        let c = DomainName::literal("edge7.cdn.example.net");
        let o = CorrelationOutcome::Chain(vec![a.clone(), b.clone(), c.clone()]);
        assert_eq!(o.first_name(), Some(&a));
        assert_eq!(o.final_name(), Some(&c));
        assert_eq!(o.chain_length(), 2);
        assert_eq!(o.names().len(), 3);
    }

    #[test]
    fn tsv_output_contains_all_fields() {
        let rec = CorrelatedRecord::new(
            flow(),
            CorrelationOutcome::Name(DomainName::literal("video.example.com")),
        )
        .with_asns(Some(64500), None);
        let line = rec.to_tsv();
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols.len(), 8);
        assert_eq!(cols[0], "42");
        assert_eq!(cols[1], "203.0.113.9");
        assert_eq!(cols[3], "5000");
        assert_eq!(cols[4], "64500");
        assert_eq!(cols[5], "-");
        assert_eq!(cols[6], "video.example.com");
        assert!(rec.has_src_asn());
    }

    #[test]
    fn tsv_output_uses_dash_for_uncorrelated() {
        let rec = CorrelatedRecord::new(flow(), CorrelationOutcome::NotFound);
        assert!(rec.to_tsv().ends_with("-\t-\t-\t-"));
        assert!(!rec.is_correlated());
        assert!(!rec.has_src_asn());
        assert_eq!(rec.bytes(), 5000);
    }

    #[test]
    fn service_label_basics() {
        let s = ServiceLabel::from("S1");
        assert_eq!(s.as_str(), "S1");
        assert_eq!(ServiceLabel::unknown().as_str(), "unknown");
        assert_eq!(s.to_string(), "S1");
    }
}
