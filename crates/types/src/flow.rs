//! Network flow records.
//!
//! The paper's Netflow stream records contain
//! `..., srcIP, dstIP, ..., timestamp, packet, bytes`. [`FlowRecord`]
//! carries those fields plus the transport-level fields the coverage
//! analysis needs (ports 53/853 filtering) and the NetFlow v5/v9 codecs
//! produce/consume.

use std::fmt;
use std::net::IpAddr;

use crate::ids::StreamId;
use crate::time::SimTime;

/// Transport protocol of a flow, as carried in NetFlow's `proto` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Transmission Control Protocol (6).
    Tcp,
    /// User Datagram Protocol (17).
    Udp,
    /// Internet Control Message Protocol (1).
    Icmp,
    /// Any other protocol number.
    Other(u8),
}

impl Protocol {
    /// The IANA protocol number.
    pub fn to_u8(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(v) => v,
        }
    }

    /// Build from an IANA protocol number.
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
            Protocol::Icmp => write!(f, "icmp"),
            Protocol::Other(v) => write!(f, "proto{v}"),
        }
    }
}

/// Direction of a flow relative to the ISP's customers.
///
/// FlowDNS attributes *incoming* traffic (content flowing towards the
/// customer) to services via the flow's **source** IP. The generator also
/// emits the small amount of outbound traffic used by the Section 5
/// bidirectional-traffic analysis of malformed domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowDirection {
    /// Content arriving from the Internet towards a customer.
    Inbound,
    /// Traffic leaving a customer towards the Internet.
    Outbound,
}

/// The 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source IP address.
    pub src_ip: IpAddr,
    /// Destination IP address.
    pub dst_ip: IpAddr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
}

impl FlowKey {
    /// The key of the reverse direction flow.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }
}

/// A single (uni-directional) flow record as consumed by the LookUp
/// workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRecord {
    /// Export timestamp of the flow record.
    pub ts: SimTime,
    /// The flow 5-tuple.
    pub key: FlowKey,
    /// Number of packets in the flow.
    pub packets: u64,
    /// Number of bytes in the flow.
    pub bytes: u64,
    /// Which ingress stream delivered the record (0..26 at the large ISP).
    pub stream: StreamId,
    /// Direction relative to the ISP customer base.
    pub direction: FlowDirection,
    /// Flight-recorder trace token for the sampled 1-in-N flows (`None`
    /// for the untraced majority — and always `None` when tracing is
    /// off, so the field costs one branch, never an allocation).
    pub trace: Option<u64>,
}

impl FlowRecord {
    /// Convenience constructor for an inbound flow with the fields FlowDNS
    /// actually uses.
    pub fn inbound(ts: SimTime, src_ip: IpAddr, dst_ip: IpAddr, bytes: u64) -> Self {
        FlowRecord {
            ts,
            key: FlowKey {
                src_ip,
                dst_ip,
                src_port: 443,
                dst_port: 49152,
                proto: Protocol::Tcp,
            },
            packets: (bytes / 1400).max(1),
            bytes,
            stream: StreamId::new(0),
            direction: FlowDirection::Inbound,
            trace: None,
        }
    }

    /// Source IP address (the field FlowDNS looks up).
    pub fn src_ip(&self) -> IpAddr {
        self.key.src_ip
    }

    /// Destination IP address.
    pub fn dst_ip(&self) -> IpAddr {
        self.key.dst_ip
    }

    /// Is this flow DNS or DoT traffic (destination port 53 or 853)?
    /// Used by the coverage analysis in Section 4.
    pub fn is_dns_or_dot(&self) -> bool {
        self.key.dst_port == 53 || self.key.dst_port == 853
    }

    /// Sanity filter applied by the Netflow-processing stage ("go through
    /// a filter to check if they are valid Netflow records"): a record
    /// with zero bytes, zero packets, or more packets than bytes is
    /// considered malformed and dropped.
    pub fn is_valid(&self) -> bool {
        self.bytes > 0 && self.packets > 0 && self.packets <= self.bytes
    }
}

impl fmt::Display for FlowRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}:{} -> {}:{} {}B {}pkt",
            self.ts,
            self.key.proto,
            self.key.src_ip,
            self.key.src_port,
            self.key.dst_ip,
            self.key.dst_port,
            self.bytes,
            self.packets
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> IpAddr {
        Ipv4Addr::new(a, b, c, d).into()
    }

    #[test]
    fn protocol_round_trip() {
        for v in [1u8, 6, 17, 47, 132, 255] {
            assert_eq!(Protocol::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn flow_key_reverse_is_involutive() {
        let k = FlowKey {
            src_ip: ip(1, 1, 1, 1),
            dst_ip: ip(2, 2, 2, 2),
            src_port: 443,
            dst_port: 55555,
            proto: Protocol::Tcp,
        };
        assert_eq!(k.reversed().reversed(), k);
        assert_eq!(k.reversed().src_ip, ip(2, 2, 2, 2));
        assert_eq!(k.reversed().src_port, 55555);
    }

    #[test]
    fn inbound_constructor_sets_sensible_fields() {
        let f = FlowRecord::inbound(
            SimTime::from_secs(1),
            ip(8, 8, 8, 8),
            ip(10, 0, 0, 1),
            14_000,
        );
        assert_eq!(f.src_ip(), ip(8, 8, 8, 8));
        assert_eq!(f.dst_ip(), ip(10, 0, 0, 1));
        assert_eq!(f.packets, 10);
        assert!(f.is_valid());
        assert_eq!(f.direction, FlowDirection::Inbound);
    }

    #[test]
    fn small_flow_has_at_least_one_packet() {
        let f = FlowRecord::inbound(SimTime::ZERO, ip(1, 2, 3, 4), ip(10, 0, 0, 1), 40);
        assert_eq!(f.packets, 1);
        assert!(f.is_valid());
    }

    #[test]
    fn dns_dot_port_detection() {
        let mut f = FlowRecord::inbound(SimTime::ZERO, ip(10, 0, 0, 1), ip(9, 9, 9, 9), 80);
        f.key.dst_port = 53;
        assert!(f.is_dns_or_dot());
        f.key.dst_port = 853;
        assert!(f.is_dns_or_dot());
        f.key.dst_port = 443;
        assert!(!f.is_dns_or_dot());
    }

    #[test]
    fn validity_filter_rejects_nonsense_records() {
        let mut f = FlowRecord::inbound(SimTime::ZERO, ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1000);
        assert!(f.is_valid());
        f.bytes = 0;
        assert!(!f.is_valid());
        f.bytes = 10;
        f.packets = 0;
        assert!(!f.is_valid());
        f.packets = 100; // more packets than bytes is impossible
        assert!(!f.is_valid());
    }
}
