//! DNS records as consumed by the correlator.
//!
//! The paper's DNS stream carries, per record:
//! `timestamp, ..., [name; rtype; ttl; answer]`. The FillUp workers only
//! care about A/AAAA and CNAME responses, keyed by the *answer* section
//! with the *query name* as value. [`DnsRecord`] is that tuple; the wire
//! format parser in `flowdns-dns` converts full RFC 1035 messages into a
//! sequence of these.

use std::fmt;
use std::net::IpAddr;

use crate::domain::DomainName;
use crate::time::SimTime;

/// DNS resource record types that FlowDNS cares about, plus a catch-all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordType {
    /// IPv4 address record.
    A,
    /// IPv6 address record.
    Aaaa,
    /// Canonical-name alias record.
    Cname,
    /// Name-server record (parsed but not correlated).
    Ns,
    /// Text record (parsed but not correlated).
    Txt,
    /// Start-of-authority record (parsed but not correlated).
    Soa,
    /// Pointer record (parsed but not correlated).
    Ptr,
    /// Mail-exchanger record (parsed but not correlated).
    Mx,
    /// Any other record type, carrying the raw RR TYPE value.
    Other(u16),
}

impl RecordType {
    /// The RFC 1035 TYPE value on the wire.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Other(v) => v,
        }
    }

    /// Map a wire TYPE value to a [`RecordType`].
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            other => RecordType::Other(other),
        }
    }

    /// Is this an address record (A or AAAA)?
    pub fn is_address(&self) -> bool {
        matches!(self, RecordType::A | RecordType::Aaaa)
    }

    /// Is this a CNAME record?
    pub fn is_cname(&self) -> bool {
        matches!(self, RecordType::Cname)
    }

    /// Is this record relevant to the correlator at all?
    pub fn is_correlatable(&self) -> bool {
        self.is_address() || self.is_cname()
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::Aaaa => write!(f, "AAAA"),
            RecordType::Cname => write!(f, "CNAME"),
            RecordType::Ns => write!(f, "NS"),
            RecordType::Txt => write!(f, "TXT"),
            RecordType::Soa => write!(f, "SOA"),
            RecordType::Ptr => write!(f, "PTR"),
            RecordType::Mx => write!(f, "MX"),
            RecordType::Other(v) => write!(f, "TYPE{v}"),
        }
    }
}

/// The answer section content of a DNS record, as used by FlowDNS.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DnsAnswer {
    /// An IP address (from an A or AAAA record).
    Ip(IpAddr),
    /// A domain name (from a CNAME/NS/PTR/MX record).
    Name(DomainName),
    /// Raw RDATA that the parser did not interpret.
    Raw(Vec<u8>),
}

impl DnsAnswer {
    /// The IP address, if this answer is one.
    pub fn as_ip(&self) -> Option<IpAddr> {
        match self {
            DnsAnswer::Ip(ip) => Some(*ip),
            _ => None,
        }
    }

    /// The domain name, if this answer is one.
    pub fn as_name(&self) -> Option<&DomainName> {
        match self {
            DnsAnswer::Name(n) => Some(n),
            _ => None,
        }
    }
}

impl fmt::Display for DnsAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsAnswer::Ip(ip) => write!(f, "{ip}"),
            DnsAnswer::Name(n) => write!(f, "{n}"),
            DnsAnswer::Raw(bytes) => write!(f, "raw[{}B]", bytes.len()),
        }
    }
}

/// A single DNS record as delivered to the correlator.
///
/// `query` is the name that was looked up, `answer` is one entry of the
/// answer section. A DNS response with multiple answers becomes multiple
/// `DnsRecord`s sharing the same `query` and `ts`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsRecord {
    /// Timestamp at which the resolver observed the response.
    pub ts: SimTime,
    /// The queried domain name.
    pub query: DomainName,
    /// Record type of this answer entry.
    pub rtype: RecordType,
    /// Time-to-live in seconds.
    pub ttl: u32,
    /// The answer payload.
    pub answer: DnsAnswer,
}

impl DnsRecord {
    /// Convenience constructor for an A/AAAA record.
    pub fn address(ts: SimTime, query: DomainName, ip: IpAddr, ttl: u32) -> Self {
        let rtype = match ip {
            IpAddr::V4(_) => RecordType::A,
            IpAddr::V6(_) => RecordType::Aaaa,
        };
        DnsRecord {
            ts,
            query,
            rtype,
            ttl,
            answer: DnsAnswer::Ip(ip),
        }
    }

    /// Convenience constructor for a CNAME record: `query` is an alias for
    /// `target`.
    pub fn cname(ts: SimTime, query: DomainName, target: DomainName, ttl: u32) -> Self {
        DnsRecord {
            ts,
            query,
            rtype: RecordType::Cname,
            ttl,
            answer: DnsAnswer::Name(target),
        }
    }

    /// Is the record one the FillUp workers will store?
    pub fn is_correlatable(&self) -> bool {
        match self.rtype {
            RecordType::A | RecordType::Aaaa => matches!(self.answer, DnsAnswer::Ip(_)),
            RecordType::Cname => matches!(self.answer, DnsAnswer::Name(_)),
            _ => false,
        }
    }

    /// The absolute expiry time implied by the record's TTL.
    pub fn expires_at(&self) -> SimTime {
        self.ts + crate::time::SimDuration::from_secs(self.ttl as u64)
    }
}

impl fmt::Display for DnsRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} ttl={} -> {}",
            self.ts, self.query, self.rtype, self.ttl, self.answer
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    #[test]
    fn record_type_wire_round_trip() {
        for v in [1u16, 2, 5, 6, 12, 15, 16, 28, 99, 255, 65280] {
            assert_eq!(RecordType::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn record_type_classification() {
        assert!(RecordType::A.is_address());
        assert!(RecordType::Aaaa.is_address());
        assert!(!RecordType::Cname.is_address());
        assert!(RecordType::Cname.is_cname());
        assert!(RecordType::A.is_correlatable());
        assert!(!RecordType::Txt.is_correlatable());
        assert!(!RecordType::Other(4242).is_correlatable());
    }

    #[test]
    fn address_constructor_picks_type_from_ip() {
        let q = DomainName::literal("example.com");
        let v4 = DnsRecord::address(
            SimTime::ZERO,
            q.clone(),
            Ipv4Addr::new(1, 2, 3, 4).into(),
            60,
        );
        assert_eq!(v4.rtype, RecordType::A);
        let v6 = DnsRecord::address(SimTime::ZERO, q, Ipv6Addr::LOCALHOST.into(), 60);
        assert_eq!(v6.rtype, RecordType::Aaaa);
        assert!(v4.is_correlatable());
        assert!(v6.is_correlatable());
    }

    #[test]
    fn cname_constructor_and_expiry() {
        let r = DnsRecord::cname(
            SimTime::from_secs(100),
            DomainName::literal("www.example.com"),
            DomainName::literal("cdn.example.net"),
            300,
        );
        assert!(r.is_correlatable());
        assert_eq!(r.expires_at(), SimTime::from_secs(400));
    }

    #[test]
    fn mismatched_answer_is_not_correlatable() {
        // An A record whose answer is (incorrectly) a name must be ignored
        // by the FillUp workers instead of polluting the IP-NAME map.
        let r = DnsRecord {
            ts: SimTime::ZERO,
            query: DomainName::literal("example.com"),
            rtype: RecordType::A,
            ttl: 60,
            answer: DnsAnswer::Name(DomainName::literal("oops.example.com")),
        };
        assert!(!r.is_correlatable());
    }

    #[test]
    fn answer_accessors() {
        let ip: IpAddr = Ipv4Addr::new(10, 0, 0, 1).into();
        assert_eq!(DnsAnswer::Ip(ip).as_ip(), Some(ip));
        assert!(DnsAnswer::Ip(ip).as_name().is_none());
        let n = DomainName::literal("x.com");
        assert_eq!(DnsAnswer::Name(n.clone()).as_name(), Some(&n));
        assert!(DnsAnswer::Raw(vec![1, 2]).as_ip().is_none());
    }

    #[test]
    fn display_is_human_readable() {
        let r = DnsRecord::address(
            SimTime::from_secs(5),
            DomainName::literal("example.com"),
            Ipv4Addr::new(192, 0, 2, 1).into(),
            300,
        );
        let s = r.to_string();
        assert!(s.contains("example.com"));
        assert!(s.contains("192.0.2.1"));
        assert!(s.contains("ttl=300"));
    }
}
