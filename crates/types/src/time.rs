//! Simulation time.
//!
//! FlowDNS's clear-up logic is driven by the timestamps *inside* the data
//! records (`d.ts - lastAClearUpTs >= AClearUpInterval` in Algorithm 1),
//! not by wall-clock time. Representing record time as an explicit type
//! keeps the whole pipeline deterministic and unit-testable: a "day of ISP
//! traffic" is simply a stream of records whose [`SimTime`] values span 24
//! simulated hours, regardless of how fast the host machine replays them.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, with microsecond resolution.
///
/// Internally stored as microseconds since an arbitrary epoch (the start of
/// the simulated trace). Negative times are not representable; subtracting
/// a larger time from a smaller one saturates to zero, which matches how
/// the correlator treats out-of-order timestamps (they simply do not
/// advance the clear-up clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime {
    micros: u64,
}

impl SimTime {
    /// The zero timestamp (start of the trace).
    pub const ZERO: SimTime = SimTime { micros: 0 };

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime {
            micros: secs * 1_000_000,
        }
    }

    /// Construct from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime {
            micros: millis * 1_000,
        }
    }

    /// Construct from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime { micros }
    }

    /// Construct from hours (convenience for diurnal profiles).
    pub const fn from_hours(hours: u64) -> Self {
        SimTime::from_secs(hours * 3600)
    }

    /// Whole seconds since the epoch.
    pub const fn as_secs(&self) -> u64 {
        self.micros / 1_000_000
    }

    /// Seconds since the epoch as a float (for plotting / ECDFs).
    pub fn as_secs_f64(&self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(&self) -> u64 {
        self.micros
    }

    /// The simulated hour-of-day (0..24) this timestamp falls in, assuming
    /// the epoch is midnight.
    pub const fn hour_of_day(&self) -> u64 {
        (self.as_secs() / 3600) % 24
    }

    /// The simulated day index this timestamp falls in.
    pub const fn day_index(&self) -> u64 {
        self.as_secs() / 86_400
    }

    /// Saturating difference between two times.
    pub fn saturating_since(&self, earlier: SimTime) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_sub(earlier.micros),
        }
    }

    /// Checked addition of a duration.
    pub fn checked_add(&self, d: SimDuration) -> Option<SimTime> {
        self.micros
            .checked_add(d.micros)
            .map(|micros| SimTime { micros })
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.as_secs();
        let (d, rem) = (total / 86_400, total % 86_400);
        let (h, rem) = (rem / 3600, rem % 3600);
        let (m, s) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{d}d {h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}")
        }
    }
}

/// A span of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration {
    micros: u64,
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration { micros: 0 };

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration {
            micros: secs * 1_000_000,
        }
    }

    /// Construct from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration {
            micros: millis * 1_000,
        }
    }

    /// Construct from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration { micros }
    }

    /// Construct from hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration::from_secs(hours * 3600)
    }

    /// Whole seconds in this duration.
    pub const fn as_secs(&self) -> u64 {
        self.micros / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Microseconds in this duration.
    pub const fn as_micros(&self) -> u64 {
        self.micros
    }

    /// Scale the duration by a float factor (used when compressing
    /// simulated time into wall-clock replay time). Saturates at u64::MAX.
    pub fn mul_f64(&self, factor: f64) -> SimDuration {
        let scaled = (self.micros as f64 * factor).max(0.0);
        SimDuration {
            micros: if scaled >= u64::MAX as f64 {
                u64::MAX
            } else {
                scaled as u64
            },
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.micros % 1_000_000 == 0 {
            write!(f, "{}s", self.as_secs())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime {
            micros: self.micros.saturating_add(rhs.micros),
        }
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.micros = self.micros.saturating_add(rhs.micros);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_add(rhs.micros),
        }
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.micros = self.micros.saturating_add(rhs.micros);
    }
}

/// A half-open interval of simulated time `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeRange {
    /// Inclusive start of the range.
    pub start: SimTime,
    /// Exclusive end of the range.
    pub end: SimTime,
}

impl TimeRange {
    /// Build a range; panics if `end < start`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(end >= start, "TimeRange end must not precede start");
        TimeRange { start, end }
    }

    /// A range covering `duration` starting at `start`.
    pub fn starting_at(start: SimTime, duration: SimDuration) -> Self {
        TimeRange {
            start,
            end: start + duration,
        }
    }

    /// A full simulated day starting at time zero.
    pub fn one_day() -> Self {
        TimeRange::starting_at(SimTime::ZERO, SimDuration::from_hours(24))
    }

    /// A full simulated week starting at time zero.
    pub fn one_week() -> Self {
        TimeRange::starting_at(SimTime::ZERO, SimDuration::from_hours(24 * 7))
    }

    /// Does the range contain `t`?
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Length of the range.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Split the range into `n` equal consecutive sub-ranges (the last one
    /// absorbs rounding remainder). Returns an empty vec for `n == 0`.
    pub fn split(&self, n: usize) -> Vec<TimeRange> {
        if n == 0 {
            return Vec::new();
        }
        let total = self.duration().as_micros();
        let step = total / n as u64;
        let mut out = Vec::with_capacity(n);
        let mut cursor = self.start;
        for i in 0..n {
            let end = if i == n - 1 {
                self.end
            } else {
                cursor + SimDuration::from_micros(step)
            };
            out.push(TimeRange { start: cursor, end });
            cursor = end;
        }
        out
    }

    /// Iterate over consecutive windows of `width` covering the range. The
    /// final window is truncated to the range end.
    pub fn windows(&self, width: SimDuration) -> Vec<TimeRange> {
        let mut out = Vec::new();
        if width == SimDuration::ZERO {
            return out;
        }
        let mut cursor = self.start;
        while cursor < self.end {
            let end = (cursor + width).min(self.end);
            out.push(TimeRange { start: cursor, end });
            cursor = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_conversions_are_consistent() {
        let t = SimTime::from_secs(3661);
        assert_eq!(t.as_secs(), 3661);
        assert_eq!(t.as_micros(), 3_661_000_000);
        assert_eq!(t.hour_of_day(), 1);
        assert_eq!(SimTime::from_hours(25).hour_of_day(), 1);
        assert_eq!(SimTime::from_hours(25).day_index(), 1);
    }

    #[test]
    fn simtime_display_formats_days_and_hours() {
        assert_eq!(SimTime::from_secs(59).to_string(), "00:00:59");
        assert_eq!(SimTime::from_secs(86_400 + 3723).to_string(), "1d 01:02:03");
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(20);
        assert_eq!((a - b), SimDuration::ZERO);
        assert_eq!((b - a).as_secs(), 10);
        let mut t = a;
        t += SimDuration::from_secs(5);
        assert_eq!(t.as_secs(), 15);
    }

    #[test]
    fn duration_mul_f64_scales_and_saturates() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5).as_secs(), 5);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_micros(u64::MAX / 2)
                .mul_f64(4.0)
                .as_micros(),
            u64::MAX
        );
    }

    #[test]
    fn range_contains_and_duration() {
        let r = TimeRange::starting_at(SimTime::from_secs(100), SimDuration::from_secs(50));
        assert!(r.contains(SimTime::from_secs(100)));
        assert!(r.contains(SimTime::from_secs(149)));
        assert!(!r.contains(SimTime::from_secs(150)));
        assert_eq!(r.duration().as_secs(), 50);
    }

    #[test]
    fn range_split_covers_whole_range() {
        let r = TimeRange::starting_at(SimTime::ZERO, SimDuration::from_secs(100));
        let parts = r.split(7);
        assert_eq!(parts.len(), 7);
        assert_eq!(parts[0].start, r.start);
        assert_eq!(parts[6].end, r.end);
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert!(r.split(0).is_empty());
    }

    #[test]
    fn range_windows_truncate_last() {
        let r = TimeRange::starting_at(SimTime::ZERO, SimDuration::from_secs(250));
        let ws = r.windows(SimDuration::from_secs(100));
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[2].duration().as_secs(), 50);
        assert!(r.windows(SimDuration::ZERO).is_empty());
    }

    #[test]
    #[should_panic]
    fn range_rejects_backwards_bounds() {
        TimeRange::new(SimTime::from_secs(10), SimTime::from_secs(5));
    }
}
