//! Property-based tests for the typed store keys.
//!
//! * `IpKey` must round-trip every IPv4 and IPv6 address exactly and
//!   preserve equality/inequality of the underlying addresses.
//! * `NameInterner` must be a pure deduplicator: interning never changes
//!   the text, equal texts share one allocation, distinct texts do not
//!   compare equal.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use flowdns_types::{DomainName, IpKey, NameInterner, NameRef};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn ipv4_round_trips_through_ipkey(bits in any::<u32>()) {
        let ip = IpAddr::V4(Ipv4Addr::from(bits));
        let key = IpKey::from_ip(ip);
        prop_assert!(key.is_v4());
        prop_assert_eq!(key.encoded_len(), 4);
        prop_assert_eq!(key.to_ip(), ip);
        prop_assert_eq!(IpKey::from_ip(key.to_ip()), key);
    }

    #[test]
    fn ipv6_round_trips_through_ipkey(hi in any::<u64>(), lo in any::<u64>()) {
        let bits = (hi as u128) << 64 | lo as u128;
        let ip = IpAddr::V6(Ipv6Addr::from(bits));
        let key = IpKey::from_ip(ip);
        prop_assert!(key.is_v6());
        prop_assert_eq!(key.encoded_len(), 16);
        prop_assert_eq!(key.to_ip(), ip);
        prop_assert_eq!(IpKey::from_ip(key.to_ip()), key);
    }

    #[test]
    fn ipkey_equality_matches_address_equality(a in any::<u32>(), b in any::<u32>()) {
        let ka = IpKey::from(Ipv4Addr::from(a));
        let kb = IpKey::from(Ipv4Addr::from(b));
        prop_assert_eq!(ka == kb, a == b);
        // Display parses back to the same key.
        let parsed: IpKey = ka.to_string().parse().unwrap();
        prop_assert_eq!(parsed, ka);
    }

    #[test]
    fn interner_dedups_equal_names(labels in proptest::collection::vec(proptest::string::string_regex("[a-z]{1,8}").unwrap(), 1..5)) {
        let pool = NameInterner::new();
        let text = labels.join(".");
        let first = pool.intern(&text);
        let second = pool.intern(&text);
        prop_assert_eq!(first.as_str(), text.as_str());
        prop_assert_eq!(&first, &second);
        prop_assert!(NameRef::ptr_eq(&first, &second));
        prop_assert_eq!(pool.len(), 1);
        // Interning via a parsed DomainName yields the same pooled handle.
        let domain = DomainName::literal(&text);
        prop_assert!(NameRef::ptr_eq(&first, &pool.intern_domain(&domain)));
        prop_assert_eq!(pool.len(), 1);
    }

    #[test]
    fn interner_preserves_distinctness(a in proptest::string::string_regex("[a-z]{1,12}").unwrap(),
                                       b in proptest::string::string_regex("[a-z]{1,12}").unwrap()) {
        let pool = NameInterner::new();
        let ra = pool.intern(&a);
        let rb = pool.intern(&b);
        prop_assert_eq!(ra == rb, a == b);
        prop_assert_eq!(pool.len(), if a == b { 1 } else { 2 });
    }

    #[test]
    fn name_ref_domain_round_trip(labels in proptest::collection::vec(proptest::string::string_regex("[a-z0-9]{1,8}").unwrap(), 1..5)) {
        let domain = DomainName::literal(&labels.join("."));
        let handle = NameRef::from(&domain);
        let back: DomainName = handle.clone().into();
        prop_assert_eq!(&back, &domain);
        prop_assert_eq!(handle.as_str(), domain.as_str());
    }
}
