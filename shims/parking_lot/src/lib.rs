//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal API-compatible shim backed by
//! `std::sync`. Unlike the std primitives, `parking_lot` locks do not
//! poison: `lock()`/`read()`/`write()` return guards directly. This shim
//! reproduces that by recovering the inner guard from a poisoned std
//! lock, which matches parking_lot's semantics of simply continuing
//! after a panicking critical section.

use std::sync::{self, PoisonError};

/// A mutual exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the protected value (requires `&mut self`,
    /// so no locking is necessary).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7u32));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || *l.read())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7);
        }
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        assert_eq!(*m.lock(), 0);
    }
}
