//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal API-compatible shim. [`BytesMut`] is a
//! growable byte buffer backed by `Vec<u8>` with a logical read offset,
//! so `advance`/`split_to` are O(1) amortized (the front is reclaimed
//! lazily) rather than the real crate's refcounted slices. Big-endian
//! `put_*` writers match the real `BufMut` defaults.

use std::ops::{Deref, DerefMut};

/// Read cursor over a contiguous byte region.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Discard the next `n` readable bytes.
    fn advance(&mut self, n: usize);
    /// The readable region.
    fn chunk(&self) -> &[u8];
}

/// Append-only writer of big-endian scalars and byte slices.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable byte buffer with an O(1)-amortized consumable front.
#[derive(Clone, Default, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Start of the readable region within `data`.
    head: usize,
}

impl BytesMut {
    /// A new empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// A new empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
            head: 0,
        }
    }

    /// Readable bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Is the readable region empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append raw bytes to the back of the buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.reclaim_if_large();
        self.data.extend_from_slice(src);
    }

    /// Split off and return the first `n` readable bytes, leaving the rest.
    ///
    /// # Panics
    /// Panics if `n > self.len()`, like the real crate.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let front = self.data[self.head..self.head + n].to_vec();
        self.head += n;
        self.reclaim_if_large();
        BytesMut {
            data: front,
            head: 0,
        }
    }

    /// Clear the buffer without releasing its allocation.
    pub fn clear(&mut self) {
        self.data.clear();
        self.head = 0;
    }

    /// Copy the readable region into a standalone `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }

    /// Drop the consumed front when it dominates the allocation, keeping
    /// `advance`/`split_to` O(1) amortized.
    fn reclaim_if_large(&mut self) {
        if self.head > 4096 && self.head * 2 >= self.data.len() {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.head += n;
        self.reclaim_if_large();
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<[u8]> for BytesMut {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            head: 0,
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data, head: 0 }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_writes_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u16(0x0102);
        b.put_u32(0x03040506);
        b.put_u64(0x0708090A0B0C0D0E);
        assert_eq!(
            &b[..],
            &[0xAB, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xA, 0xB, 0xC, 0xD, 0xE][..]
        );
    }

    #[test]
    fn advance_and_split_to() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        b.advance(6);
        assert_eq!(&b[..], b"world");
        let w = b.split_to(3);
        assert_eq!(&w[..], b"wor");
        assert_eq!(&b[..], b"ld");
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn indexing_follows_the_read_offset() {
        let mut b = BytesMut::from(&[1u8, 2, 3, 4][..]);
        b.advance(2);
        assert_eq!(b[0], 3);
        b[0] = 9;
        assert_eq!(b.to_vec(), vec![9, 4]);
    }

    #[test]
    fn front_reclaim_keeps_contents() {
        let mut b = BytesMut::new();
        let payload: Vec<u8> = (0..200u32).flat_map(|i| i.to_be_bytes()).collect();
        for _ in 0..100 {
            b.extend_from_slice(&payload);
            b.advance(payload.len() / 2);
        }
        // Only the unconsumed tail remains readable.
        assert_eq!(b.len(), 100 * payload.len() / 2);
    }
}
