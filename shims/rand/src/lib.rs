//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal API-compatible shim: a xoshiro256++
//! generator behind [`rngs::StdRng`], the [`Rng`] extension methods the
//! workload generators use (`gen`, `gen_range`, `gen_bool`), plus
//! [`SeedableRng::seed_from_u64`] and [`seq::SliceRandom`]. Streams are
//! fully deterministic for a given seed, which the generators rely on
//! for reproducible experiments — but the exact values differ from the
//! real `StdRng` (ChaCha12), which no caller depends on.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of the real trait: `seed_from_u64` only
/// needs `from_seed` plus a seed-expansion rule, which we fix here).
pub trait SeedableRng: Sized {
    /// Construct the generator from a 32-byte seed.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Construct the generator from a single `u64`, expanding it with
    /// SplitMix64 exactly like the real crate does.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening multiply keeps bias below 2^-64 for any span
                // that fits in u64, which all callers' ranges do.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + draw
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + draw
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`, like the real crate.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related extension traits.

    use super::{Rng, RngCore};

    /// Random selection from slices (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(30u32..300);
            assert!((30..300).contains(&v));
            let f = rng.gen_range(0.01f64..1.0);
            assert!((0.01..1.0).contains(&f));
            let i = rng.gen_range(0usize..=5);
            assert!(i <= 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate} too far from 0.25");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn float_draws_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for _ in 0..10_000 {
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
            min = min.min(p);
            max = max.max(p);
        }
        assert!(min < 0.01 && max > 0.99);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3, 4, 5];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let mut shuffled = items;
        shuffled.shuffle(&mut rng);
        let mut sorted = shuffled;
        sorted.sort_unstable();
        assert_eq!(sorted, items);
    }
}
