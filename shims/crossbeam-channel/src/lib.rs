//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal API-compatible shim: a multi-producer
//! multi-consumer bounded queue built on `Mutex<VecDeque>` + `Condvar`.
//! Both [`Sender`] and [`Receiver`] are cloneable and shareable across
//! threads, matching crossbeam semantics (std's `mpsc::Receiver` is
//! neither). Throughput is lower than real crossbeam, but the semantics
//! — capacity bounds, disconnect detection, timeouts — are the same.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the rejected message is returned.
    Full(T),
    /// All receivers dropped; the rejected message is returned.
    Disconnected(T),
}

/// Error returned by [`Sender::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders dropped and the queue is drained.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// All senders dropped and the queue is drained.
    Disconnected,
}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Inner<T> {
    fn disconnected_tx(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }

    fn disconnected_rx(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }
}

/// The sending half of a channel. Cloneable; all clones feed one queue.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel. Cloneable; all clones drain one queue.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Create a bounded channel holding at most `capacity` messages.
///
/// Unlike crossbeam, `capacity == 0` (rendezvous) is approximated as
/// capacity 1; FlowDNS never creates zero-capacity channels.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(capacity.max(1)))
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Wake consumers blocked in recv so they observe the disconnect.
            // Taking the queue mutex first closes the missed-wakeup window:
            // a consumer that checked the counter before our decrement must
            // be inside wait() (which released the mutex) before we can
            // acquire it, so the notification cannot fall into the gap
            // between its check and its sleep.
            let _guard = self.inner.queue.lock().unwrap();
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Attempt to enqueue without blocking.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        if self.inner.disconnected_rx() {
            return Err(TrySendError::Disconnected(msg));
        }
        let mut q = self.inner.queue.lock().unwrap();
        if let Some(cap) = self.inner.capacity {
            if q.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        q.push_back(msg);
        drop(q);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue, blocking while the channel is at capacity.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut q = self.inner.queue.lock().unwrap();
        loop {
            if self.inner.disconnected_rx() {
                return Err(SendError(msg));
            }
            match self.inner.capacity {
                Some(cap) if q.len() >= cap => {
                    q = self.inner.not_full.wait(q).unwrap();
                }
                _ => break,
            }
        }
        q.push_back(msg);
        drop(q);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().unwrap().len()
    }

    /// Is the queue currently empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Wake producers blocked in send so they observe the disconnect;
            // the mutex is held for the same missed-wakeup reason as in
            // Sender::drop.
            let _guard = self.inner.queue.lock().unwrap();
            self.inner.not_full.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Attempt to dequeue without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.inner.queue.lock().unwrap();
        match q.pop_front() {
            Some(msg) => {
                drop(q);
                self.inner.not_full.notify_one();
                Ok(msg)
            }
            None if self.inner.disconnected_tx() => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Dequeue, blocking until a message arrives or all senders drop.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.inner.queue.lock().unwrap();
        loop {
            if let Some(msg) = q.pop_front() {
                drop(q);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if self.inner.disconnected_tx() {
                return Err(RecvError);
            }
            q = self.inner.not_empty.wait(q).unwrap();
        }
    }

    /// Dequeue, blocking up to `timeout` for a message to arrive.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.inner.queue.lock().unwrap();
        loop {
            if let Some(msg) = q.pop_front() {
                drop(q);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if self.inner.disconnected_tx() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .inner
                .not_empty
                .wait_timeout(q, deadline - now)
                .unwrap();
            q = guard;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().unwrap().len()
    }

    /// Is the queue currently empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_respects_capacity() {
        let (tx, rx) = bounded(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded::<u32>(4);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)), Ok(42));
        handle.join().unwrap();
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx1) = bounded(8);
        let rx2 = rx1.clone();
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(rx2.try_recv(), Ok(1));
        assert_eq!(rx1.try_recv(), Ok(2));
    }

    #[test]
    fn mpmc_under_contention_delivers_everything_once() {
        let (tx, rx) = bounded(1024);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..1000u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..4000).collect::<Vec<_>>());
    }
}
