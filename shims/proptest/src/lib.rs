//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal API-compatible shim. It keeps the parts
//! the FlowDNS property suites use — the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`, [`arbitrary::any`], weighted
//! [`prop_oneof!`], [`collection::vec`], and a small
//! [`string::string_regex`] generator — and drops what they don't
//! (shrinking, persistence, forked runners). Failing cases therefore
//! report the generated inputs un-shrunk via the panic message.
//!
//! Generation is deterministic: each `#[test]` seeds its generator from
//! the test's module path and name, so CI failures reproduce locally.

pub mod test_runner {
    //! Runner configuration and the deterministic generator driving it.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic xoshiro256++ generator used for all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from an arbitrary string (the macro passes the test path),
        /// so every property gets a distinct but reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut sm = h;
            let mut s = [0u64; 4];
            for word in &mut s {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *word = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// Next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0) is an empty range");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;

        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of strategies, produced by [`crate::prop_oneof!`].
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        /// Build a union from `(weight, strategy)` arms.
        ///
        /// # Panics
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(
                total_weight > 0,
                "prop_oneof! needs at least one weighted arm"
            );
            Union { arms, total_weight }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut draw = rng.below(self.total_weight);
            for (weight, strat) in &self.arms {
                if draw < *weight as u64 {
                    return strat.generate(rng);
                }
                draw -= *weight as u64;
            }
            unreachable!("draw below total weight always lands in an arm")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128) - (self.start as u128);
                    let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                    self.start + draw
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u128) - (start as u128) + 1;
                    let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                    start + draw
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + u * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait behind it.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for chunk in out.chunks_mut(8) {
                let bytes = rng.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
            out
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for any `T: Arbitrary`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! String strategies from (a practical subset of) regular expressions.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Error for regexes outside the supported subset.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    #[derive(Debug, Clone)]
    enum Atom {
        /// A fixed character.
        Literal(char),
        /// One of a set of characters (expanded from a `[...]` class).
        Class(Vec<char>),
    }

    #[derive(Debug, Clone)]
    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Strategy generating strings matching the source regex.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        pieces: Vec<Piece>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in &self.pieces {
                let span = (piece.max - piece.min + 1) as u64;
                let count = piece.min + rng.below(span) as usize;
                for _ in 0..count {
                    match &piece.atom {
                        Atom::Literal(c) => out.push(*c),
                        Atom::Class(chars) => {
                            out.push(chars[rng.below(chars.len() as u64) as usize]);
                        }
                    }
                }
            }
            out
        }
    }

    /// Build a string strategy from a regex.
    ///
    /// Supported subset: literal characters, `[...]` classes with ranges,
    /// and the quantifiers `?`, `*`, `+`, `{n}`, `{m,n}` (unbounded
    /// repetition is capped at +8). Groups, alternation, and anchors are
    /// not supported and return [`Error`].
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut class = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        match chars.next() {
                            None => {
                                return Err(Error(format!("unterminated class in {pattern:?}")))
                            }
                            Some(']') => break,
                            Some('-')
                                if prev.is_some() && !matches!(chars.peek(), None | Some(']')) =>
                            {
                                let start = prev.take().expect("checked above");
                                let end = chars.next().expect("peeked above");
                                if start > end {
                                    return Err(Error(format!("bad range {start}-{end}")));
                                }
                                class.extend(start..=end);
                            }
                            Some(ch) => {
                                if let Some(p) = prev.replace(ch) {
                                    class.push(p);
                                }
                            }
                        }
                    }
                    if let Some(p) = prev {
                        class.push(p);
                    }
                    if class.is_empty() {
                        return Err(Error(format!("empty class in {pattern:?}")));
                    }
                    Atom::Class(class)
                }
                '.' => Atom::Class((' '..='~').collect()),
                '\\' => match chars.next() {
                    Some(esc @ ('\\' | '.' | '[' | ']' | '{' | '}' | '-' | '+' | '*' | '?')) => {
                        Atom::Literal(esc)
                    }
                    other => return Err(Error(format!("unsupported escape {other:?}"))),
                },
                '(' | ')' | '|' | '^' | '$' => {
                    return Err(Error(format!("unsupported construct {c:?} in {pattern:?}")))
                }
                other => Atom::Literal(other),
            };
            let (min, max) = match chars.peek() {
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 9)
                }
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    loop {
                        match chars.next() {
                            None => {
                                return Err(Error(format!(
                                    "unterminated quantifier in {pattern:?}"
                                )))
                            }
                            Some('}') => break,
                            Some(ch) => spec.push(ch),
                        }
                    }
                    parse_counts(&spec)
                        .ok_or_else(|| Error(format!("bad quantifier {{{spec}}}")))?
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        Ok(RegexGeneratorStrategy { pieces })
    }

    fn parse_counts(spec: &str) -> Option<(usize, usize)> {
        match spec.split_once(',') {
            None => {
                let n = spec.trim().parse().ok()?;
                Some((n, n))
            }
            Some((lo, hi)) => {
                let min = lo.trim().parse().ok()?;
                let max = match hi.trim() {
                    "" => min + 8,
                    s => s.parse().ok()?,
                };
                (min <= max).then_some((min, max))
            }
        }
    }
}

pub mod prelude {
    //! Everything the property suites import with `use proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property; failures report the property's inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` body runs
/// against `cases` generated inputs (default 256, or the count given via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])+
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name),
                ));
                for case in 0..config.cases {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                    }));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {}/{} of {} failed (deterministic seed; rerun reproduces it)",
                            case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_regex_matches_its_pattern() {
        let strat = crate::string::string_regex("[a-z][a-z0-9-]{0,14}").unwrap();
        let mut rng = TestRng::deterministic("string_regex_matches_its_pattern");
        for _ in 0..1000 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 15, "bad length: {s:?}");
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn string_regex_rejects_unsupported() {
        assert!(crate::string::string_regex("(a|b)").is_err());
        assert!(crate::string::string_regex("[a-").is_err());
    }

    #[test]
    fn vec_sizes_respect_bounds() {
        let strat = crate::collection::vec(any::<u8>(), 2..5);
        let mut rng = TestRng::deterministic("vec_sizes_respect_bounds");
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }

    #[test]
    fn union_honors_weights() {
        let strat = prop_oneof![
            9 => (0u32..1).prop_map(|_| true),
            1 => (0u32..1).prop_map(|_| false),
        ];
        let mut rng = TestRng::deterministic("union_honors_weights");
        let hits = (0..10_000).filter(|_| strat.generate(&mut rng)).count();
        assert!(
            (8_500..=9_500).contains(&hits),
            "weighted draw skewed: {hits}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_in_range(x in 10u32..20, pair in (any::<bool>(), 0usize..3)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(pair.1 < 3);
            prop_assert_eq!(pair.1, pair.1);
            prop_assert_ne!(x, 99);
        }

        #[test]
        fn just_yields_the_value(v in Just(41usize)) {
            prop_assert_eq!(v + 1, 42);
        }
    }
}
