//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal API-compatible shim. It runs each
//! benchmark closure for a fixed number of samples, reports median
//! per-iteration wall time (plus derived element throughput) to stdout,
//! and skips criterion's statistics, plotting, and baseline machinery.
//! Good enough for `cargo bench --no-run` CI smoke and for eyeballing
//! relative numbers locally; real measurement work should grow this
//! shim or swap in the real crate once the environment has network.

// Bench reports are exactly the "legitimately prints reports" case the
// workspace stdout policy carves out (stdout is the report channel
// here, not TSV egress).
#![allow(clippy::print_stdout)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Identify a benchmark as `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Option<Duration>,
}

impl Bencher {
    /// Time `f`, recording one sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        black_box(f());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.last_median = Some(times[times.len() / 2]);
    }
}

fn report(label: &str, throughput: Option<Throughput>, median: Option<Duration>) {
    let Some(median) = median else {
        println!("{label:<50} (no samples)");
        return;
    };
    let per_iter = median.as_secs_f64();
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            println!(
                "{label:<50} {median:>12.3?}/iter {:>14.0} elem/s",
                n as f64 / per_iter
            );
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            println!(
                "{label:<50} {median:>12.3?}/iter {:>14.0} B/s",
                n as f64 / per_iter
            );
        }
        _ => println!("{label:<50} {median:>12.3?}/iter"),
    }
}

/// A named set of related benchmarks sharing sample-count and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_median: None,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        report(&label, self.throughput, bencher.last_median);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_median: None,
        };
        f(&mut bencher, input);
        let label = format!("{}/{}", self.name, id);
        report(&label, self.throughput, bencher.last_median);
        self
    }

    /// Finish the group (reporting happens eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Parse command-line options (ignored by the shim; benches invoked
    /// through `cargo bench` pass harness flags we deliberately accept
    /// and drop).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.default_sample_size == 0 {
                20
            } else {
                self.default_sample_size
            },
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_owned())
            .bench_function("base", f);
        self
    }

    /// Emit the final summary (the shim reports eagerly; no-op).
    pub fn final_summary(&self) {}
}

/// Group benchmark functions under one registration function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0usize;
        group.bench_function("count_runs", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 3 timed samples + 1 warm-up.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &v| {
            b.iter(|| {
                seen = v;
            })
        });
        assert_eq!(seen, 42);
        assert_eq!(BenchmarkId::new("param", 42).to_string(), "param/42");
    }
}
